//! Data-structure placement.
//!
//! The paper assumes the GPU driver allocates large pages and aligns all
//! operands needed by a PIM computation within the memory region of each
//! PIM unit (Section 6). We realise that by placing every data structure
//! of a kernel in the *same bank* of each channel, in consecutive row
//! ranges — so switching between operand streams costs a row open/close,
//! exactly the behaviour Figure 11 analyses — and by confining a memory
//! group's data to that group's banks.

use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::types::{Addr, ChannelId, MemGroupId, BUS_BYTES};

/// Placement of a kernel's data structures within each channel.
#[derive(Debug, Clone)]
pub struct Layout {
    mapping: AddressMapping,
    group: MemGroupId,
    base_offset: u64,
    /// Per-bank span of one structure in bytes.
    structure_span: u64,
    stripes_per_structure: u64,
    /// Number of banks consecutive rows rotate across (1 = the paper's
    /// single-bank PIM placement; the group's bank count for host data,
    /// which wants bank-level parallelism).
    interleave: u64,
}

impl Layout {
    /// Creates the paper's PIM placement: every structure in the *same*
    /// bank of each channel (serialised row switching, Figure 11).
    ///
    /// # Panics
    /// Panics if the structures do not fit in one bank's row region.
    #[must_use]
    pub fn new(
        mapping: AddressMapping,
        groups: &GroupMap,
        group: MemGroupId,
        structures: usize,
        stripes_per_structure: u64,
    ) -> Self {
        Layout::with_interleave(mapping, groups, group, structures, stripes_per_structure, 1)
    }

    /// Creates a layout whose consecutive rows rotate across `interleave`
    /// banks of the group — the placement conventional host data gets,
    /// enabling bank-level parallelism.
    ///
    /// # Panics
    /// Panics if `interleave` is zero or exceeds the group's banks, or if
    /// the structures do not fit in the banks' row regions.
    #[must_use]
    pub fn with_interleave(
        mapping: AddressMapping,
        groups: &GroupMap,
        group: MemGroupId,
        structures: usize,
        stripes_per_structure: u64,
        interleave: u64,
    ) -> Self {
        assert!(
            interleave >= 1 && interleave <= groups.banks_per_group() as u64,
            "interleave must be within the group's banks"
        );
        let row_bytes = mapping.row_bytes();
        let rows = (stripes_per_structure * BUS_BYTES as u64).div_ceil(row_bytes);
        // Rows per bank for one structure, rounded so streams of
        // different structures never share a row.
        let structure_span = rows.div_ceil(interleave) * row_bytes;
        let base_offset = mapping.bank_base_offset(groups.first_bank_of(group));
        assert!(
            structure_span * structures as u64 <= mapping.bank_span_bytes(),
            "kernel data ({} structures x {structure_span} B) exceeds the bank regions",
            structures
        );
        Layout { mapping, group, base_offset, structure_span, stripes_per_structure, interleave }
    }

    /// The memory group the data lives in.
    #[must_use]
    pub fn group(&self) -> MemGroupId {
        self.group
    }

    /// Stripes per structure per channel.
    #[must_use]
    pub fn stripes_per_structure(&self) -> u64 {
        self.stripes_per_structure
    }

    /// Rows each structure spans (across all interleaved banks).
    #[must_use]
    pub fn rows_per_structure(&self) -> u64 {
        self.structure_span / self.mapping.row_bytes() * self.interleave
    }

    /// The address of stripe `stripe` of `structure` on `channel`.
    ///
    /// # Panics
    /// Panics if `stripe` is out of range (generators must wrap
    /// themselves).
    #[must_use]
    pub fn addr(&self, channel: ChannelId, structure: usize, stripe: u64) -> Addr {
        let row_bytes = self.mapping.row_bytes();
        let spr = self.mapping.stripes_per_row();
        let row_seq = stripe / spr;
        let col = stripe % spr;
        let bank_off = row_seq % self.interleave;
        let row = row_seq / self.interleave;
        let offset = self.base_offset
            + bank_off * self.mapping.bank_span_bytes()
            + structure as u64 * self.structure_span
            + row * row_bytes
            + col * BUS_BYTES as u64;
        assert!(row * row_bytes < self.structure_span, "stripe {stripe} beyond structure span");
        self.mapping.compose(channel, offset)
    }

    /// The interleaving scheme in force.
    #[must_use]
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::types::BankId;

    fn layout(structures: usize, stripes: u64) -> Layout {
        Layout::new(
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            MemGroupId(0),
            structures,
            stripes,
        )
    }

    #[test]
    fn structures_share_a_bank_in_distinct_rows() {
        let l = layout(3, 64); // one row each
        let m = l.mapping().clone();
        let a = m.decode(l.addr(ChannelId(0), 0, 0));
        let b = m.decode(l.addr(ChannelId(0), 1, 0));
        let c = m.decode(l.addr(ChannelId(0), 2, 0));
        assert_eq!(a.bank, BankId(0));
        assert_eq!(b.bank, BankId(0));
        assert_eq!(c.bank, BankId(0));
        assert_eq!(a.row, 0);
        assert_eq!(b.row, 1);
        assert_eq!(c.row, 2);
    }

    #[test]
    fn partial_rows_round_up() {
        let l = layout(2, 65); // 65 stripes -> 2 rows
        assert_eq!(l.rows_per_structure(), 2);
        let m = l.mapping().clone();
        assert_eq!(m.decode(l.addr(ChannelId(0), 1, 0)).row, 2);
    }

    #[test]
    fn channels_are_independent() {
        let l = layout(1, 64);
        let a = l.addr(ChannelId(0), 0, 5);
        let b = l.addr(ChannelId(7), 0, 5);
        let m = l.mapping().clone();
        assert_eq!(m.decode(a).channel, ChannelId(0));
        assert_eq!(m.decode(b).channel, ChannelId(7));
        assert_eq!(m.decode(a).col, m.decode(b).col);
    }

    #[test]
    fn group1_data_lands_in_group1_banks() {
        let l =
            Layout::new(AddressMapping::hbm_default(), &GroupMap::default(), MemGroupId(1), 1, 64);
        let m = l.mapping().clone();
        let loc = m.decode(l.addr(ChannelId(0), 0, 0));
        assert_eq!(loc.bank, BankId(8));
    }

    #[test]
    fn interleaved_layout_rotates_banks() {
        let l = Layout::with_interleave(
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            MemGroupId(0),
            1,
            4 * 64, // 4 rows
            4,
        );
        let m = l.mapping().clone();
        let banks: Vec<u8> =
            (0..4).map(|r| m.decode(l.addr(ChannelId(0), 0, r * 64)).bank.0).collect();
        assert_eq!(banks, vec![0, 1, 2, 3], "consecutive rows rotate across banks");
        // Within one row the bank is stable.
        assert_eq!(m.decode(l.addr(ChannelId(0), 0, 1)).bank.0, 0);
    }

    #[test]
    #[should_panic(expected = "within the group's banks")]
    fn oversized_interleave_panics() {
        let _ = Layout::with_interleave(
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            MemGroupId(0),
            1,
            64,
            9,
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the bank regions")]
    fn oversized_layout_panics() {
        // One bank region is 2^16 rows = 2^22 stripes; ask for more.
        let _ = layout(2, 1 << 22);
    }

    #[test]
    #[should_panic(expected = "beyond structure span")]
    fn out_of_range_stripe_panics() {
        let l = layout(1, 64);
        let _ = l.addr(ChannelId(0), 0, 64);
    }
}
