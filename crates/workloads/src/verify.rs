//! Golden-model verification.
//!
//! Replays kernel instruction streams with *sequential semantics* —
//! program order, no reordering anywhere — against a software memory
//! image, then compares the image with what the simulator's DRAM
//! actually holds. A correctly ordered simulation (fence or OrderLight)
//! must match exactly; an unordered one must not (paper Figure 5's
//! "Functionally Incorrect" bar is asserted, not assumed).

use orderlight::types::{Addr, Stripe};
use orderlight::{InstrStream, KernelInstr, PimOp};
use std::collections::{HashMap, HashSet};

/// The sequential interpreter: one PIM unit's TS plus host registers.
///
/// # Example
///
/// ```
/// use orderlight::mapping::{AddressMapping, GroupMap};
/// use orderlight::types::ChannelId;
/// use orderlight_workloads::{OrderingMode, WorkloadId, WorkloadInstance};
///
/// let instance = WorkloadInstance::new(
///     WorkloadId::Copy,
///     AddressMapping::hbm_default(),
///     &GroupMap::default(),
///     8,
///     64,
///     OrderingMode::Fence,
/// );
/// let golden = instance.golden_pim(ChannelId(3));
/// // Copy writes every stripe of structure 1.
/// assert_eq!(golden.written().len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct GoldenInterp {
    mem: HashMap<u64, Stripe>,
    written: HashSet<u64>,
    ts: Vec<Stripe>,
    regs: Vec<Stripe>,
}

impl GoldenInterp {
    /// Creates an interpreter with a TS of `ts_slots` stripes.
    #[must_use]
    pub fn new(ts_slots: usize) -> Self {
        GoldenInterp {
            mem: HashMap::new(),
            written: HashSet::new(),
            ts: vec![Stripe::default(); ts_slots.max(1)],
            regs: vec![Stripe::default(); 64],
        }
    }

    /// Pre-loads memory (workload input data).
    pub fn init(&mut self, addr: Addr, value: Stripe) {
        self.mem.insert(addr.0, value);
    }

    /// Reads the memory image (zero where untouched).
    #[must_use]
    pub fn read(&self, addr: Addr) -> Stripe {
        self.mem.get(&addr.0).copied().unwrap_or_default()
    }

    /// Addresses the interpreted streams stored to.
    #[must_use]
    pub fn written(&self) -> &HashSet<u64> {
        &self.written
    }

    /// Interprets one instruction stream to completion. Streams of
    /// different channels/warps touch disjoint TS state, so interpret
    /// each with a fresh `GoldenInterp` sharing is unnecessary — or call
    /// [`reset_ts`](Self::reset_ts) in between.
    pub fn interpret(&mut self, stream: &mut dyn InstrStream) {
        while let Some(instr) = stream.next_instr() {
            match instr {
                KernelInstr::Pim(p) => {
                    let slot = p.slot.index();
                    match p.op {
                        PimOp::Load => self.ts[slot] = self.read(p.addr),
                        PimOp::Compute(op) => {
                            let mem = if op.reads_memory() {
                                self.read(p.addr)
                            } else {
                                Stripe::default()
                            };
                            self.ts[slot] = op.apply(self.ts[slot], mem);
                        }
                        PimOp::Execute(op) => {
                            self.ts[slot] = op.apply(self.ts[slot], Stripe::default());
                        }
                        PimOp::Store => {
                            self.mem.insert(p.addr.0, self.ts[slot]);
                            self.written.insert(p.addr.0);
                        }
                    }
                }
                KernelInstr::Ordering(_) => {}
                KernelInstr::Load { addr, reg } => {
                    self.regs[reg.0 as usize] = self.read(addr);
                }
                KernelInstr::Compute { op, dst, a, b } => {
                    self.regs[dst.0 as usize] =
                        op.apply(self.regs[a.0 as usize], self.regs[b.0 as usize]);
                }
                KernelInstr::Store { addr, reg } => {
                    self.mem.insert(addr.0, self.regs[reg.0 as usize]);
                    self.written.insert(addr.0);
                }
            }
        }
    }

    /// Clears TS and registers between per-channel streams (each channel
    /// has its own PIM unit and warp).
    pub fn reset_ts(&mut self) {
        self.ts.fill(Stripe::default());
        self.regs.fill(Stripe::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::isa::OrderingInstr;
    use orderlight::types::{MemGroupId, TsSlot};
    use orderlight::{AluOp, PimInstruction, Reg, VecStream};

    #[test]
    fn pim_vector_add_semantics() {
        let mut interp = GoldenInterp::new(4);
        interp.init(Addr(0), Stripe::splat(40));
        interp.init(Addr(1000), Stripe::splat(2));
        let instrs = vec![
            KernelInstr::Pim(PimInstruction {
                op: PimOp::Load,
                addr: Addr(0),
                slot: TsSlot(0),
                group: MemGroupId(0),
            }),
            KernelInstr::Ordering(OrderingInstr::OrderLight { group: MemGroupId(0) }),
            KernelInstr::Pim(PimInstruction {
                op: PimOp::Compute(AluOp::Add),
                addr: Addr(1000),
                slot: TsSlot(0),
                group: MemGroupId(0),
            }),
            KernelInstr::Pim(PimInstruction {
                op: PimOp::Store,
                addr: Addr(2000),
                slot: TsSlot(0),
                group: MemGroupId(0),
            }),
        ];
        interp.interpret(&mut VecStream::new(instrs));
        assert_eq!(interp.read(Addr(2000)), Stripe::splat(42));
        assert!(interp.written().contains(&2000));
        assert_eq!(interp.written().len(), 1);
    }

    #[test]
    fn host_semantics_match_pim() {
        let mut interp = GoldenInterp::new(1);
        interp.init(Addr(0), Stripe::splat(40));
        interp.init(Addr(32), Stripe::splat(2));
        let instrs = vec![
            KernelInstr::Load { addr: Addr(0), reg: Reg(0) },
            KernelInstr::Load { addr: Addr(32), reg: Reg(1) },
            KernelInstr::Compute { op: AluOp::Add, dst: Reg(2), a: Reg(0), b: Reg(1) },
            KernelInstr::Store { addr: Addr(64), reg: Reg(2) },
        ];
        interp.interpret(&mut VecStream::new(instrs));
        assert_eq!(interp.read(Addr(64)), Stripe::splat(42));
    }

    #[test]
    fn reset_ts_clears_state() {
        let mut interp = GoldenInterp::new(2);
        let load = KernelInstr::Pim(PimInstruction {
            op: PimOp::Load,
            addr: Addr(0),
            slot: TsSlot(1),
            group: MemGroupId(0),
        });
        interp.init(Addr(0), Stripe::splat(7));
        interp.interpret(&mut VecStream::new(vec![load]));
        interp.reset_ts();
        let store = KernelInstr::Pim(PimInstruction {
            op: PimOp::Store,
            addr: Addr(96),
            slot: TsSlot(1),
            group: MemGroupId(0),
        });
        interp.interpret(&mut VecStream::new(vec![store]));
        assert_eq!(interp.read(Addr(96)), Stripe::default());
    }
}
