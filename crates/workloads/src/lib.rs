//! # Workload suite (paper Table 2)
//!
//! Generators for the paper's twelve evaluated kernels — the stream
//! benchmark (Scale, Copy, Daxpy, Triad, Add) and seven data-intensive
//! application kernels (batch-norm forward/backward, fully-connected,
//! KMeans, SVM, Histogram, genomic sequence filtering) — in three forms:
//!
//! * a **PIM kernel** stream (fine-grained PIM instructions tiled to the
//!   temporary-storage size, with ordering primitives between phases as
//!   in paper Figure 4),
//! * a **host kernel** stream (conventional loads/computes/stores whose
//!   ordering register dependences enforce — the GPU baseline), and
//! * a **golden interpretation** (sequential semantics) used to verify
//!   that a simulated run computed the right bytes.
//!
//! Kernels are described by a [`KernelSpec`] — a per-tile phase program
//! over one or more data structures — and instantiated against a memory
//! layout that places all of a kernel's operand streams in one bank of
//! each channel (the paper's operand-alignment assumption, Section 6).

pub mod builder;
pub mod data;
pub mod host;
pub mod kernel;
pub mod layout;
pub mod registry;
pub mod verify;

pub use builder::KernelBuilder;
pub use host::HostKernelGen;
pub use kernel::{Addressing, KernelSpec, OrderingMode, Phase, PimKernelGen, RandomPer};
pub use layout::Layout;
pub use registry::{Suite, WorkloadId, WorkloadInstance, WorkloadMeta};
pub use verify::GoldenInterp;
