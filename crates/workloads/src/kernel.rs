//! Kernel specifications and the PIM instruction-stream generator.
//!
//! A kernel is a per-tile *phase program* over one or more data
//! structures, mirroring paper Figure 4: load a tile of `N` stripes into
//! temporary storage, combine memory operands into it (fetch-and-op),
//! run execute-only compute, store results — with an ordering primitive
//! between phases. `N` is bounded by the TS size, so smaller TS means
//! more tiles and more ordering primitives (the central trade-off of
//! Figures 5, 10 and 12).

use crate::layout::Layout;
use orderlight::isa::OrderingInstr;
use orderlight::types::{ChannelId, TsSlot};
use orderlight::{AluOp, ConfigError, InstrStream, KernelInstr, PimInstruction, PimOp};
use std::collections::VecDeque;

/// Which ordering primitive the generated kernel uses between phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingMode {
    /// No ordering at all — fast but functionally incorrect for
    /// multi-phase kernels (Figure 5's leftmost bar).
    None,
    /// Traditional core-centric fences (the paper's baseline).
    Fence,
    /// OrderLight packets (the paper's proposal).
    OrderLight,
    /// Per-request sequence numbers with credit-based buffering at the
    /// controller — the Kim et al. (paper reference 27) approach the paper contrasts in
    /// Section 8.1. No ordering instructions are emitted; the controller
    /// dequeues each warp's requests strictly in sequence order, and the
    /// core may only issue while it holds buffer credits.
    SeqNum,
    /// Louvre-style versioned releases (Kumar et al.): a release marker
    /// stamped with the warp's per-group version is injected between
    /// phases; the controller holds it until older requests drain.
    LouvreVersioned,
    /// Perach-style controller-enforced strong consistency for
    /// bulk-bitwise PIM: no ordering instructions at all — the controller
    /// serializes each memory group in arrival order.
    BulkBitwiseStrong,
}

impl std::fmt::Display for OrderingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderingMode::None => write!(f, "none"),
            OrderingMode::Fence => write!(f, "fence"),
            OrderingMode::OrderLight => write!(f, "orderlight"),
            OrderingMode::SeqNum => write!(f, "seqnum"),
            OrderingMode::LouvreVersioned => write!(f, "louvre"),
            OrderingMode::BulkBitwiseStrong => write!(f, "bulk"),
        }
    }
}

/// Granularity at which a random-addressing phase re-randomises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomPer {
    /// Every stripe hits an independent random location (histogram bin
    /// updates).
    Stripe,
    /// Each tile starts at a random location and reads consecutively
    /// (the genome filter's 128 B candidate probes).
    Tile,
}

/// How a memory phase walks its structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Addressing {
    /// Streaming: stripe `i` of the tile maps to stripe `tile*N + i`.
    Sequential,
    /// Pseudo-random within the first `span_rows` rows of the structure.
    Random {
        /// Re-randomisation granularity.
        per: RandomPer,
        /// Address span in rows.
        span_rows: u64,
    },
}

/// One phase of a kernel's per-tile program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Move a tile of `structure` into TS (`PIM_Load`).
    Load {
        /// Source structure index.
        structure: usize,
    },
    /// Fetch a tile of `structure` and combine it into TS (`PIM_<op>`).
    FetchOp {
        /// The combine operation (must read memory).
        op: AluOp,
        /// Operand structure index.
        structure: usize,
        /// Address pattern.
        addressing: Addressing,
    },
    /// Execute-only compute on TS, `per_stripe` commands for every
    /// `stride`-th stripe.
    Exec {
        /// The operation (must be an immediate op).
        op: AluOp,
        /// Commands per affected stripe.
        per_stripe: u32,
        /// Apply to every `stride`-th stripe (1 = all).
        stride: u32,
    },
    /// Store a tile of TS to `structure` (`PIM_Store`).
    Store {
        /// Destination structure index.
        structure: usize,
    },
}

/// A kernel described as a per-tile phase program.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name (Table 2).
    pub name: &'static str,
    /// The per-tile phases, in order.
    pub phases: Vec<Phase>,
    /// Number of data structures.
    pub structures: usize,
    /// Hard cap on the tile size in stripes, independent of TS (the
    /// genome filter's 128 B = 4-stripe granularity).
    pub tile_cap: Option<u64>,
    /// Insert an extra ordering primitive every `chunk` stripes *within*
    /// memory phases — models reduction-structured kernels (FC, KMeans)
    /// whose ordering needs shrink more slowly with TS size.
    pub ordering_chunk: Option<u64>,
    /// For kernels that accumulate in TS across tiles (FC, KMeans, SVM,
    /// Histogram, genome filter): store the accumulator tile to this
    /// structure once, after the last tile — making the reduction result
    /// observable in memory for verification.
    pub final_store: Option<usize>,
}

impl KernelSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if a phase references a structure out of
    /// range, an `Exec` op reads memory, a `FetchOp` op does not, or the
    /// program is empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.phases.is_empty() {
            return Err(ConfigError::new("kernel has no phases"));
        }
        if self.structures == 0 {
            return Err(ConfigError::new("kernel has no data structures"));
        }
        for phase in &self.phases {
            match *phase {
                Phase::Load { structure } | Phase::Store { structure } => {
                    if structure >= self.structures {
                        return Err(ConfigError::new("phase references missing structure"));
                    }
                }
                Phase::FetchOp { op, structure, .. } => {
                    if structure >= self.structures {
                        return Err(ConfigError::new("phase references missing structure"));
                    }
                    if !op.reads_memory() {
                        return Err(ConfigError::new("fetch-op must read memory"));
                    }
                }
                Phase::Exec { op, per_stripe, stride } => {
                    if op.reads_memory() {
                        return Err(ConfigError::new("exec op must be an immediate op"));
                    }
                    if per_stripe == 0 || stride == 0 {
                        return Err(ConfigError::new("exec counts must be positive"));
                    }
                }
            }
        }
        if matches!(self.tile_cap, Some(0)) || matches!(self.ordering_chunk, Some(0)) {
            return Err(ConfigError::new("tile_cap and ordering_chunk must be positive"));
        }
        if self.final_store.is_some_and(|s| s >= self.structures) {
            return Err(ConfigError::new("final_store references missing structure"));
        }
        Ok(())
    }

    /// The effective tile size for a TS of `ts_stripes`.
    #[must_use]
    pub fn tile_stripes(&self, ts_stripes: u64) -> u64 {
        match self.tile_cap {
            Some(cap) => ts_stripes.min(cap),
            None => ts_stripes,
        }
    }

    /// Data structures read by the kernel (initialisation targets).
    #[must_use]
    pub fn input_structures(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .phases
            .iter()
            .filter_map(|p| match *p {
                Phase::Load { structure } | Phase::FetchOp { structure, .. } => Some(structure),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Data structures written by the kernel (verification targets).
    #[must_use]
    pub fn output_structures(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .phases
            .iter()
            .filter_map(|p| match *p {
                Phase::Store { structure } => Some(structure),
                _ => None,
            })
            .chain(self.final_store)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The structural counterpart of Table 2's compute:memory ratio:
    /// `(scalar compute ops per element, distinct data structures
    /// accessed)`. An AXPY counts as two scalar ops (multiply + add);
    /// pure data movement counts as zero.
    #[must_use]
    pub fn ops_per_stripe(&self) -> (f64, f64) {
        let mut compute = 0.0;
        let mut touched = std::collections::BTreeSet::new();
        for p in &self.phases {
            match *p {
                Phase::Load { structure } | Phase::Store { structure } => {
                    touched.insert(structure);
                }
                Phase::FetchOp { op, structure, .. } => {
                    touched.insert(structure);
                    compute += f64::from(op.scalar_ops());
                }
                Phase::Exec { op, per_stripe, stride } => {
                    compute +=
                        f64::from(op.scalar_ops()) * f64::from(per_stripe) / f64::from(stride);
                }
            }
        }
        (compute, touched.len() as f64)
    }
}

/// Deterministic xorshift-multiply PRNG for irregular address patterns.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lcg(pub u64);

impl Lcg {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The PIM-kernel instruction stream generator.
///
/// Walks the kernel's tiles, emitting the phase program with the chosen
/// ordering primitive between phases. Deterministic: a fresh generator
/// with the same parameters produces the same stream, which is what the
/// golden-model verifier replays.
///
/// # Example
///
/// ```
/// use orderlight::mapping::{AddressMapping, GroupMap};
/// use orderlight::types::ChannelId;
/// use orderlight::InstrStream;
/// use orderlight_workloads::{OrderingMode, WorkloadId, WorkloadInstance};
///
/// let instance = WorkloadInstance::new(
///     WorkloadId::Add,
///     AddressMapping::hbm_default(),
///     &GroupMap::default(),
///     8,   // TS stripes (1/8 of a 2 KB row)
///     64,  // elements per structure per channel
///     OrderingMode::OrderLight,
/// );
/// let mut stream = instance.pim_stream(ChannelId(0));
/// let mut pim = 0;
/// let mut ordering = 0;
/// while let Some(instr) = stream.next_instr() {
///     if instr.is_pim() { pim += 1 } else { ordering += 1 }
/// }
/// // 3 phases x 64 stripes, and 3 packets per 8-stripe tile.
/// assert_eq!(pim, 192);
/// assert_eq!(ordering, 24);
/// ```
#[derive(Debug, Clone)]
pub struct PimKernelGen {
    spec: KernelSpec,
    layout: Layout,
    channel: ChannelId,
    tile_stripes: u64,
    total_stripes: u64,
    mode: OrderingMode,
    tile: u64,
    n_tiles: u64,
    phase_idx: usize,
    final_emitted: bool,
    buf: VecDeque<KernelInstr>,
    rng: Lcg,
}

impl PimKernelGen {
    /// Creates a generator for `channel`, covering `total_stripes`
    /// elements per structure with a TS of `ts_stripes`.
    ///
    /// # Panics
    /// Panics if the spec is invalid or `total_stripes` is zero.
    #[must_use]
    pub fn new(
        spec: KernelSpec,
        layout: Layout,
        channel: ChannelId,
        ts_stripes: u64,
        total_stripes: u64,
        mode: OrderingMode,
    ) -> Self {
        spec.validate().expect("kernel spec must be valid");
        assert!(total_stripes > 0, "empty kernel");
        assert!(ts_stripes > 0, "TS must hold at least one stripe");
        let tile_stripes = spec.tile_stripes(ts_stripes);
        let n_tiles = total_stripes.div_ceil(tile_stripes);
        PimKernelGen {
            spec,
            layout,
            channel,
            tile_stripes,
            total_stripes,
            mode,
            tile: 0,
            n_tiles,
            phase_idx: 0,
            final_emitted: false,
            buf: VecDeque::new(),
            rng: Lcg(0x9E37_79B9_7F4A_7C15 ^ u64::from(channel.0)),
        }
    }

    /// Stripes in tile `tile` (the last tile may be partial).
    fn stripes_in_tile(&self, tile: u64) -> u64 {
        (self.total_stripes - tile * self.tile_stripes).min(self.tile_stripes)
    }

    /// Tiles the kernel runs.
    #[must_use]
    pub fn n_tiles(&self) -> u64 {
        self.n_tiles
    }

    fn push_ordering(&mut self) {
        match self.mode {
            // SeqNum and BulkBitwiseStrong enforce entirely at the
            // controller: the kernel carries no ordering instructions.
            OrderingMode::None | OrderingMode::SeqNum | OrderingMode::BulkBitwiseStrong => {}
            OrderingMode::Fence => {
                self.buf.push_back(KernelInstr::Ordering(OrderingInstr::Fence));
            }
            OrderingMode::OrderLight => {
                self.buf.push_back(KernelInstr::Ordering(OrderingInstr::OrderLight {
                    group: self.layout.group(),
                }));
            }
            OrderingMode::LouvreVersioned => {
                self.buf.push_back(KernelInstr::Ordering(OrderingInstr::Release {
                    group: self.layout.group(),
                }));
            }
        }
    }

    fn pim(&self, op: PimOp, structure: usize, stripe: u64, slot: u64) -> KernelInstr {
        KernelInstr::Pim(PimInstruction {
            op,
            addr: self.layout.addr(self.channel, structure, stripe),
            slot: TsSlot(slot as u16),
            group: self.layout.group(),
        })
    }

    /// Pseudo-random stripe index within `span_rows` of a structure,
    /// leaving room for `run` consecutive stripes.
    fn random_stripe(&mut self, span_rows: u64, run: u64) -> u64 {
        let spr = self.layout.mapping().stripes_per_row();
        let span_stripes = (span_rows.min(self.layout.rows_per_structure()) * spr).max(run);
        let limit = span_stripes - run + 1;
        self.rng.next() % limit
    }

    /// Generates the current tile-phase into the buffer and advances.
    fn refill(&mut self) {
        if self.tile >= self.n_tiles {
            return;
        }
        let n = self.stripes_in_tile(self.tile);
        let base = self.tile * self.tile_stripes;
        let chunk = self.spec.ordering_chunk;
        let phase = self.spec.phases[self.phase_idx];
        match phase {
            Phase::Load { structure } => {
                for s in 0..n {
                    let instr = self.pim(PimOp::Load, structure, base + s, s);
                    self.buf.push_back(instr);
                    if chunk.is_some_and(|c| (s + 1) % c == 0 && s + 1 < n) {
                        self.push_ordering();
                    }
                }
            }
            Phase::FetchOp { op, structure, addressing } => {
                let tile_base = match addressing {
                    Addressing::Sequential => base,
                    Addressing::Random { per: RandomPer::Tile, span_rows } => {
                        self.random_stripe(span_rows, n)
                    }
                    Addressing::Random { per: RandomPer::Stripe, .. } => 0,
                };
                for s in 0..n {
                    let stripe = match addressing {
                        Addressing::Random { per: RandomPer::Stripe, span_rows } => {
                            self.random_stripe(span_rows, 1)
                        }
                        _ => tile_base + s,
                    };
                    let instr = self.pim(PimOp::Compute(op), structure, stripe, s);
                    self.buf.push_back(instr);
                    if chunk.is_some_and(|c| (s + 1) % c == 0 && s + 1 < n) {
                        self.push_ordering();
                    }
                }
            }
            Phase::Exec { op, per_stripe, stride } => {
                for s in (0..n).step_by(stride as usize) {
                    for _ in 0..per_stripe {
                        let instr = self.pim(PimOp::Execute(op), 0, base + s, s);
                        self.buf.push_back(instr);
                    }
                }
            }
            Phase::Store { structure } => {
                for s in 0..n {
                    let instr = self.pim(PimOp::Store, structure, base + s, s);
                    self.buf.push_back(instr);
                    if chunk.is_some_and(|c| (s + 1) % c == 0 && s + 1 < n) {
                        self.push_ordering();
                    }
                }
            }
        }
        self.push_ordering();
        self.phase_idx += 1;
        if self.phase_idx == self.spec.phases.len() {
            self.phase_idx = 0;
            self.tile += 1;
        }
    }
}

impl PimKernelGen {
    /// Emits the post-run accumulator store, if the spec asks for one.
    fn emit_final_store(&mut self) {
        let Some(structure) = self.spec.final_store else {
            self.final_emitted = true;
            return;
        };
        let n = self.stripes_in_tile(self.n_tiles - 1).max(1).min(self.tile_stripes);
        for s in 0..n {
            let instr = self.pim(PimOp::Store, structure, s, s);
            self.buf.push_back(instr);
        }
        self.push_ordering();
        self.final_emitted = true;
    }
}

impl InstrStream for PimKernelGen {
    fn next_instr(&mut self) -> Option<KernelInstr> {
        while self.buf.is_empty() && self.tile < self.n_tiles {
            self.refill();
        }
        if self.buf.is_empty() && !self.final_emitted {
            self.emit_final_store();
        }
        self.buf.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::mapping::{AddressMapping, GroupMap};
    use orderlight::types::MemGroupId;

    fn add_spec() -> KernelSpec {
        KernelSpec {
            name: "add",
            phases: vec![
                Phase::Load { structure: 0 },
                Phase::FetchOp { op: AluOp::Add, structure: 1, addressing: Addressing::Sequential },
                Phase::Store { structure: 2 },
            ],
            structures: 3,
            tile_cap: None,
            ordering_chunk: None,
            final_store: None,
        }
    }

    fn layout(structures: usize, stripes: u64) -> Layout {
        Layout::new(
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            MemGroupId(0),
            structures,
            stripes,
        )
    }

    fn collect(mut g: PimKernelGen) -> Vec<KernelInstr> {
        let mut v = Vec::new();
        while let Some(i) = g.next_instr() {
            v.push(i);
        }
        v
    }

    #[test]
    fn add_kernel_has_figure4_shape() {
        // 8 stripes total, TS of 4 -> 2 tiles; each tile: 4 loads, OL,
        // 4 fetch-adds, OL, 4 stores, OL.
        let g = PimKernelGen::new(
            add_spec(),
            layout(3, 8),
            ChannelId(0),
            4,
            8,
            OrderingMode::OrderLight,
        );
        assert_eq!(g.n_tiles(), 2);
        let instrs = collect(g);
        assert_eq!(instrs.len(), 2 * (12 + 3));
        let pim: Vec<_> = instrs.iter().filter(|i| i.is_pim()).collect();
        let ords = instrs.iter().filter(|i| i.is_ordering()).count();
        assert_eq!(pim.len(), 24);
        assert_eq!(ords, 6, "three ordering primitives per tile (Figure 4)");
        // First tile: loads of structure 0 into slots 0..4.
        match instrs[0] {
            KernelInstr::Pim(p) => {
                assert_eq!(p.op, PimOp::Load);
                assert_eq!(p.slot, TsSlot(0));
            }
            _ => panic!("expected load first"),
        }
        // An ordering primitive right after the 4 loads.
        assert!(instrs[4].is_ordering());
    }

    #[test]
    fn fence_and_none_modes_change_only_ordering() {
        let mk = |mode| PimKernelGen::new(add_spec(), layout(3, 8), ChannelId(0), 4, 8, mode);
        let ol = collect(mk(OrderingMode::OrderLight));
        let fence = collect(mk(OrderingMode::Fence));
        let none = collect(mk(OrderingMode::None));
        assert_eq!(
            ol.iter().filter(|i| i.is_pim()).count(),
            fence.iter().filter(|i| i.is_pim()).count()
        );
        assert_eq!(none.iter().filter(|i| i.is_ordering()).count(), 0);
        assert!(fence
            .iter()
            .filter(|i| i.is_ordering())
            .all(|i| matches!(i, KernelInstr::Ordering(OrderingInstr::Fence))));
    }

    #[test]
    fn bigger_ts_means_fewer_ordering_primitives() {
        let count = |ts| {
            let g = PimKernelGen::new(
                add_spec(),
                layout(3, 64),
                ChannelId(0),
                ts,
                64,
                OrderingMode::Fence,
            );
            collect(g).iter().filter(|i| i.is_ordering()).count()
        };
        assert_eq!(count(4), 16 * 3);
        assert_eq!(count(8), 8 * 3);
        assert_eq!(count(32), 2 * 3);
    }

    #[test]
    fn tile_cap_limits_tile_size() {
        let spec = KernelSpec { tile_cap: Some(4), ..add_spec() };
        let g = PimKernelGen::new(spec, layout(3, 64), ChannelId(0), 32, 64, OrderingMode::None);
        assert_eq!(g.n_tiles(), 16, "cap of 4 stripes overrides TS of 32");
    }

    #[test]
    fn ordering_chunk_adds_mid_phase_primitives() {
        let spec = KernelSpec { ordering_chunk: Some(2), ..add_spec() };
        let g = PimKernelGen::new(spec, layout(3, 8), ChannelId(0), 8, 8, OrderingMode::OrderLight);
        let instrs = collect(g);
        // One tile of 8: per memory phase, 3 extra mid-phase + 1 final.
        let ords = instrs.iter().filter(|i| i.is_ordering()).count();
        assert_eq!(ords, 3 * 4);
    }

    #[test]
    fn partial_last_tile() {
        let g =
            PimKernelGen::new(add_spec(), layout(3, 10), ChannelId(0), 4, 10, OrderingMode::None);
        let instrs = collect(g);
        // Tiles of 4, 4, 2 -> 3 phases x 10 stripes = 30 PIM instrs.
        assert_eq!(instrs.len(), 30);
    }

    #[test]
    fn random_tile_addressing_stays_in_span() {
        let spec = KernelSpec {
            name: "genfil-ish",
            phases: vec![Phase::FetchOp {
                op: AluOp::Hamming,
                structure: 0,
                addressing: Addressing::Random { per: RandomPer::Tile, span_rows: 4 },
            }],
            structures: 1,
            tile_cap: Some(4),
            ordering_chunk: None,
            final_store: None,
        };
        let g =
            PimKernelGen::new(spec, layout(1, 4 * 64), ChannelId(0), 32, 64, OrderingMode::None);
        let l = layout(1, 4 * 64);
        let limit = l.addr(ChannelId(0), 0, 4 * 64 - 1).0;
        for i in collect(g) {
            if let KernelInstr::Pim(p) = i {
                assert!(p.addr.0 <= limit, "address beyond span");
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mk = || {
            PimKernelGen::new(
                add_spec(),
                layout(3, 32),
                ChannelId(5),
                8,
                32,
                OrderingMode::OrderLight,
            )
        };
        assert_eq!(collect(mk()), collect(mk()));
    }

    #[test]
    fn spec_validation_rejects_bad_programs() {
        let mut s = add_spec();
        s.structures = 2;
        assert!(s.validate().is_err(), "store references structure 2");
        let s = KernelSpec {
            name: "bad",
            phases: vec![Phase::Exec { op: AluOp::Add, per_stripe: 1, stride: 1 }],
            structures: 1,
            tile_cap: None,
            ordering_chunk: None,
            final_store: None,
        };
        assert!(s.validate().is_err(), "exec must not read memory");
        let s = KernelSpec {
            name: "bad2",
            phases: vec![Phase::FetchOp {
                op: AluOp::ScaleImm(2),
                structure: 0,
                addressing: Addressing::Sequential,
            }],
            structures: 1,
            tile_cap: None,
            ordering_chunk: None,
            final_store: None,
        };
        assert!(s.validate().is_err(), "fetch must read memory");
    }

    #[test]
    fn ops_per_stripe_matches_structure() {
        let (c, m) = add_spec().ops_per_stripe();
        assert_eq!((c, m), (1.0, 3.0), "Add is 1:3 (Table 2)");
    }
}
