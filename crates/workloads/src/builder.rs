//! A fluent builder for custom PIM kernels — the "intrinsics-like low
//! level primitives" of paper Section 5.4.
//!
//! The paper envisions programmers expressing PIM computations with
//! intrinsics that compile to fine-grained PIM instruction streams,
//! with channel and memory-group fields populated from the memory
//! organisation. [`KernelBuilder`] is that API surface: describe the
//! per-tile phase program, and the generators take care of tiling for
//! the TS size, addressing each channel's slice, and inserting the
//! chosen ordering primitive at every phase boundary.
//!
//! # Example
//!
//! A residual feature-map update `y[i] = gamma * (x[i] + y[i]) + beta`:
//!
//! ```
//! use orderlight::AluOp;
//! use orderlight_workloads::KernelBuilder;
//!
//! # fn main() -> Result<(), orderlight::ConfigError> {
//! let spec = KernelBuilder::new("residual_update")
//!     .load(0)                        // x tile into TS
//!     .fetch(AluOp::Add, 1)           // += y
//!     .exec(AluOp::ScaleImm(3), 1)    // *= gamma
//!     .exec(AluOp::AddImm(11), 1)     // += beta
//!     .store(1)                       // back to y
//!     .build()?;
//! assert_eq!(spec.structures, 2);
//! # Ok(())
//! # }
//! ```
//!
//! `exec` phases require immediate operations (a memory-reading op in
//! an execute-only command is rejected by validation); `fetch` phases
//! require memory-reading ones.

use crate::kernel::{Addressing, KernelSpec, Phase, RandomPer};
use orderlight::{AluOp, ConfigError};

/// Fluent construction of a [`KernelSpec`].
#[derive(Debug, Clone, Default)]
pub struct KernelBuilder {
    name: &'static str,
    phases: Vec<Phase>,
    tile_cap: Option<u64>,
    ordering_chunk: Option<u64>,
    final_store: Option<usize>,
}

impl KernelBuilder {
    /// Starts a kernel named `name`.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        KernelBuilder { name, ..KernelBuilder::default() }
    }

    /// Appends a load phase: a tile of `structure` into TS.
    #[must_use]
    pub fn load(mut self, structure: usize) -> Self {
        self.phases.push(Phase::Load { structure });
        self
    }

    /// Appends a fetch-and-op phase streaming `structure`.
    #[must_use]
    pub fn fetch(mut self, op: AluOp, structure: usize) -> Self {
        self.phases.push(Phase::FetchOp { op, structure, addressing: Addressing::Sequential });
        self
    }

    /// Appends a fetch-and-op phase over pseudo-random locations within
    /// the first `span_rows` rows of `structure`.
    #[must_use]
    pub fn fetch_random(
        mut self,
        op: AluOp,
        structure: usize,
        per: RandomPer,
        span_rows: u64,
    ) -> Self {
        self.phases.push(Phase::FetchOp {
            op,
            structure,
            addressing: Addressing::Random { per, span_rows },
        });
        self
    }

    /// Appends an execute-only phase: `per_stripe` immediate operations
    /// on every tile stripe.
    #[must_use]
    pub fn exec(self, op: AluOp, per_stripe: u32) -> Self {
        self.exec_strided(op, per_stripe, 1)
    }

    /// Appends an execute-only phase applied to every `stride`-th
    /// stripe.
    #[must_use]
    pub fn exec_strided(mut self, op: AluOp, per_stripe: u32, stride: u32) -> Self {
        self.phases.push(Phase::Exec { op, per_stripe, stride });
        self
    }

    /// Appends a store phase: the TS tile out to `structure`.
    #[must_use]
    pub fn store(mut self, structure: usize) -> Self {
        self.phases.push(Phase::Store { structure });
        self
    }

    /// Caps the tile size in stripes regardless of TS (algorithmic
    /// granularity, like the genome filter's 128 B probes).
    #[must_use]
    pub fn tile_cap(mut self, stripes: u64) -> Self {
        self.tile_cap = Some(stripes);
        self
    }

    /// Orders every `stripes` elements *within* memory phases (reduction
    /// structure).
    #[must_use]
    pub fn ordering_chunk(mut self, stripes: u64) -> Self {
        self.ordering_chunk = Some(stripes);
        self
    }

    /// Stores the TS accumulators to `structure` once after the last
    /// tile (makes cross-tile reductions observable).
    #[must_use]
    pub fn final_store(mut self, structure: usize) -> Self {
        self.final_store = Some(structure);
        self
    }

    /// Validates and produces the [`KernelSpec`]. The structure count is
    /// inferred from the highest structure index used.
    ///
    /// # Errors
    /// Returns [`ConfigError`] for an empty program, an `exec` op that
    /// reads memory, a `fetch` op that does not, or zero counts — the
    /// same rules as [`KernelSpec::validate`].
    pub fn build(self) -> Result<KernelSpec, ConfigError> {
        let structures = self
            .phases
            .iter()
            .filter_map(|p| match *p {
                Phase::Load { structure }
                | Phase::Store { structure }
                | Phase::FetchOp { structure, .. } => Some(structure + 1),
                Phase::Exec { .. } => None,
            })
            .chain(self.final_store.map(|s| s + 1))
            .max()
            .unwrap_or(0)
            .max(1);
        let spec = KernelSpec {
            name: self.name,
            phases: self.phases,
            structures,
            tile_cap: self.tile_cap,
            ordering_chunk: self.ordering_chunk,
            final_store: self.final_store,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{OrderingMode, PimKernelGen};
    use crate::layout::Layout;
    use orderlight::mapping::{AddressMapping, GroupMap};
    use orderlight::types::{ChannelId, MemGroupId};
    use orderlight::InstrStream;

    #[test]
    fn builds_the_figure4_kernel() {
        let spec =
            KernelBuilder::new("vector_add").load(0).fetch(AluOp::Add, 1).store(2).build().unwrap();
        assert_eq!(spec.structures, 3);
        assert_eq!(spec.phases.len(), 3);
        let reference = crate::WorkloadId::Add.spec();
        assert_eq!(spec.phases, reference.phases);
        assert_eq!(spec.structures, reference.structures);
    }

    #[test]
    fn infers_structures_from_final_store() {
        let spec = KernelBuilder::new("reduce")
            .fetch(AluOp::AxpyImm(3), 0)
            .ordering_chunk(4)
            .final_store(1)
            .build()
            .unwrap();
        assert_eq!(spec.structures, 2);
        assert_eq!(spec.final_store, Some(1));
    }

    #[test]
    fn rejects_memory_reading_exec() {
        let err = KernelBuilder::new("bad").load(0).exec(AluOp::Max, 1).build();
        assert!(err.is_err());
    }

    #[test]
    fn rejects_empty_program() {
        assert!(KernelBuilder::new("empty").build().is_err());
    }

    #[test]
    fn built_spec_generates_streams() {
        let spec = KernelBuilder::new("scale_bias")
            .load(0)
            .exec(AluOp::ScaleImm(3), 1)
            .exec(AluOp::AddImm(7), 1)
            .store(1)
            .build()
            .unwrap();
        let layout = Layout::new(
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            MemGroupId(0),
            spec.structures,
            32,
        );
        let mut gen =
            PimKernelGen::new(spec, layout, ChannelId(0), 8, 32, OrderingMode::OrderLight);
        let mut n = 0;
        while gen.next_instr().is_some() {
            n += 1;
        }
        // 4 tiles x (8 loads + 8 + 8 execs + 8 stores + 4 packets).
        assert_eq!(n, 4 * 36);
    }
}
