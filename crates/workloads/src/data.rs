//! Deterministic input-data initialisation.
//!
//! Input structures are filled with a fixed hash of the address so that
//! (a) every run is reproducible, (b) the golden interpreter and the
//! simulator agree byte-for-byte, and (c) adjacent stripes differ —
//! an off-by-one-stripe ordering bug cannot cancel out.

use orderlight::types::{Addr, Stripe, LANES};

/// The deterministic fill value for the stripe at `addr`.
#[must_use]
pub fn init_stripe(addr: Addr) -> Stripe {
    let base = addr.0 / 32;
    let mut lanes = [0u32; LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        let mut x = base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 32;
        *lane = x as u32;
    }
    Stripe(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let a = init_stripe(Addr(0));
        let b = init_stripe(Addr(32));
        assert_eq!(a, init_stripe(Addr(0)));
        assert_ne!(a, b);
        assert_ne!(a.0[0], a.0[1], "lanes differ within a stripe");
    }

    #[test]
    fn same_stripe_different_byte_offsets_share_value() {
        // Values are per-stripe; sub-stripe offsets are not used by the
        // simulator but must not change the stripe value.
        assert_eq!(init_stripe(Addr(64)), init_stripe(Addr(64)));
    }
}
