//! Conventional-GPU (host) kernel generator — the paper's "GPU Time"
//! baseline bars in Figure 10b.
//!
//! The same per-tile phase program is lowered to conventional loads,
//! in-core SIMD computes and stores. Ordering comes for free from
//! register dependences (the host sees its own load data), at the cost
//! of moving every byte across the memory pipe at host bandwidth —
//! which is exactly what PIM avoids.
//!
//! Tiles are sized for memory-level parallelism rather than TS: `K`
//! loads issue back-to-back into distinct registers before the dependent
//! computes consume them.

use crate::kernel::{Addressing, KernelSpec, Lcg, Phase, RandomPer};
use crate::layout::Layout;
use orderlight::types::ChannelId;
use orderlight::{InstrStream, KernelInstr, Reg};
use std::collections::VecDeque;

/// Host tile size in stripes (bounded by the register budget: `K`
/// accumulators + `K` fetch operands out of 64 registers).
pub const HOST_TILE: u64 = 16;

/// The host (conventional GPU) instruction-stream generator.
#[derive(Debug, Clone)]
pub struct HostKernelGen {
    spec: KernelSpec,
    layout: Layout,
    channel: ChannelId,
    total_stripes: u64,
    tile: u64,
    tile_stride: u64,
    n_tiles: u64,
    phase_idx: usize,
    emit_final: bool,
    final_emitted: bool,
    buf: VecDeque<KernelInstr>,
    rng: Lcg,
}

impl HostKernelGen {
    /// Creates a host generator covering `total_stripes` per structure.
    ///
    /// # Panics
    /// Panics if the spec is invalid or `total_stripes` is zero.
    #[must_use]
    pub fn new(spec: KernelSpec, layout: Layout, channel: ChannelId, total_stripes: u64) -> Self {
        HostKernelGen::with_slice(spec, layout, channel, total_stripes, 0, 1)
    }

    /// Creates the generator for warp `slice` of `slices` cooperating
    /// warps on this channel: tiles are dealt round-robin, and only
    /// slice 0 emits the optional final accumulator store.
    ///
    /// # Panics
    /// Panics if the spec is invalid, `total_stripes` is zero, or
    /// `slice >= slices`.
    #[must_use]
    pub fn with_slice(
        spec: KernelSpec,
        layout: Layout,
        channel: ChannelId,
        total_stripes: u64,
        slice: u64,
        slices: u64,
    ) -> Self {
        spec.validate().expect("kernel spec must be valid");
        assert!(total_stripes > 0, "empty kernel");
        assert!(slice < slices, "slice index out of range");
        let n_tiles = total_stripes.div_ceil(HOST_TILE);
        HostKernelGen {
            spec,
            layout,
            channel,
            total_stripes,
            tile: slice,
            tile_stride: slices,
            n_tiles,
            phase_idx: 0,
            emit_final: slice == 0,
            final_emitted: false,
            buf: VecDeque::new(),
            rng: Lcg(0xD1B5_4A32_D192_ED03 ^ u64::from(channel.0) ^ (slice << 8)),
        }
    }

    fn stripes_in_tile(&self, tile: u64) -> u64 {
        (self.total_stripes - tile * HOST_TILE).min(HOST_TILE)
    }

    /// Accumulator register for tile stripe `s`.
    fn acc(s: u64) -> Reg {
        Reg(s as u8)
    }

    /// Fetch-operand register for tile stripe `s`.
    fn operand(s: u64) -> Reg {
        Reg((HOST_TILE + s) as u8)
    }

    fn random_stripe(&mut self, span_rows: u64, run: u64) -> u64 {
        let spr = self.layout.mapping().stripes_per_row();
        let span_stripes = (span_rows.min(self.layout.rows_per_structure()) * spr).max(run);
        self.rng.next() % (span_stripes - run + 1)
    }

    fn refill(&mut self) {
        if self.tile >= self.n_tiles {
            return;
        }
        let n = self.stripes_in_tile(self.tile);
        let base = self.tile * HOST_TILE;
        let phase = self.spec.phases[self.phase_idx];
        match phase {
            Phase::Load { structure } => {
                for s in 0..n {
                    let addr = self.layout.addr(self.channel, structure, base + s);
                    self.buf.push_back(KernelInstr::Load { addr, reg: Self::acc(s) });
                }
            }
            Phase::FetchOp { op, structure, addressing } => {
                let tile_base = match addressing {
                    Addressing::Sequential => base,
                    Addressing::Random { per: RandomPer::Tile, span_rows } => {
                        self.random_stripe(span_rows, n)
                    }
                    Addressing::Random { per: RandomPer::Stripe, .. } => 0,
                };
                // All operand loads first (memory-level parallelism)...
                let mut stripes = Vec::with_capacity(n as usize);
                for s in 0..n {
                    let stripe = match addressing {
                        Addressing::Random { per: RandomPer::Stripe, span_rows } => {
                            self.random_stripe(span_rows, 1)
                        }
                        _ => tile_base + s,
                    };
                    stripes.push(stripe);
                    let addr = self.layout.addr(self.channel, structure, stripe);
                    self.buf.push_back(KernelInstr::Load { addr, reg: Self::operand(s) });
                }
                // ...then the dependent combines.
                for s in 0..n {
                    self.buf.push_back(KernelInstr::Compute {
                        op,
                        dst: Self::acc(s),
                        a: Self::acc(s),
                        b: Self::operand(s),
                    });
                }
            }
            Phase::Exec { op, per_stripe, stride } => {
                for s in (0..n).step_by(stride as usize) {
                    for _ in 0..per_stripe {
                        self.buf.push_back(KernelInstr::Compute {
                            op,
                            dst: Self::acc(s),
                            a: Self::acc(s),
                            b: Self::acc(s),
                        });
                    }
                }
            }
            Phase::Store { structure } => {
                for s in 0..n {
                    let addr = self.layout.addr(self.channel, structure, base + s);
                    self.buf.push_back(KernelInstr::Store { addr, reg: Self::acc(s) });
                }
            }
        }
        self.phase_idx += 1;
        if self.phase_idx == self.spec.phases.len() {
            self.phase_idx = 0;
            self.tile += self.tile_stride;
        }
    }
}

impl HostKernelGen {
    /// Emits the post-run accumulator store, if the spec asks for one.
    fn emit_final_store(&mut self) {
        if !self.emit_final {
            self.final_emitted = true;
            return;
        }
        let Some(structure) = self.spec.final_store else {
            self.final_emitted = true;
            return;
        };
        let n = HOST_TILE.min(self.total_stripes);
        for s in 0..n {
            let addr = self.layout.addr(self.channel, structure, s);
            self.buf.push_back(KernelInstr::Store { addr, reg: Self::acc(s) });
        }
        self.final_emitted = true;
    }
}

impl InstrStream for HostKernelGen {
    fn next_instr(&mut self) -> Option<KernelInstr> {
        while self.buf.is_empty() && self.tile < self.n_tiles {
            self.refill();
        }
        if self.buf.is_empty() && !self.final_emitted {
            self.emit_final_store();
        }
        self.buf.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::mapping::{AddressMapping, GroupMap};
    use orderlight::types::MemGroupId;
    use orderlight::AluOp;

    fn add_spec() -> KernelSpec {
        KernelSpec {
            name: "add",
            phases: vec![
                Phase::Load { structure: 0 },
                Phase::FetchOp { op: AluOp::Add, structure: 1, addressing: Addressing::Sequential },
                Phase::Store { structure: 2 },
            ],
            structures: 3,
            tile_cap: None,
            ordering_chunk: None,
            final_store: None,
        }
    }

    fn layout() -> Layout {
        Layout::new(AddressMapping::hbm_default(), &GroupMap::default(), MemGroupId(0), 3, 64)
    }

    fn collect(mut g: HostKernelGen) -> Vec<KernelInstr> {
        let mut v = Vec::new();
        while let Some(i) = g.next_instr() {
            v.push(i);
        }
        v
    }

    #[test]
    fn host_add_tile_structure() {
        let g = HostKernelGen::new(add_spec(), layout(), ChannelId(0), 32);
        let instrs = collect(g);
        // 2 tiles of 16: per tile 16 loads + (16 loads + 16 computes) +
        // 16 stores = 64.
        assert_eq!(instrs.len(), 128);
        let loads = instrs.iter().filter(|i| matches!(i, KernelInstr::Load { .. })).count();
        let computes = instrs.iter().filter(|i| matches!(i, KernelInstr::Compute { .. })).count();
        let stores = instrs.iter().filter(|i| matches!(i, KernelInstr::Store { .. })).count();
        assert_eq!((loads, computes, stores), (64, 32, 32));
        assert_eq!(instrs.iter().filter(|i| i.is_ordering()).count(), 0);
    }

    #[test]
    fn operand_loads_precede_dependent_computes() {
        let g = HostKernelGen::new(add_spec(), layout(), ChannelId(0), 16);
        let instrs = collect(g);
        // Within the fetch phase (after the 16 accumulator loads), the
        // 16 operand loads all come before the 16 computes.
        let fetch_phase = &instrs[16..48];
        assert!(fetch_phase[..16].iter().all(|i| matches!(i, KernelInstr::Load { .. })));
        assert!(fetch_phase[16..].iter().all(|i| matches!(i, KernelInstr::Compute { .. })));
    }

    #[test]
    fn registers_stay_in_budget() {
        let g = HostKernelGen::new(add_spec(), layout(), ChannelId(0), 64);
        for i in collect(g) {
            let regs = match i {
                KernelInstr::Load { reg, .. } | KernelInstr::Store { reg, .. } => vec![reg],
                KernelInstr::Compute { dst, a, b, .. } => vec![dst, a, b],
                _ => vec![],
            };
            for r in regs {
                assert!((r.0 as u64) < 2 * HOST_TILE, "register {r} out of budget");
            }
        }
    }

    #[test]
    fn deterministic() {
        let mk = || HostKernelGen::new(add_spec(), layout(), ChannelId(2), 48);
        assert_eq!(collect(mk()), collect(mk()));
    }
}
