//! The workload registry: paper Table 2.
//!
//! | Kernel  | Description                       | C:M ratio | >1 structure |
//! |---------|-----------------------------------|-----------|--------------|
//! | Scale   | `a[i] = s*a[i]`                   | 1:1       | No           |
//! | Copy    | `b[i] = a[i]`                     | 0:2       | Yes          |
//! | Daxpy   | `b[i] = b[i] + s*a[i]`            | 2:2       | Yes          |
//! | Triad   | `c[i] = a[i] + s*b[i]`            | 2:3       | Yes          |
//! | Add     | `c[i] = a[i] + b[i]`              | 1:3       | Yes          |
//! | BN_Fwd  | batch-norm forward                | 7:3       | Yes          |
//! | BN_Bwd  | batch-norm backward               | 14:6      | Yes          |
//! | FC      | fully connected (dot products)    | 2:1       | No           |
//! | KMeans  | KMeans clustering                 | 10:1      | No           |
//! | SVM     | support vector machine            | 2.5:2     | Yes          |
//! | Hist    | histogram                         | 3:2       | Yes          |
//! | Gen_Fil | genomic sequence filtering (GRIM) | 3:1       | No           |
//!
//! Each kernel's [`KernelSpec`] reproduces the *structural* properties
//! the paper's results hinge on: the number of distinct operand streams
//! (row locality), the compute-to-memory balance, reduction structure
//! (FC/KMeans order more often per instruction), and irregular
//! addressing (Gen_Fil's 128 B probes, Hist's bin updates).

use crate::host::HostKernelGen;
use crate::kernel::{Addressing, KernelSpec, OrderingMode, Phase, PimKernelGen, RandomPer};
use crate::layout::Layout;
use crate::{data, verify::GoldenInterp};
use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::types::{Addr, ChannelId, MemGroupId, Stripe};
use orderlight::AluOp;

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The stream benchmark (paper Section 7.1).
    Stream,
    /// The data-intensive application kernels (paper Section 7.2).
    App,
}

/// Table 2 metadata for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMeta {
    /// Kernel name as printed in Table 2.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Compute:memory ratio string from Table 2.
    pub ratio: &'static str,
    /// Whether more than one data structure is accessed.
    pub multi_structure: bool,
    /// Which suite the kernel belongs to.
    pub suite: Suite,
}

/// The twelve evaluated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// `a[i] = scalar * a[i]`.
    Scale,
    /// `b[i] = a[i]`.
    Copy,
    /// `b[i] = b[i] + scalar * a[i]`.
    Daxpy,
    /// `c[i] = a[i] + scalar * b[i]`.
    Triad,
    /// `c[i] = a[i] + b[i]`.
    Add,
    /// Batch normalization, forward phase.
    BnFwd,
    /// Batch normalization, backward phase.
    BnBwd,
    /// Fully-connected layer (inference dot products).
    Fc,
    /// KMeans clustering (distance from centres).
    Kmeans,
    /// Support vector machine (hinge accumulation).
    Svm,
    /// Histogram (bin updates).
    Hist,
    /// Genomic sequence filtering (GRIM-style Hamming probes).
    GenFil,
}

impl WorkloadId {
    /// All workloads in Table 2 order.
    pub const ALL: [WorkloadId; 12] = [
        WorkloadId::Scale,
        WorkloadId::Copy,
        WorkloadId::Daxpy,
        WorkloadId::Triad,
        WorkloadId::Add,
        WorkloadId::BnFwd,
        WorkloadId::BnBwd,
        WorkloadId::Fc,
        WorkloadId::Kmeans,
        WorkloadId::Svm,
        WorkloadId::Hist,
        WorkloadId::GenFil,
    ];

    /// The stream benchmark kernels (Figure 10).
    pub const STREAMS: [WorkloadId; 5] = [
        WorkloadId::Scale,
        WorkloadId::Copy,
        WorkloadId::Daxpy,
        WorkloadId::Triad,
        WorkloadId::Add,
    ];

    /// The application kernels (Figure 12).
    pub const APPS: [WorkloadId; 7] = [
        WorkloadId::BnFwd,
        WorkloadId::BnBwd,
        WorkloadId::Fc,
        WorkloadId::Kmeans,
        WorkloadId::Svm,
        WorkloadId::Hist,
        WorkloadId::GenFil,
    ];

    /// Table 2 metadata.
    #[must_use]
    pub fn meta(self) -> WorkloadMeta {
        use Suite::{App, Stream};
        let m = |name, description, ratio, multi_structure, suite| WorkloadMeta {
            name,
            description,
            ratio,
            multi_structure,
            suite,
        };
        match self {
            WorkloadId::Scale => m("Scale", "a[i] = scalar*a[i]", "1:1", false, Stream),
            WorkloadId::Copy => m("Copy", "b[i] = a[i]", "0:2", true, Stream),
            WorkloadId::Daxpy => m("Daxpy", "b[i] = b[i] + scalar*a[i]", "2:2", true, Stream),
            WorkloadId::Triad => m("Triad", "c[i] = a[i] + scalar*b[i]", "2:3", true, Stream),
            WorkloadId::Add => m("Add", "c[i] = a[i] + b[i]", "1:3", true, Stream),
            WorkloadId::BnFwd => m("BN_Fwd", "Batch Normalization Forward Phase", "7:3", true, App),
            WorkloadId::BnBwd => {
                m("BN_Bwd", "Batch Normalization Backward Phase", "14:6", true, App)
            }
            WorkloadId::Fc => m("FC", "Fully Connected", "2:1", false, App),
            WorkloadId::Kmeans => m("KMeans", "KMeans Clustering", "10:1", false, App),
            WorkloadId::Svm => m("SVM", "Support Vector Machine", "2.5:2", true, App),
            WorkloadId::Hist => m("Hist", "Histogram", "3:2", true, App),
            WorkloadId::GenFil => {
                m("Gen_Fil", "Genomic Sequence Filtering (GRIM Algo)", "3:1", false, App)
            }
        }
    }

    /// The kernel's phase program.
    #[must_use]
    pub fn spec(self) -> KernelSpec {
        let seq = Addressing::Sequential;
        let (phases, structures, tile_cap, ordering_chunk, final_store): (
            Vec<Phase>,
            usize,
            Option<u64>,
            Option<u64>,
            Option<usize>,
        ) = match self {
            WorkloadId::Scale => (
                vec![
                    Phase::Load { structure: 0 },
                    Phase::Exec { op: AluOp::ScaleImm(3), per_stripe: 1, stride: 1 },
                    Phase::Store { structure: 0 },
                ],
                1,
                None,
                None,
                None,
            ),
            WorkloadId::Copy => (
                vec![Phase::Load { structure: 0 }, Phase::Store { structure: 1 }],
                2,
                None,
                None,
                None,
            ),
            WorkloadId::Daxpy => (
                vec![
                    Phase::Load { structure: 0 },
                    Phase::FetchOp { op: AluOp::AxpyImm(3), structure: 1, addressing: seq },
                    Phase::Store { structure: 0 },
                ],
                2,
                None,
                None,
                None,
            ),
            WorkloadId::Triad => (
                vec![
                    Phase::Load { structure: 0 },
                    Phase::FetchOp { op: AluOp::AxpyImm(3), structure: 1, addressing: seq },
                    Phase::Store { structure: 2 },
                ],
                3,
                None,
                None,
                None,
            ),
            WorkloadId::Add => (
                vec![
                    Phase::Load { structure: 0 },
                    Phase::FetchOp { op: AluOp::Add, structure: 1, addressing: seq },
                    Phase::Store { structure: 2 },
                ],
                3,
                None,
                None,
                None,
            ),
            WorkloadId::BnFwd => (
                vec![
                    Phase::Load { structure: 0 },
                    Phase::FetchOp { op: AluOp::Sub, structure: 1, addressing: seq },
                    Phase::Exec { op: AluOp::ScaleImm(3), per_stripe: 3, stride: 1 },
                    Phase::Exec { op: AluOp::AddImm(11), per_stripe: 3, stride: 1 },
                    Phase::Store { structure: 2 },
                ],
                3,
                None,
                None,
                None,
            ),
            WorkloadId::BnBwd => (
                vec![
                    Phase::Load { structure: 0 },
                    Phase::FetchOp { op: AluOp::Sub, structure: 1, addressing: seq },
                    Phase::FetchOp { op: AluOp::Mul, structure: 2, addressing: seq },
                    Phase::FetchOp { op: AluOp::Add, structure: 3, addressing: seq },
                    Phase::FetchOp { op: AluOp::AxpyImm(5), structure: 4, addressing: seq },
                    Phase::Exec { op: AluOp::ScaleImm(7), per_stripe: 9, stride: 1 },
                    Phase::Store { structure: 5 },
                ],
                6,
                None,
                None,
                None,
            ),
            WorkloadId::Fc => (
                // Dot-product accumulation: every fetch-MAC (multiply +
                // add = the 2:1 ratio) chains into the same TS
                // accumulators, so ordering is needed every few stripes
                // regardless of TS size.
                vec![Phase::FetchOp { op: AluOp::AxpyImm(3), structure: 0, addressing: seq }],
                1,
                None,
                Some(4),
                Some(0),
            ),
            WorkloadId::Kmeans => (
                vec![
                    Phase::FetchOp { op: AluOp::Sub, structure: 0, addressing: seq },
                    Phase::Exec { op: AluOp::ScaleImm(3), per_stripe: 9, stride: 1 },
                ],
                1,
                None,
                Some(8),
                Some(0),
            ),
            WorkloadId::Svm => (
                // Hinge clamp against the margins plus accumulation of
                // the support contributions; every other element needs a
                // bias step, giving the fractional 2.5:2 ratio.
                vec![
                    Phase::FetchOp { op: AluOp::Max, structure: 0, addressing: seq },
                    Phase::FetchOp { op: AluOp::Add, structure: 1, addressing: seq },
                    Phase::Exec { op: AluOp::AddImm(5), per_stripe: 1, stride: 2 },
                ],
                2,
                None,
                None,
                Some(1),
            ),
            WorkloadId::Hist => (
                vec![
                    Phase::Load { structure: 0 },
                    Phase::Exec { op: AluOp::ScaleImm(3), per_stripe: 2, stride: 1 },
                    Phase::FetchOp {
                        op: AluOp::Add,
                        structure: 1,
                        addressing: Addressing::Random { per: RandomPer::Stripe, span_rows: 16 },
                    },
                ],
                2,
                None,
                None,
                Some(1),
            ),
            WorkloadId::GenFil => (
                // 128 B (4-stripe) probes at pseudo-random candidate
                // locations, independent of TS size.
                vec![
                    Phase::FetchOp {
                        op: AluOp::Hamming,
                        structure: 0,
                        addressing: Addressing::Random { per: RandomPer::Tile, span_rows: 1 << 20 },
                    },
                    Phase::Exec { op: AluOp::AddImm(1), per_stripe: 2, stride: 1 },
                ],
                1,
                Some(4),
                None,
                Some(0),
            ),
        };
        let spec = KernelSpec {
            name: self.meta().name,
            phases,
            structures,
            tile_cap,
            ordering_chunk,
            final_store,
        };
        spec.validate().expect("registry specs are valid");
        spec
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.meta().name)
    }
}

/// A workload instantiated against a memory layout and problem size.
#[derive(Debug, Clone)]
pub struct WorkloadInstance {
    id: Option<WorkloadId>,
    spec: KernelSpec,
    layout: Layout,
    ts_stripes: u64,
    stripes_per_channel: u64,
    mode: OrderingMode,
    host_slices: u64,
}

impl WorkloadInstance {
    /// Instantiates `id` with `stripes_per_channel` elements per data
    /// structure per channel, a TS of `ts_stripes`, and the given
    /// ordering mode. PIM data is placed in memory group 0, all operand
    /// streams in one bank (the paper's placement).
    #[must_use]
    pub fn new(
        id: WorkloadId,
        mapping: AddressMapping,
        groups: &GroupMap,
        ts_stripes: u64,
        stripes_per_channel: u64,
        mode: OrderingMode,
    ) -> Self {
        Self::with_placement(id, mapping, groups, ts_stripes, stripes_per_channel, mode, 1, 1)
    }

    /// Full-control constructor: `bank_interleave` rotates consecutive
    /// rows across that many group banks (host data wants the group's
    /// full bank count for bank-level parallelism), and `host_slices`
    /// sets how many warps cooperate per channel in host mode.
    ///
    /// # Panics
    /// Panics if the placement does not fit (see [`Layout`]).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn with_placement(
        id: WorkloadId,
        mapping: AddressMapping,
        groups: &GroupMap,
        ts_stripes: u64,
        stripes_per_channel: u64,
        mode: OrderingMode,
        bank_interleave: u64,
        host_slices: u64,
    ) -> Self {
        let spec = id.spec();
        let layout = Layout::with_interleave(
            mapping,
            groups,
            MemGroupId(0),
            spec.structures,
            stripes_per_channel,
            bank_interleave,
        );
        WorkloadInstance {
            id: Some(id),
            spec,
            layout,
            ts_stripes,
            stripes_per_channel,
            mode,
            host_slices: host_slices.max(1),
        }
    }

    /// Instantiates a *custom* kernel built with
    /// [`crate::KernelBuilder`] (or a hand-written [`KernelSpec`]):
    /// same placement and verification machinery as the registry
    /// workloads, single-bank PIM layout in memory group 0.
    ///
    /// # Panics
    /// Panics if `spec` is invalid or the placement does not fit.
    #[must_use]
    pub fn custom(
        spec: KernelSpec,
        mapping: AddressMapping,
        groups: &GroupMap,
        ts_stripes: u64,
        stripes_per_channel: u64,
        mode: OrderingMode,
    ) -> Self {
        spec.validate().expect("custom kernel spec must be valid");
        let layout = Layout::with_interleave(
            mapping,
            groups,
            MemGroupId(0),
            spec.structures,
            stripes_per_channel,
            1,
        );
        WorkloadInstance {
            id: None,
            spec,
            layout,
            ts_stripes,
            stripes_per_channel,
            mode,
            host_slices: 1,
        }
    }

    /// Warps cooperating per channel in host mode.
    #[must_use]
    pub fn host_slices(&self) -> u64 {
        self.host_slices
    }

    /// The workload identity (`None` for custom kernels).
    #[must_use]
    pub fn id(&self) -> Option<WorkloadId> {
        self.id
    }

    /// The kernel's name (registry name or the custom spec's name).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The phase program.
    #[must_use]
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }

    /// The data layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The ordering mode the PIM streams are generated with.
    #[must_use]
    pub fn mode(&self) -> OrderingMode {
        self.mode
    }

    /// Elements (stripes) per structure per channel.
    #[must_use]
    pub fn stripes_per_channel(&self) -> u64 {
        self.stripes_per_channel
    }

    /// TS capacity in stripes the PIM streams are tiled for.
    #[must_use]
    pub fn ts_stripes(&self) -> u64 {
        self.ts_stripes
    }

    /// The PIM kernel stream for `channel`.
    #[must_use]
    pub fn pim_stream(&self, channel: ChannelId) -> PimKernelGen {
        PimKernelGen::new(
            self.spec.clone(),
            self.layout.clone(),
            channel,
            self.ts_stripes,
            self.stripes_per_channel,
            self.mode,
        )
    }

    /// The conventional-GPU stream for `channel` (slice 0 of 1).
    #[must_use]
    pub fn host_stream(&self, channel: ChannelId) -> HostKernelGen {
        self.host_stream_slice(channel, 0)
    }

    /// The conventional-GPU stream for warp `slice` of `channel`.
    #[must_use]
    pub fn host_stream_slice(&self, channel: ChannelId, slice: u64) -> HostKernelGen {
        HostKernelGen::with_slice(
            self.spec.clone(),
            self.layout.clone(),
            channel,
            self.stripes_per_channel,
            slice,
            self.host_slices,
        )
    }

    /// Deterministic input data for `channel` (one entry per stripe of
    /// every input structure).
    #[must_use]
    pub fn init_data(&self, channel: ChannelId) -> Vec<(Addr, Stripe)> {
        let mut v = Vec::new();
        for structure in self.spec.input_structures() {
            for stripe in 0..self.stripes_per_channel {
                let addr = self.layout.addr(channel, structure, stripe);
                v.push((addr, data::init_stripe(addr)));
            }
        }
        v
    }

    /// Runs the golden interpretation of `channel`'s PIM stream over the
    /// initial data; returns the interpreter holding the expected final
    /// memory image and the set of written addresses.
    #[must_use]
    pub fn golden_pim(&self, channel: ChannelId) -> GoldenInterp {
        let mut interp = GoldenInterp::new(self.ts_stripes as usize);
        for (addr, value) in self.init_data(channel) {
            interp.init(addr, value);
        }
        let mut stream = self.pim_stream(channel);
        interp.interpret(&mut stream);
        interp
    }

    /// Golden interpretation of all cooperating host streams of
    /// `channel`. Slices own disjoint tiles (and only slice 0 emits a
    /// final store), so interpreting them sequentially gives the unique
    /// correct final image.
    #[must_use]
    pub fn golden_host(&self, channel: ChannelId) -> GoldenInterp {
        let mut interp = GoldenInterp::new(1);
        for (addr, value) in self.init_data(channel) {
            interp.init(addr, value);
        }
        for slice in 0..self.host_slices {
            interp.reset_ts();
            let mut stream = self.host_stream_slice(channel, slice);
            interp.interpret(&mut stream);
        }
        interp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::InstrStream;

    #[test]
    fn all_specs_validate_and_match_table2_structure() {
        for id in WorkloadId::ALL {
            let spec = id.spec();
            let meta = id.meta();
            assert_eq!(
                meta.multi_structure,
                spec.structures > 1,
                "{id}: multi-structure flag must match the spec"
            );
        }
    }

    #[test]
    fn suites_partition_the_workloads() {
        assert_eq!(WorkloadId::STREAMS.len() + WorkloadId::APPS.len(), WorkloadId::ALL.len());
        for id in WorkloadId::STREAMS {
            assert_eq!(id.meta().suite, Suite::Stream);
        }
        for id in WorkloadId::APPS {
            assert_eq!(id.meta().suite, Suite::App);
        }
    }

    #[test]
    fn structural_ratios_track_table2() {
        // Spot-check the structural compute/memory counts against the
        // Table 2 ratios they model.
        let check = |id: WorkloadId, compute: f64, memory: f64| {
            let (c, m) = id.spec().ops_per_stripe();
            assert_eq!((c, m), (compute, memory), "{id}");
        };
        check(WorkloadId::Scale, 1.0, 1.0);
        check(WorkloadId::Copy, 0.0, 2.0);
        check(WorkloadId::Daxpy, 2.0, 2.0);
        check(WorkloadId::Triad, 2.0, 3.0);
        check(WorkloadId::Add, 1.0, 3.0);
        check(WorkloadId::BnFwd, 7.0, 3.0);
        check(WorkloadId::BnBwd, 14.0, 6.0);
        check(WorkloadId::Fc, 2.0, 1.0);
        check(WorkloadId::Kmeans, 10.0, 1.0);
        check(WorkloadId::Svm, 2.5, 2.0);
        check(WorkloadId::Hist, 3.0, 2.0);
        check(WorkloadId::GenFil, 3.0, 1.0);
    }

    fn instance(id: WorkloadId, mode: OrderingMode) -> WorkloadInstance {
        WorkloadInstance::new(id, AddressMapping::hbm_default(), &GroupMap::default(), 8, 64, mode)
    }

    #[test]
    fn golden_pim_produces_output_for_every_workload() {
        for id in WorkloadId::ALL {
            let inst = instance(id, OrderingMode::OrderLight);
            let golden = inst.golden_pim(ChannelId(0));
            assert!(!golden.written().is_empty(), "{id}: kernel must write observable output");
        }
    }

    #[test]
    fn add_golden_matches_elementwise_sum() {
        let inst = instance(WorkloadId::Add, OrderingMode::OrderLight);
        let golden = inst.golden_pim(ChannelId(0));
        let l = inst.layout();
        for i in 0..64 {
            let a = crate::data::init_stripe(l.addr(ChannelId(0), 0, i));
            let b = crate::data::init_stripe(l.addr(ChannelId(0), 1, i));
            let c = golden.read(l.addr(ChannelId(0), 2, i));
            assert_eq!(c, a.zip_map(b, u32::wrapping_add), "stripe {i}");
        }
    }

    #[test]
    fn ordering_mode_does_not_change_golden_semantics() {
        // Sequential interpretation ignores ordering primitives, so all
        // three modes must produce identical golden images.
        for id in [WorkloadId::Add, WorkloadId::Hist, WorkloadId::GenFil] {
            let a = instance(id, OrderingMode::None).golden_pim(ChannelId(1));
            let b = instance(id, OrderingMode::Fence).golden_pim(ChannelId(1));
            let c = instance(id, OrderingMode::OrderLight).golden_pim(ChannelId(1));
            for addr in a.written() {
                assert_eq!(a.read(Addr(*addr)), b.read(Addr(*addr)), "{id}");
                assert_eq!(a.read(Addr(*addr)), c.read(Addr(*addr)), "{id}");
            }
            assert_eq!(a.written(), b.written());
            assert_eq!(a.written(), c.written());
        }
    }

    #[test]
    fn host_and_pim_agree_for_tileless_kernels() {
        // For pure elementwise kernels the host and PIM streams compute
        // identical outputs (reduction kernels differ by tile shape).
        for id in [WorkloadId::Scale, WorkloadId::Copy, WorkloadId::Add, WorkloadId::Triad] {
            let inst = instance(id, OrderingMode::OrderLight);
            let pim = inst.golden_pim(ChannelId(0));
            let host = inst.golden_host(ChannelId(0));
            for structure in inst.spec().output_structures() {
                for i in 0..64 {
                    let addr = inst.layout().addr(ChannelId(0), structure, i);
                    assert_eq!(pim.read(addr), host.read(addr), "{id} stripe {i}");
                }
            }
        }
    }

    #[test]
    fn streams_visit_only_their_channel() {
        let inst = instance(WorkloadId::Add, OrderingMode::OrderLight);
        let mapping = inst.layout().mapping().clone();
        let mut stream = inst.pim_stream(ChannelId(9));
        let mut n = 0;
        while let Some(i) = stream.next_instr() {
            if let orderlight::KernelInstr::Pim(p) = i {
                assert_eq!(mapping.channel_of(p.addr), ChannelId(9));
                n += 1;
            }
        }
        assert!(n > 0);
    }
}
