//! Randomized tests of the workload generators: determinism, bounds
//! and structural invariants for every kernel at random design points.
//!
//! Design points come from the in-tree deterministic PRNG
//! ([`orderlight::rng::Rng`]) so every run exercises the same cases.

use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::rng::Rng;
use orderlight::types::ChannelId;
use orderlight::{InstrStream, KernelInstr};
use orderlight_workloads::{OrderingMode, WorkloadId, WorkloadInstance};

fn collect(stream: &mut dyn InstrStream) -> Vec<KernelInstr> {
    let mut v = Vec::new();
    while let Some(i) = stream.next_instr() {
        v.push(i);
    }
    v
}

/// PIM streams are deterministic, stay on their channel, keep TS slots
/// inside the tile, and the first PIM instruction of every
/// ordering-separated phase group targets a valid address of the
/// instance's layout.
#[test]
fn pim_streams_are_well_formed() {
    let mut rng = Rng::new(0x31f0);
    for _ in 0..48 {
        let id = WorkloadId::ALL[rng.gen_index(WorkloadId::ALL.len())];
        let ts = [4u64, 8, 16, 32][rng.gen_index(4)];
        let mode =
            [OrderingMode::None, OrderingMode::Fence, OrderingMode::OrderLight][rng.gen_index(3)];
        let stripes = 16 + rng.gen_range(184);
        let ch = rng.gen_range(16) as u8;
        let inst = WorkloadInstance::new(
            id,
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            ts,
            stripes,
            mode,
        );
        let a = collect(&mut inst.pim_stream(ChannelId(ch)));
        let b = collect(&mut inst.pim_stream(ChannelId(ch)));
        assert_eq!(&a, &b, "generator must be deterministic");

        let mapping = inst.layout().mapping().clone();
        let tile = id.spec().tile_stripes(ts);
        let mut pim_count = 0u64;
        for i in &a {
            match i {
                KernelInstr::Pim(p) => {
                    pim_count += 1;
                    assert_eq!(mapping.channel_of(p.addr), ChannelId(ch));
                    assert!(u64::from(p.slot.0) < tile, "slot {} outside tile of {tile}", p.slot.0);
                }
                KernelInstr::Ordering(_) => {
                    assert!(mode != OrderingMode::None, "None mode emits no primitives");
                }
                other => panic!("PIM stream leaked {other:?}"),
            }
        }
        // Every memory phase touches `stripes` elements, so the PIM
        // instruction count scales at least linearly with the job.
        assert!(pim_count >= stripes, "{id}: only {pim_count} instrs for {stripes} stripes");
    }
}

/// Host streams are deterministic and contain no ordering primitives;
/// cooperating slices partition the tiles exactly.
#[test]
fn host_slices_partition_the_work() {
    let mut rng = Rng::new(0x31f1);
    for _ in 0..32 {
        let id = WorkloadId::ALL[rng.gen_index(WorkloadId::ALL.len())];
        let stripes = 32 + rng.gen_range(168);
        let slices = 1 + rng.gen_range(4);
        let inst = WorkloadInstance::with_placement(
            id,
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            8,
            stripes,
            OrderingMode::None,
            8,
            slices,
        );
        let mut union_loads = 0usize;
        for s in 0..slices {
            let instrs = collect(&mut inst.host_stream_slice(ChannelId(0), s));
            assert!(instrs.iter().all(|i| !i.is_ordering()));
            union_loads += instrs.iter().filter(|i| matches!(i, KernelInstr::Load { .. })).count();
        }
        // The union of the slices covers the same loads as a single
        // full stream (the final store is emitted by slice 0 only and
        // contains no loads, so load counts are a safe partition check).
        let full = collect(&mut inst.host_stream(ChannelId(0)));
        let full_inst = WorkloadInstance::with_placement(
            id,
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            8,
            stripes,
            OrderingMode::None,
            8,
            1,
        );
        let single = collect(&mut full_inst.host_stream(ChannelId(0)));
        let single_loads = single.iter().filter(|i| matches!(i, KernelInstr::Load { .. })).count();
        assert_eq!(union_loads, single_loads);
        // And slice 0 of N behaves like a prefix-sampled single stream.
        assert!(full.len() <= single.len());
    }
}

/// The golden interpreter is idempotent: replaying the same streams
/// over the same inputs yields the same memory image.
#[test]
fn golden_is_reproducible() {
    let mut rng = Rng::new(0x31f2);
    for _ in 0..24 {
        let id = WorkloadId::ALL[rng.gen_index(WorkloadId::ALL.len())];
        let stripes = 16 + rng.gen_range(112);
        let inst = WorkloadInstance::new(
            id,
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            8,
            stripes,
            OrderingMode::OrderLight,
        );
        let a = inst.golden_pim(ChannelId(2));
        let b = inst.golden_pim(ChannelId(2));
        assert_eq!(a.written(), b.written());
        for addr in a.written() {
            assert_eq!(
                a.read(orderlight::types::Addr(*addr)),
                b.read(orderlight::types::Addr(*addr))
            );
        }
        assert!(!a.written().is_empty());
    }
}
