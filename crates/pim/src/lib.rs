//! # Generic, parameterised PIM compute unit (paper Section 4.1)
//!
//! The paper deliberately evaluates a *generic* PIM unit — a SIMD ALU
//! coupled with temporary storage (TS) — so that the OrderLight primitive
//! can be studied across disparate PIM placements (3D logic die, per-bank,
//! per-sub-array). Two parameters are swept:
//!
//! * **TS size** ([`TsSize`]), expressed as a fraction of the 2 KB row
//!   buffer: it bounds the tile size `N` — how many PIM instructions can
//!   issue between ordering primitives (paper Figure 4).
//! * **Bandwidth multiplication factor** ([`PimUnit::bmf`]): how much
//!   internal bandwidth the PIM units of a channel collectively realise
//!   over the host-visible bus. One fine-grained command is broadcast to
//!   `BMF` lock-stepped units; the simulator models the representative
//!   unit's slice and scales data-bandwidth accounting by `BMF`.

pub mod alu;
pub mod ts;
pub mod unit;

pub use alu::SimdAlu;
pub use ts::{TemporaryStorage, TsSize};
pub use unit::{PimUnit, PimUnitStats};
