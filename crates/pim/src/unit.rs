//! The PIM compute unit: TS + SIMD ALU, driven by fine-grained commands
//! the memory controller forwards.
//!
//! The unit is *purely functional*: all timing (row activation, column
//! command spacing, command-bus occupancy) is enforced upstream by the
//! memory controller and DRAM channel models. The unit's job is to make
//! the data real — so an incorrectly ordered command stream produces
//! incorrect bytes in DRAM.

use crate::alu::SimdAlu;
use crate::ts::{TemporaryStorage, TsSize};
use orderlight::types::{Stripe, TsSlot, BUS_BYTES};
use orderlight::PimOp;

/// Activity counters for one PIM unit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PimUnitStats {
    /// Fine-grained PIM commands processed.
    pub commands: u64,
    /// Commands that moved data between DRAM and TS.
    pub dram_commands: u64,
    /// Execute-only commands (no DRAM access).
    pub execute_commands: u64,
    /// Bytes of internal PIM data bandwidth consumed (already scaled by
    /// the bandwidth multiplication factor).
    pub data_bytes: u64,
}

/// One (representative) PIM compute unit attached to a channel.
///
/// # Example
///
/// ```
/// use orderlight_pim::{PimUnit, TsSize};
/// use orderlight::{AluOp, PimOp};
/// use orderlight::types::{Stripe, TsSlot};
///
/// let mut unit = PimUnit::new(TsSize::Eighth, 2048, 16);
/// unit.apply(PimOp::Load, TsSlot(0), Some(Stripe::splat(5)));
/// unit.apply(PimOp::Compute(AluOp::Add), TsSlot(0), Some(Stripe::splat(2)));
/// let out = unit.apply(PimOp::Store, TsSlot(0), None).unwrap();
/// assert_eq!(out, Stripe::splat(7));
/// ```
#[derive(Debug, Clone)]
pub struct PimUnit {
    ts: TemporaryStorage,
    alu: SimdAlu,
    bmf: u32,
    stats: PimUnitStats,
}

impl PimUnit {
    /// Creates a unit with TS sized as `ts_size` of a `row_bytes` row and
    /// a bandwidth multiplication factor of `bmf`.
    ///
    /// # Panics
    /// Panics if `bmf` is zero.
    #[must_use]
    pub fn new(ts_size: TsSize, row_bytes: u64, bmf: u32) -> Self {
        assert!(bmf > 0, "bandwidth multiplication factor must be positive");
        PimUnit {
            ts: TemporaryStorage::with_size(ts_size, row_bytes),
            alu: SimdAlu::new(),
            bmf,
            stats: PimUnitStats::default(),
        }
    }

    /// The bandwidth multiplication factor over host bandwidth.
    #[must_use]
    pub fn bmf(&self) -> u32 {
        self.bmf
    }

    /// TS capacity in stripes (the tile size `N`).
    #[must_use]
    pub fn ts_capacity(&self) -> usize {
        self.ts.capacity()
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> PimUnitStats {
        self.stats
    }

    /// Applies one fine-grained PIM command.
    ///
    /// `mem` carries the DRAM stripe for commands that read memory
    /// ([`PimOp::Load`] and memory-operand [`PimOp::Compute`]); it must be
    /// `None` otherwise. Returns the stripe to write back to DRAM for
    /// [`PimOp::Store`], `None` otherwise.
    ///
    /// # Panics
    /// Panics if `mem` presence does not match the opcode, or if the TS
    /// slot is out of range — both indicate kernel-generation bugs.
    pub fn apply(&mut self, op: PimOp, slot: TsSlot, mem: Option<Stripe>) -> Option<Stripe> {
        self.stats.commands += 1;
        let data_moved = op.accesses_dram();
        if data_moved {
            self.stats.dram_commands += 1;
            self.stats.data_bytes += BUS_BYTES as u64 * u64::from(self.bmf);
        }
        match op {
            PimOp::Load => {
                let m = mem.expect("PIM load needs a memory stripe");
                self.ts.write(slot, m);
                None
            }
            PimOp::Compute(alu_op) => {
                let m = if alu_op.reads_memory() {
                    mem.expect("fetch-and-op needs a memory stripe")
                } else {
                    assert!(mem.is_none(), "immediate compute takes no memory stripe");
                    Stripe::default()
                };
                let out = self.alu.execute(alu_op, self.ts.read(slot), m);
                self.ts.write(slot, out);
                None
            }
            PimOp::Execute(alu_op) => {
                assert!(mem.is_none(), "execute-only command takes no memory stripe");
                self.stats.execute_commands += 1;
                let out = self.alu.execute(alu_op, self.ts.read(slot), Stripe::default());
                self.ts.write(slot, out);
                None
            }
            PimOp::Store => {
                assert!(mem.is_none(), "PIM store takes no memory stripe");
                Some(self.ts.read(slot))
            }
        }
    }

    /// Peeks at a TS slot (testing / debugging).
    #[must_use]
    pub fn ts_slot(&self, slot: TsSlot) -> Stripe {
        self.ts.read(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::AluOp;

    fn unit() -> PimUnit {
        PimUnit::new(TsSize::Sixteenth, 2048, 16)
    }

    #[test]
    fn vector_add_tile() {
        // The paper's Figure 4 kernel on one tile: load a, fetch-and-add
        // b, store c.
        let mut u = unit();
        assert_eq!(u.ts_capacity(), 4);
        for i in 0..4u16 {
            u.apply(PimOp::Load, TsSlot(i), Some(Stripe::splat(10 + u32::from(i))));
        }
        for i in 0..4u16 {
            u.apply(PimOp::Compute(AluOp::Add), TsSlot(i), Some(Stripe::splat(100)));
        }
        for i in 0..4u16 {
            let out = u.apply(PimOp::Store, TsSlot(i), None).unwrap();
            assert_eq!(out, Stripe::splat(110 + u32::from(i)));
        }
        let s = u.stats();
        assert_eq!(s.commands, 12);
        assert_eq!(s.dram_commands, 12);
        assert_eq!(s.execute_commands, 0);
        assert_eq!(s.data_bytes, 12 * 32 * 16);
    }

    #[test]
    fn execute_only_commands_move_no_data() {
        let mut u = unit();
        u.apply(PimOp::Load, TsSlot(0), Some(Stripe::splat(3)));
        u.apply(PimOp::Execute(AluOp::ScaleImm(7)), TsSlot(0), None);
        assert_eq!(u.ts_slot(TsSlot(0)), Stripe::splat(21));
        let s = u.stats();
        assert_eq!(s.execute_commands, 1);
        assert_eq!(s.data_bytes, 32 * 16, "only the load moved data");
    }

    #[test]
    fn immediate_compute_via_compute_op() {
        let mut u = unit();
        u.apply(PimOp::Load, TsSlot(1), Some(Stripe::splat(4)));
        // Compute with an immediate op carries no memory stripe.
        u.apply(PimOp::Compute(AluOp::AddImm(6)), TsSlot(1), None);
        assert_eq!(u.ts_slot(TsSlot(1)), Stripe::splat(10));
    }

    #[test]
    fn bmf_scales_data_bytes() {
        let mut u4 = PimUnit::new(TsSize::Sixteenth, 2048, 4);
        u4.apply(PimOp::Load, TsSlot(0), Some(Stripe::default()));
        assert_eq!(u4.stats().data_bytes, 32 * 4);
        assert_eq!(u4.bmf(), 4);
    }

    #[test]
    #[should_panic(expected = "needs a memory stripe")]
    fn load_without_memory_panics() {
        let mut u = unit();
        u.apply(PimOp::Load, TsSlot(0), None);
    }

    #[test]
    #[should_panic(expected = "takes no memory stripe")]
    fn store_with_memory_panics() {
        let mut u = unit();
        u.apply(PimOp::Store, TsSlot(0), Some(Stripe::default()));
    }
}
