//! The PIM unit's SIMD ALU.
//!
//! Functional semantics live in [`orderlight::AluOp`] so the PIM unit,
//! the host core and the golden-model verifier compute bit-identical
//! results; this wrapper adds operation accounting.

use orderlight::types::{Stripe, LANES};
use orderlight::AluOp;

/// A SIMD ALU executing stripe-wide lane operations.
#[derive(Debug, Clone, Default)]
pub struct SimdAlu {
    ops: u64,
}

impl SimdAlu {
    /// Creates an idle ALU.
    #[must_use]
    pub fn new() -> Self {
        SimdAlu::default()
    }

    /// Executes `op` on `(acc, mem)` stripe-wide.
    #[must_use]
    pub fn execute(&mut self, op: AluOp, acc: Stripe, mem: Stripe) -> Stripe {
        self.ops += 1;
        op.apply(acc, mem)
    }

    /// Number of stripe-wide operations executed.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Number of lane operations executed (`ops x LANES`).
    #[must_use]
    pub fn lane_ops(&self) -> u64 {
        self.ops * LANES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_counts_and_computes() {
        let mut alu = SimdAlu::new();
        let out = alu.execute(AluOp::Add, Stripe::splat(1), Stripe::splat(2));
        assert_eq!(out, Stripe::splat(3));
        let out = alu.execute(AluOp::ScaleImm(10), out, Stripe::default());
        assert_eq!(out, Stripe::splat(30));
        assert_eq!(alu.ops(), 2);
        assert_eq!(alu.lane_ops(), 16);
    }
}
