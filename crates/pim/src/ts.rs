//! Temporary storage (TS) associated with a PIM compute unit.

use orderlight::types::{Stripe, TsSlot, BUS_BYTES};
use std::fmt;

/// TS capacity as a fraction of the row-buffer size — the x-axis of the
/// paper's Figures 5, 10, 12 and 13 ("1/16 RB" … "1/2 RB").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TsSize {
    /// 1/16 of the row buffer (128 B for 2 KB rows; tile N = 4 stripes).
    Sixteenth,
    /// 1/8 of the row buffer (256 B; N = 8).
    Eighth,
    /// 1/4 of the row buffer (512 B; N = 16).
    Quarter,
    /// 1/2 of the row buffer (1 KB; N = 32).
    Half,
}

impl TsSize {
    /// All sweep points in the order the paper plots them.
    pub const ALL: [TsSize; 4] = [TsSize::Sixteenth, TsSize::Eighth, TsSize::Quarter, TsSize::Half];

    /// The denominator of the row-buffer fraction.
    #[must_use]
    pub fn denominator(self) -> u64 {
        match self {
            TsSize::Sixteenth => 16,
            TsSize::Eighth => 8,
            TsSize::Quarter => 4,
            TsSize::Half => 2,
        }
    }

    /// TS capacity in bytes for a given row-buffer size.
    #[must_use]
    pub fn bytes(self, row_bytes: u64) -> u64 {
        row_bytes / self.denominator()
    }

    /// Tile size `N`: number of 32 B stripes the TS holds.
    #[must_use]
    pub fn stripes(self, row_bytes: u64) -> u64 {
        self.bytes(row_bytes) / BUS_BYTES as u64
    }
}

impl fmt::Display for TsSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1/{} RB", self.denominator())
    }
}

/// The temporary-storage buffer: a bank of stripe-wide slots.
#[derive(Debug, Clone)]
pub struct TemporaryStorage {
    slots: Vec<Stripe>,
    high_water: usize,
}

impl TemporaryStorage {
    /// Creates a TS with `n_slots` stripe slots, all zeroed.
    ///
    /// # Panics
    /// Panics if `n_slots` is zero.
    #[must_use]
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots > 0, "temporary storage needs at least one slot");
        TemporaryStorage { slots: vec![Stripe::default(); n_slots], high_water: 0 }
    }

    /// Creates a TS sized as `size` of a `row_bytes` row buffer.
    #[must_use]
    pub fn with_size(size: TsSize, row_bytes: u64) -> Self {
        TemporaryStorage::new(size.stripes(row_bytes) as usize)
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Highest slot index touched so far plus one (utilisation statistic).
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Reads a slot.
    ///
    /// # Panics
    /// Panics if `slot` is out of range — the PIM kernel generator sized
    /// its tiles wrong, which is a bug, not a runtime condition.
    #[must_use]
    pub fn read(&self, slot: TsSlot) -> Stripe {
        self.slots[slot.index()]
    }

    /// Writes a slot.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn write(&mut self, slot: TsSlot, data: Stripe) {
        self.slots[slot.index()] = data;
        self.high_water = self.high_water.max(slot.index() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_size_fractions() {
        assert_eq!(TsSize::Sixteenth.bytes(2048), 128);
        assert_eq!(TsSize::Eighth.bytes(2048), 256);
        assert_eq!(TsSize::Quarter.bytes(2048), 512);
        assert_eq!(TsSize::Half.bytes(2048), 1024);
        assert_eq!(TsSize::Sixteenth.stripes(2048), 4);
        assert_eq!(TsSize::Half.stripes(2048), 32);
    }

    #[test]
    fn ts_size_display() {
        assert_eq!(TsSize::Sixteenth.to_string(), "1/16 RB");
        assert_eq!(TsSize::Half.to_string(), "1/2 RB");
    }

    #[test]
    fn all_is_sorted_small_to_large() {
        let mut sorted = TsSize::ALL;
        sorted.sort();
        assert_eq!(sorted, TsSize::ALL);
    }

    #[test]
    fn read_write_and_high_water() {
        let mut ts = TemporaryStorage::new(8);
        assert_eq!(ts.capacity(), 8);
        assert_eq!(ts.high_water(), 0);
        ts.write(TsSlot(5), Stripe::splat(9));
        assert_eq!(ts.read(TsSlot(5)), Stripe::splat(9));
        assert_eq!(ts.read(TsSlot(0)), Stripe::default());
        assert_eq!(ts.high_water(), 6);
    }

    #[test]
    fn with_size_matches_stripes() {
        let ts = TemporaryStorage::with_size(TsSize::Quarter, 2048);
        assert_eq!(ts.capacity(), 16);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let ts = TemporaryStorage::new(4);
        let _ = ts.read(TsSlot(4));
    }
}
