//! Criterion bench for the Figure 10 experiment: each stream kernel
//! simulated end-to-end under OrderLight and fence (reduced job size).

use criterion::{criterion_group, criterion_main, Criterion};
use orderlight_bench::BENCH_DATA_BYTES;
use orderlight_pim::TsSize;
use orderlight_sim::config::ExecMode;
use orderlight_sim::experiments::run_point;
use orderlight_workloads::{OrderingMode, WorkloadId};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_stream");
    g.sample_size(10);
    for wl in WorkloadId::STREAMS {
        for (label, mode) in
            [("orderlight", OrderingMode::OrderLight), ("fence", OrderingMode::Fence)]
        {
            g.bench_function(format!("{wl}/{label}"), |b| {
                b.iter(|| {
                    let p =
                        run_point(wl, TsSize::Eighth, ExecMode::Pim(mode), 16, BENCH_DATA_BYTES)
                            .expect("run");
                    black_box(p.stats.command_bandwidth_gcs)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
