//! Criterion bench for the Figure 11 micro-experiment: the analytic and
//! micro-simulated DRAM row window.

use criterion::{criterion_group, criterion_main, Criterion};
use orderlight_sim::experiments::fig11;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig11_dram_window", |b| {
        b.iter(|| {
            let f = fig11();
            assert_eq!(f.analytic_window, f.simulated_window);
            black_box(f.peak_command_gcs)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
