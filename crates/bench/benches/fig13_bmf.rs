//! Criterion bench for the Figure 13 experiment: the Add kernel across
//! bandwidth multiplication factors (reduced job size).

use criterion::{criterion_group, criterion_main, Criterion};
use orderlight_bench::BENCH_DATA_BYTES;
use orderlight_pim::TsSize;
use orderlight_sim::config::ExecMode;
use orderlight_sim::experiments::run_point;
use orderlight_workloads::{OrderingMode, WorkloadId};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_bmf");
    g.sample_size(10);
    for bmf in [4u32, 8, 16] {
        g.bench_function(format!("bmf{bmf}"), |b| {
            b.iter(|| {
                let p = run_point(
                    WorkloadId::Add,
                    TsSize::Eighth,
                    ExecMode::Pim(OrderingMode::OrderLight),
                    bmf,
                    BENCH_DATA_BYTES,
                )
                .expect("run");
                black_box(p.stats.exec_time_ms)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
