//! Component micro-benchmarks: the hot inner structures of the
//! simulator (bank state machine, channel issue, OrderLight packet
//! codec, copy-and-merge FSM, kernel generation).

use criterion::{criterion_group, criterion_main, Criterion};
use orderlight::fsm::{diverge, MergeFsm};
use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::message::Marker;
use orderlight::packet::OrderLightPacket;
use orderlight::types::{BankId, ChannelId, MemGroupId};
use orderlight::InstrStream;
use orderlight_hbm::{Channel, ColKind, DramCommand, TimingParams};
use orderlight_workloads::{OrderingMode, WorkloadId, WorkloadInstance};
use std::hint::black_box;

fn bench_packet_codec(c: &mut Criterion) {
    c.bench_function("packet_encode_decode", |b| {
        b.iter(|| {
            let pkt = OrderLightPacket::new(ChannelId(5), MemGroupId(1), black_box(12345));
            let decoded = OrderLightPacket::decode(pkt.encode()).expect("valid");
            black_box(decoded.number())
        });
    });
}

fn bench_merge_fsm(c: &mut Criterion) {
    c.bench_function("copy_merge_fsm", |b| {
        b.iter(|| {
            let mut fsm = MergeFsm::new();
            let mut merged = 0;
            for n in 0..64u32 {
                let marker =
                    Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), n));
                for copy in diverge(marker, 2) {
                    if fsm.on_copy(&copy).is_some() {
                        merged += 1;
                    }
                }
            }
            black_box(merged)
        });
    });
}

fn bench_dram_stream(c: &mut Criterion) {
    c.bench_function("dram_write_stream_1k_rows", |b| {
        b.iter(|| {
            let mut ch = Channel::new(TimingParams::hbm_table1(), 16, 2048);
            let mut now = 0u64;
            for row in 0..1000u32 {
                while !ch.try_issue(DramCommand::Activate { bank: BankId(0), row }, now) {
                    now += 1;
                }
                let mut writes = 0;
                while writes < 8 {
                    if ch.try_issue(DramCommand::column(BankId(0), ColKind::Write), now) {
                        writes += 1;
                    }
                    now += 1;
                }
                while !ch.try_issue(DramCommand::Precharge { bank: BankId(0) }, now) {
                    now += 1;
                }
            }
            black_box(ch.col_commands())
        });
    });
}

fn bench_kernel_generation(c: &mut Criterion) {
    c.bench_function("pim_kernel_gen_add_16k_instrs", |b| {
        let inst = WorkloadInstance::new(
            WorkloadId::Add,
            AddressMapping::hbm_default(),
            &GroupMap::default(),
            8,
            4096,
            OrderingMode::OrderLight,
        );
        b.iter(|| {
            let mut stream = inst.pim_stream(ChannelId(0));
            let mut n = 0u64;
            while stream.next_instr().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
}

fn bench_controller_tick(c: &mut Criterion) {
    use orderlight::message::{MemReq, ReqMeta};
    use orderlight::types::{Addr, GlobalWarpId, TsSlot};
    use orderlight::{PimInstruction, PimOp};
    use orderlight_memctrl::{McConfig, MemoryController};
    use orderlight_pim::{PimUnit, TsSize};

    c.bench_function("memctrl_drain_64_loads", |b| {
        b.iter(|| {
            let cfg = McConfig::default();
            let mut mc = MemoryController::new(
                cfg,
                Channel::new(TimingParams::hbm_table1(), 16, 2048),
                PimUnit::new(TsSize::Eighth, 2048, 16),
            );
            for i in 0..64u64 {
                mc.push(MemReq::Pim {
                    instr: PimInstruction {
                        op: PimOp::Load,
                        addr: Addr(i * 32),
                        slot: TsSlot((i % 8) as u16),
                        group: MemGroupId(0),
                    },
                    meta: ReqMeta { warp: GlobalWarpId(0), seq: i },
                });
            }
            let mut now = 0;
            while !mc.is_idle() {
                mc.tick(now);
                now += 1;
            }
            black_box(now)
        });
    });
}

fn bench_pipe_tick(c: &mut Criterion) {
    use orderlight::message::{MemReq, ReqMeta};
    use orderlight::types::{Addr, GlobalWarpId, TsSlot};
    use orderlight::{PimInstruction, PimOp};
    use orderlight_noc::{MemoryPipe, PipeConfig};

    c.bench_function("pipe_transit_64_requests", |b| {
        b.iter(|| {
            let mut pipe = MemoryPipe::new(&PipeConfig::default());
            let mut fed = 0u64;
            let mut got = 0u64;
            let mut now = 0u64;
            while got < 64 {
                if fed < 64 && pipe.can_push() {
                    pipe.push_request(
                        MemReq::Pim {
                            instr: PimInstruction {
                                op: PimOp::Load,
                                addr: Addr(fed * 32),
                                slot: TsSlot(0),
                                group: MemGroupId(0),
                            },
                            meta: ReqMeta { warp: GlobalWarpId(0), seq: fed },
                        },
                        now,
                    );
                    fed += 1;
                }
                pipe.tick(now);
                while pipe.pop_mc(now).is_some() {
                    got += 1;
                }
                now += 1;
            }
            black_box(now)
        });
    });
}

criterion_group!(
    benches,
    bench_packet_codec,
    bench_merge_fsm,
    bench_dram_stream,
    bench_kernel_generation,
    bench_controller_tick,
    bench_pipe_tick
);
criterion_main!(benches);
