//! Criterion bench for the Figure 5 experiment: full-system simulation
//! of the Add kernel under no ordering, fences, and OrderLight at a
//! reduced job size. The regenerated figure itself comes from
//! `cargo run --release -p orderlight-bench --bin fig05`.

use criterion::{criterion_group, criterion_main, Criterion};
use orderlight_bench::BENCH_DATA_BYTES;
use orderlight_pim::TsSize;
use orderlight_sim::config::ExecMode;
use orderlight_sim::experiments::run_point;
use orderlight_workloads::{OrderingMode, WorkloadId};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_fence_overhead");
    g.sample_size(10);
    for (label, mode) in [
        ("no_fence", OrderingMode::None),
        ("fence", OrderingMode::Fence),
        ("orderlight", OrderingMode::OrderLight),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let p = run_point(
                    WorkloadId::Add,
                    TsSize::Eighth,
                    ExecMode::Pim(mode),
                    16,
                    BENCH_DATA_BYTES,
                )
                .expect("run");
                black_box(p.stats.exec_time_ms)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
