//! Criterion bench for the Figure 12 experiment: each application
//! kernel simulated end-to-end under OrderLight (reduced job size).

use criterion::{criterion_group, criterion_main, Criterion};
use orderlight_bench::BENCH_DATA_BYTES;
use orderlight_pim::TsSize;
use orderlight_sim::config::ExecMode;
use orderlight_sim::experiments::run_point;
use orderlight_workloads::{OrderingMode, WorkloadId};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_apps");
    g.sample_size(10);
    for wl in WorkloadId::APPS {
        g.bench_function(wl.to_string(), |b| {
            b.iter(|| {
                let p = run_point(
                    wl,
                    TsSize::Eighth,
                    ExecMode::Pim(OrderingMode::OrderLight),
                    16,
                    BENCH_DATA_BYTES,
                )
                .expect("run");
                assert!(p.stats.is_correct(), "{wl} must verify");
                black_box(p.stats.exec_time_ms)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
