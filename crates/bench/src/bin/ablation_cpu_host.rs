//! CPU-host applicability study (paper Conclusion): the OrderLight
//! mechanism mapped onto an out-of-order CPU host — reservation
//! stations play the operand collector's role, the uncore path is much
//! shorter than a GPU's memory pipe, but a fence still costs a
//! core-to-memory round trip on the order of 100 cycles.

use orderlight_bench::report_data_bytes;
use orderlight_pim::TsSize;
use orderlight_sim::experiments::ablation_cpu_host_jobs;
use orderlight_sim::core_select::core_from_process_args;
use orderlight_sim::pool::jobs_from_process_args;

fn main() {
    let data = report_data_bytes();
    let jobs = jobs_from_process_args();
    let _ = core_from_process_args(); // applies --core / ORDERLIGHT_CORE process-wide
    println!("OoO-CPU host, Add kernel, TS=1/8 RB, {} KiB/structure/channel\n", data / 1024);
    let rows = ablation_cpu_host_jobs(data, TsSize::Eighth, jobs).expect("study runs");
    for r in &rows {
        println!(
            "  {:<16}: {:>8.4} ms | {:>4.0} wait cycles/fence | {}",
            r.label,
            r.exec_time_ms,
            r.wait_per_fence,
            if r.correct { "correct" } else { "WRONG" }
        );
    }
    let fence = rows[0].exec_time_ms;
    let ol = rows[1].exec_time_ms;
    println!("\n  OrderLight speedup on the CPU host: {:.1}x", fence / ol);
    println!("  The gap is smaller than on the GPU host (shorter uncore round trip),");
    println!("  but the fence still pays ~100+ cycles per phase boundary — the paper's");
    println!("  conclusion that the primitive transfers to OoO hosts.");
}
