//! CPU-host applicability study (paper Conclusion): the OrderLight
//! mechanism mapped onto an out-of-order CPU host — reservation
//! stations play the operand collector's role, the uncore path is much
//! shorter than a GPU's memory pipe, but a fence still costs a
//! core-to-memory round trip on the order of 100 cycles.

use orderlight_bench::cli;
use orderlight_pim::TsSize;
use orderlight_sim::experiments::ablation_cpu_host_jobs;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!("OoO-CPU host, Add kernel, TS=1/8 RB, {} KiB/structure/channel\n", data / 1024);
    let rows = ablation_cpu_host_jobs(data, TsSize::Eighth, jobs).expect("study runs");
    for r in &rows {
        println!(
            "  {:<16}: {:>8.4} ms | {:>4.0} wait cycles/fence | {}",
            r.label,
            r.exec_time_ms,
            r.wait_per_fence,
            if r.correct { "correct" } else { "WRONG" }
        );
    }
    let fence = rows[0].exec_time_ms;
    let ol = rows[1].exec_time_ms;
    println!("\n  OrderLight speedup on the CPU host: {:.1}x", fence / ol);
    println!("  The gap is smaller than on the GPU host (shorter uncore round trip),");
    println!("  but the fence still pays ~100+ cycles per phase boundary — the paper's");
    println!("  conclusion that the primitive transfers to OoO hosts.");
}
