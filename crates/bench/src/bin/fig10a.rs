//! Regenerates paper Figure 10a: PIM command bandwidth (GC/s) and PIM
//! data bandwidth (GB/s) for the stream benchmark, fence vs OrderLight,
//! across TS sizes (BMF = 16).

use orderlight_bench::cli;
use orderlight_sim::experiments::fig10_jobs;
use orderlight_sim::report::{f3, format_table};
use std::collections::BTreeMap;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "Figure 10a — stream benchmark: PIM command & data bandwidth, BMF=16, {} KiB/structure/channel\n",
        data / 1024
    );
    let rows = fig10_jobs(data, jobs).expect("figure 10 sweep");
    // (workload, ts) -> (fence, orderlight)
    let mut cells: BTreeMap<(String, String), [Option<f64>; 4]> = BTreeMap::new();
    for p in &rows {
        if p.mode == "gpu" {
            continue;
        }
        let entry = cells.entry((p.workload.clone(), p.ts.clone())).or_default();
        match p.mode.as_str() {
            "pim-fence" => {
                entry[0] = Some(p.stats.command_bandwidth_gcs);
                entry[2] = Some(p.stats.data_bandwidth_gbs);
            }
            "pim-orderlight" => {
                entry[1] = Some(p.stats.command_bandwidth_gcs);
                entry[3] = Some(p.stats.data_bandwidth_gbs);
            }
            _ => {}
        }
    }
    let order = ["Scale", "Copy", "Daxpy", "Triad", "Add"];
    let ts_order = ["1/16 RB", "1/8 RB", "1/4 RB", "1/2 RB"];
    let mut table = Vec::new();
    let mut ratios = Vec::new();
    for wl in order {
        for ts in ts_order {
            let Some(c) = cells.get(&(wl.to_string(), ts.to_string())) else { continue };
            let (f_cmd, o_cmd, f_dat, o_dat) = (
                c[0].unwrap_or(0.0),
                c[1].unwrap_or(0.0),
                c[2].unwrap_or(0.0),
                c[3].unwrap_or(0.0),
            );
            if f_cmd > 0.0 {
                ratios.push(o_cmd / f_cmd);
            }
            table.push(vec![
                wl.to_string(),
                ts.to_string(),
                f3(f_cmd),
                f3(o_cmd),
                format!("{f_dat:.0}"),
                format!("{o_dat:.0}"),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &["kernel", "TS", "fence cmd GC/s", "OL cmd GC/s", "fence data GB/s", "OL data GB/s"],
            &table
        )
    );
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nmean OrderLight/fence command-bandwidth improvement: {avg:.1}x (paper: ~2.6x for Add, similar across kernels)");
    println!(
        "peak external data bandwidth of the module: 435 GB/s (paper quotes 405 GB/s achievable)"
    );
}
