//! Fence-scope ablation (paper Section 4.3): a fence acknowledged at
//! the "global serialization point" (the L2 slice) is much cheaper than
//! one that waits for issue-to-DRAM — but it provides no ordering
//! guarantee at the memory controller, which is exactly why existing
//! fences are *insufficient* for fine-grained PIM.

use orderlight_bench::cli;
use orderlight_pim::TsSize;
use orderlight_sim::experiments::ablation_fence_scope_jobs;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!("Fence-scope ablation, Add kernel, {} KiB/structure/channel\n", data / 1024);
    for ts in TsSize::ALL {
        let a = ablation_fence_scope_jobs(data, ts, jobs).expect("ablation runs");
        println!(
            "  TS {:>7}: issue-to-DRAM fence {:>7.4} ms ({:>4.0} cyc/fence, {}) | L2-ack fence {:>7.4} ms ({:>4.0} cyc/fence, {})",
            ts.to_string(),
            a.dram_issue_ms,
            a.dram_issue_wait,
            if a.dram_issue_correct { "correct" } else { "WRONG" },
            a.l2_ack_ms,
            a.l2_ack_wait,
            if a.l2_ack_correct {
                "correct *by luck*".to_string()
            } else {
                format!("WRONG: {} stripes", a.l2_ack_mismatches)
            },
        );
    }
    println!("\nThe L2-scope fence is cheaper because the acknowledgement returns from");
    println!("the global serialization point — but nothing then stops the FR-FCFS");
    println!("scheduler from reordering pre-fence stores against post-fence requests");
    println!("of the same data. Whether it corrupts is a race; the guarantee is gone.");
    println!("This is the paper's Section 4.3 argument for memory-centric ordering.");
}
