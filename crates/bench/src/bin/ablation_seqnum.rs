//! Related Work comparison (paper Section 8.1): OrderLight versus the
//! sequence-number approach of Kim et al. (paper reference 27).
//!
//! Kim et al. order PIM operand processing with per-request sequence
//! numbers, which requires buffering at the memory and credit-based
//! flow control from the SMs; the credit round trips throttle command
//! bandwidth when the buffer is small. OrderLight's in-band packets
//! need no memory-side buffering and no credits.

use orderlight_bench::cli;
use orderlight_pim::TsSize;
use orderlight_sim::experiments::ablation_seqnum_jobs;
use orderlight_sim::report::{f3, format_table};

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "Sequence-number (Kim et al.) vs OrderLight, Add kernel, TS=1/8 RB, {} KiB/structure/channel\n",
        data / 1024
    );
    let rows = ablation_seqnum_jobs(data, TsSize::Eighth, jobs).expect("ablation runs");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                f3(r.exec_time_ms),
                f3(r.command_gcs),
                r.credit_wait_cycles.to_string(),
                if r.correct { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["config", "exec ms", "cmd GC/s", "credit-wait cycles", "correct"], &table)
    );
    println!("\nSmall controller buffers make the core wait for credit round trips");
    println!("(the latency cost Section 8.1 predicts); matching OrderLight requires");
    println!("a large reorder buffer at the memory — expensive in commodity DRAM —");
    println!("while OrderLight gets there with a 42-bit in-band packet.");
}
