//! Regenerates paper Figure 11: the DRAM timing window for streaming 8
//! column writes (256 B TS) through one row — analytically from the
//! Table 1 parameters and by micro-simulating the bank state machine.

use orderlight_hbm::TimingParams;
use orderlight_sim::experiments::fig11;

fn main() {
    let t = TimingParams::hbm_table1();
    let f = fig11();
    println!("Figure 11 — DRAM timing for one 8-write row window (Table 1 timing)\n");
    println!("  open row (tRCDW)            : {:>3} cycles", t.rcd_wr);
    println!("  7 x column-write gaps (tCCD): {:>3} cycles", 7 * t.ccdl);
    println!("  write recovery (tWP)        : {:>3} cycles", t.wtp);
    println!("  precharge (tRP)             : {:>3} cycles", t.rp);
    println!("  ---------------------------------------");
    println!("  analytic window             : {:>3} cycles", f.analytic_window);
    println!("  micro-simulated window      : {:>3} cycles", f.simulated_window);
    assert_eq!(f.analytic_window, f.simulated_window, "model must match analysis");
    println!(
        "\n  peak command bandwidth: {}/{} x 850 MHz x 16 channels = {:.2} GC/s",
        f.writes_per_window, f.analytic_window, f.peak_command_gcs
    );
    println!("  (paper quotes ~2.3 GC/s peak; OrderLight reaches ~2.1 GC/s in Figure 10a)");
}
