//! Scheduler-knob ablation: the memory-controller design choices
//! DESIGN.md calls out (FR-FCFS scan depth, per-bank command-queue
//! capacity) swept under OrderLight on the Add kernel.

use orderlight_bench::cli;
use orderlight_sim::experiments::ablation_scheduler_jobs;
use orderlight_sim::report::{f3, format_table};

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "Controller scheduler knobs, Add kernel, OrderLight, {} KiB/structure/channel\n",
        data / 1024
    );
    let rows = ablation_scheduler_jobs(data, jobs).expect("ablation runs");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                f3(r.pim_command_gcs),
                f3(r.host_exec_ms),
                r.host_activates.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["knob", "PIM OL cmd GC/s", "host exec ms", "host row activations"], &table)
    );
    println!("\nThe ordered PIM stream is knob-insensitive — OrderLight barriers already");
    println!("pin its schedule. The host stream needs the FR-FCFS scan window for bank");
    println!("parallelism and row locality; the defaults (scan 16, bank queue 4) sit on");
    println!("the plateau.");
}
