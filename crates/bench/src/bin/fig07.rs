//! Recreates the *behaviour* contrasted in paper Figure 7: with a
//! fence, the host stalls between every phase of the vector-add tile
//! while the ordering round-trips through the memory; with OrderLight,
//! the whole tile streams to the controller and the packets enforce the
//! phase boundaries there.
//!
//! Prints the memory controller's issue trace for one tile under both
//! primitives, with the stall the core pays in between.

use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::message::{Marker, MarkerCopy, MemReq, ReqMeta};
use orderlight::packet::OrderLightPacket;
use orderlight::types::{ChannelId, GlobalWarpId, MemGroupId, TsSlot};
use orderlight::{AluOp, PimInstruction, PimOp};
use orderlight_hbm::{Channel, TimingParams};
use orderlight_memctrl::{McConfig, MemoryController};
use orderlight_pim::{PimUnit, TsSize};

const N: u64 = 4;

fn mc() -> (MemoryController, AddressMapping) {
    let mapping = AddressMapping::hbm_default();
    let cfg = McConfig {
        mapping: mapping.clone(),
        groups: GroupMap::default(),
        trace: true,
        ..McConfig::default()
    };
    let mc = MemoryController::new(
        cfg,
        Channel::new(TimingParams::hbm_table1(), 16, 2048),
        PimUnit::new(TsSize::Sixteenth, 2048, 16),
    );
    (mc, mapping)
}

fn phase(mapping: &AddressMapping, op: PimOp, row: u64, base_seq: u64) -> Vec<MemReq> {
    (0..N)
        .map(|i| MemReq::Pim {
            instr: PimInstruction {
                op,
                addr: mapping.compose(ChannelId(0), row * 2048 + i * 32),
                slot: TsSlot(i as u16),
                group: MemGroupId(0),
            },
            meta: ReqMeta { warp: GlobalWarpId::new(0, 0), seq: base_seq + i },
        })
        .collect()
}

fn marker(number: u32) -> MemReq {
    MemReq::Marker(MarkerCopy {
        marker: Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), number)),
        total_copies: 1,
    })
}

fn drain(mc: &mut MemoryController, now: &mut u64) {
    while !mc.is_idle() {
        mc.tick(*now);
        *now += 1;
    }
}

fn print_trace(mc: &MemoryController) {
    for r in mc.trace() {
        println!("    cycle {:>4}: {}", r.cycle, r.what);
    }
}

fn main() {
    // The Figure 4 tile: load a (row 0), fetch-and-add b (row 1),
    // store c (row 2).
    println!("One vector_add tile (N = {N} stripes), memory-controller issue trace\n");

    println!("(a) fence: the core sends one phase, then STALLS for the round trip");
    println!("    (probe down the pipe + acknowledgement back, ~440+ core cycles)\n");
    let (mut m, mapping) = mc();
    let mut now = 0;
    let mut stall_note = Vec::new();
    for (p, (op, row)) in [(PimOp::Load, 0u64), (PimOp::Compute(AluOp::Add), 1), (PimOp::Store, 2)]
        .into_iter()
        .enumerate()
    {
        for req in phase(&mapping, op, row, p as u64 * N) {
            m.push(req);
        }
        let start = now;
        drain(&mut m, &mut now);
        stall_note.push(now - start);
    }
    print_trace(&m);
    println!("    core idle between phases (memory cycles): {:?}\n", stall_note);

    println!("(b) OrderLight: the core streams the whole tile, packets between phases;");
    println!("    the controller enforces each boundary locally — the core never waits\n");
    let (mut m, mapping) = mc();
    for req in phase(&mapping, PimOp::Load, 0, 0) {
        m.push(req);
    }
    m.push(marker(1));
    for req in phase(&mapping, PimOp::Compute(AluOp::Add), 1, N) {
        m.push(req);
    }
    m.push(marker(2));
    for req in phase(&mapping, PimOp::Store, 2, 2 * N) {
        m.push(req);
    }
    m.push(marker(3));
    let mut now = 0;
    drain(&mut m, &mut now);
    print_trace(&m);
    println!("\n    total: fence tile spanned the three stalls above; the OrderLight tile");
    println!("    finished in {now} memory cycles with zero core wait (paper Figure 7).");
}
