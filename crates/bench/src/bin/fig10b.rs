//! Regenerates paper Figure 10b: execution time and core stall cycles
//! for the stream benchmark — GPU baseline vs fence vs OrderLight.

use orderlight_bench::cli;
use orderlight_sim::experiments::fig10_jobs;
use orderlight_sim::report::{f3, format_table, speedup};
use std::collections::BTreeMap;

/// `(kernel, TS)` -> per-mode measurements.
type Cells = BTreeMap<(String, String), [Option<(f64, u64)>; 2]>;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "Figure 10b — stream benchmark: execution time and core stall cycles, BMF=16, {} KiB/structure/channel\n",
        data / 1024
    );
    let rows = fig10_jobs(data, jobs).expect("figure 10 sweep");
    let mut gpu: BTreeMap<String, f64> = BTreeMap::new();
    let mut cells: Cells = BTreeMap::new();
    for p in &rows {
        match p.mode.as_str() {
            "gpu" => {
                gpu.insert(p.workload.clone(), p.stats.exec_time_ms);
            }
            "pim-fence" => {
                cells.entry((p.workload.clone(), p.ts.clone())).or_default()[0] =
                    Some((p.stats.exec_time_ms, p.stats.stall_cycles()));
            }
            "pim-orderlight" => {
                cells.entry((p.workload.clone(), p.ts.clone())).or_default()[1] =
                    Some((p.stats.exec_time_ms, p.stats.stall_cycles()));
            }
            _ => {}
        }
    }
    let order = ["Scale", "Copy", "Daxpy", "Triad", "Add"];
    let ts_order = ["1/16 RB", "1/8 RB", "1/4 RB", "1/2 RB"];
    let mut table = Vec::new();
    let mut ol_vs_gpu: Vec<f64> = Vec::new();
    for wl in order {
        let g = gpu.get(wl).copied().unwrap_or(0.0);
        for ts in ts_order {
            let Some(c) = cells.get(&(wl.to_string(), ts.to_string())) else { continue };
            let (f_ms, f_stall) = c[0].unwrap_or((0.0, 0));
            let (o_ms, o_stall) = c[1].unwrap_or((0.0, 0));
            ol_vs_gpu.push(g / o_ms);
            table.push(vec![
                wl.to_string(),
                ts.to_string(),
                f3(g),
                f3(f_ms),
                f3(o_ms),
                f_stall.to_string(),
                o_stall.to_string(),
                speedup(g, o_ms),
                speedup(f_ms, o_ms),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "kernel",
                "TS",
                "GPU ms",
                "fence ms",
                "OL ms",
                "fence stalls",
                "OL stalls",
                "OL vs GPU",
                "OL vs fence"
            ],
            &table
        )
    );
    let avg = ol_vs_gpu.iter().sum::<f64>() / ol_vs_gpu.len() as f64;
    println!("\nmean OrderLight speedup over the GPU baseline: {avg:.1}x (paper: 3.5x to 7.4x on average across TS sizes)");
}
