//! Regenerates paper Figure 5: fence overhead for the vector-add kernel.
//!
//! Bars: execution time for {no ordering (functionally incorrect),
//! fence at TS = 1/16, 1/8, 1/4, 1/2 of the row buffer}; line: waiting
//! cycles per fence instruction.

use orderlight_bench::cli;
use orderlight_sim::experiments::fig05_jobs;
use orderlight_sim::report::{bar_chart, f3, format_table};

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "Figure 5 — fence overhead, vector_add (Add), BMF=16, {} KiB/structure/channel\n",
        data / 1024
    );
    let rows = fig05_jobs(data, jobs).expect("figure 5 sweep");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|p| {
            let label = if p.mode == "pim-none" {
                "No Fence".to_string()
            } else {
                format!("Fence {}", p.ts)
            };
            vec![
                label,
                f3(p.stats.exec_time_ms),
                format!("{:.0}", p.stats.wait_cycles_per_fence()),
                if p.stats.is_correct() {
                    "yes".to_string()
                } else {
                    "FUNCTIONALLY INCORRECT".to_string()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["config", "exec time (ms)", "wait cycles / fence", "correct"], &table)
    );
    let bars: Vec<(String, f64)> = rows
        .iter()
        .map(|p| {
            let label = if p.mode == "pim-none" {
                "No Fence (WRONG)".to_string()
            } else {
                format!("Fence {}", p.ts)
            };
            (label, p.stats.exec_time_ms)
        })
        .collect();
    println!("\nexecution time (ms):\n{}", bar_chart(&bars, 50));

    let no_fence = rows[0].stats.exec_time_ms;
    let worst = rows[1..].iter().map(|p| p.stats.exec_time_ms).fold(0.0f64, f64::max);
    let best = rows[1..].iter().map(|p| p.stats.exec_time_ms).fold(f64::MAX, f64::min);
    println!(
        "\nfence slowdown vs unordered issue: {:.1}x (largest TS) to {:.1}x (smallest TS)",
        best / no_fence,
        worst / no_fence
    );
    println!("(paper reports 4.5x to 25x)");
}
