//! Row-buffer page-policy ablation: open-page (the default, matching
//! the paper's row-hit-oriented analysis) versus closed-page, on a
//! streaming and an irregular kernel.

use orderlight_bench::cli;
use orderlight_sim::experiments::ablation_page_policy_jobs;
use orderlight_sim::report::{f3, format_table};

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!("Page-policy ablation, OrderLight, {} KiB/structure/channel\n", data / 1024);
    let rows = ablation_page_policy_jobs(data, jobs).expect("ablation runs");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.label.clone(), f3(r.exec_time_ms), r.activates.to_string()])
        .collect();
    println!("{}", format_table(&["workload / policy", "exec ms", "activations"], &table));
    println!("\nA negative result worth recording: for *ordered PIM streams* the policy");
    println!("barely matters — the phase barriers keep the bank queue primed, so the");
    println!("next transaction (and its PRE, if it conflicts) is always already visible");
    println!("and eager closing buys nothing. Page policy is a host-traffic knob; the");
    println!("PIM command schedule is pinned by the ordering primitive.");
}
