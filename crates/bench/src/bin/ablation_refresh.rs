//! Refresh ablation: the paper's methodology (like most PIM studies)
//! ignores DRAM refresh. This binary quantifies what that omission
//! hides: the Add kernel under OrderLight with all-bank refresh off
//! versus HBM2-like tREFI = 3.9 us / tRFC = 350 ns.

use orderlight_bench::cli;
use orderlight_sim::experiments::ablation_refresh_jobs;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "DRAM refresh ablation, Add kernel, OrderLight, {} KiB/structure/channel\n",
        data / 1024
    );
    let rows = ablation_refresh_jobs(data, jobs).expect("ablation runs");
    for r in &rows {
        println!(
            "  {:<20}: {:>8.4} ms | {:>6.3} GC/s | {}",
            r.label,
            r.exec_time_ms,
            r.command_gcs,
            if r.correct { "correct" } else { "WRONG" }
        );
    }
    let off = rows[0].exec_time_ms;
    let on = rows[1].exec_time_ms;
    println!(
        "\n  refresh costs {:.1}% execution time (tRFC/tREFI bounds it at ~9%);",
        (on / off - 1.0) * 100.0
    );
    println!("  results remain bit-correct — refresh steals cycles, not ordering.");
}
