//! Arbitration-granularity ablation (paper Sections 3.2/3.5): what
//! coarse-grained arbitration costs the host.
//!
//! Under fine-grained arbitration the memory controller interleaves host
//! requests with PIM commands (and OrderLight packets never constrain
//! the host's memory group). Under coarse-grained arbitration the host
//! is locked out of memory for the entire PIM computation.

use orderlight_bench::cli;
use orderlight_sim::experiments::ablation_arbitration_jobs;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!("Arbitration-granularity ablation, {} KiB/structure/channel\n", data / 1024);
    let a = ablation_arbitration_jobs(data, jobs).expect("ablation runs");
    println!(
        "  fine-grained arbitration : mean host read service latency = {:.0} memory cycles",
        a.fga_mean_host_latency
    );
    println!(
        "  coarse-grained arbitration: host blocked for the whole PIM kernel = {} core cycles",
        a.cga_host_wait_cycles
    );
    let factor = a.cga_host_wait_cycles as f64 / a.fga_mean_host_latency.max(1.0);
    println!("\n  a host access issued at PIM-kernel launch waits ~{factor:.0}x longer under CGA");
    println!("  (CGO/CGA designs render system memory inaccessible to the host during PIM");
    println!("  computation — paper Section 3.2, Figure 2a)");
}
