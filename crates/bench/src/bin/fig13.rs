//! Regenerates paper Figure 13: fence vs OrderLight across bandwidth
//! multiplication factors (4x/8x/16x) for the Add kernel.

use orderlight_bench::cli;
use orderlight_sim::experiments::fig13_jobs;
use orderlight_sim::report::{f3, format_table, speedup};
use std::collections::BTreeMap;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!("Figure 13 — BMF sweep, Add kernel, {} KiB/structure/channel\n", data / 1024);
    let rows = fig13_jobs(data, jobs).expect("figure 13 sweep");
    let mut cells: BTreeMap<(u32, String), [Option<f64>; 2]> = BTreeMap::new();
    for p in &rows {
        let i = usize::from(p.mode == "pim-orderlight");
        cells.entry((p.bmf, p.ts.clone())).or_default()[i] = Some(p.stats.exec_time_ms);
    }
    let ts_order = ["1/16 RB", "1/8 RB", "1/4 RB", "1/2 RB"];
    let mut table = Vec::new();
    let mut ratios = Vec::new();
    for bmf in [4u32, 8, 16] {
        for ts in ts_order {
            let Some(c) = cells.get(&(bmf, ts.to_string())) else { continue };
            let f_ms = c[0].unwrap_or(0.0);
            let o_ms = c[1].unwrap_or(0.0);
            if o_ms > 0.0 {
                ratios.push(f_ms / o_ms);
            }
            table.push(vec![
                format!("{bmf}x"),
                ts.to_string(),
                f3(f_ms),
                f3(o_ms),
                speedup(f_ms, o_ms),
            ]);
        }
    }
    println!("{}", format_table(&["BMF", "TS", "fence ms", "OL ms", "OL vs fence"], &table));
    let lo = ratios.iter().copied().fold(f64::MAX, f64::min);
    let hi = ratios.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\nOrderLight vs fence across BMF: {lo:.1}x to {hi:.1}x (paper: 1.9x to 3.1x; the gap"
    );
    println!("widens at lower BMF, where more commands are needed for the same job).");
}
