//! Echoes paper Table 1: the simulator configuration in force.

use orderlight_sim::experiments::table1;
use orderlight_sim::report::format_table;

fn main() {
    println!("Table 1 — simulator configuration\n");
    let rows: Vec<Vec<String>> = table1().into_iter().map(|(k, v)| vec![k, v]).collect();
    println!("{}", format_table(&["parameter", "value"], &rows));
}
