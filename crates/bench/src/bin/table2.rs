//! Echoes paper Table 2: the workload suite, with the structural
//! compute/memory counts of our kernel specifications alongside the
//! paper's ratios.

use orderlight_sim::report::format_table;
use orderlight_workloads::WorkloadId;

fn main() {
    println!("Table 2 — workload summary\n");
    let rows: Vec<Vec<String>> = WorkloadId::ALL
        .iter()
        .map(|id| {
            let m = id.meta();
            let (c, mem) = id.spec().ops_per_stripe();
            vec![
                m.name.to_string(),
                m.description.to_string(),
                m.ratio.to_string(),
                format!("{c}:{mem}"),
                if m.multi_structure { "Yes" } else { "No" }.to_string(),
                format!("{:?}", m.suite),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["kernel", "description", "paper C:M", "spec C:M", ">1 structure", "suite"],
            &rows
        )
    );
}
