//! Dumps the full design-space sweep (Figures 10, 12 and 13) as CSV on
//! stdout — machine-readable results for external plotting.
//!
//! ```text
//! cargo run --release -p orderlight-bench --bin sweep_csv -- --jobs 8 > sweep.csv
//! ```
//!
//! `--jobs N` (or `ORDERLIGHT_JOBS`) spreads the independent sweep
//! points over N worker threads; the default is the host's available
//! parallelism. Output is bit-identical at any worker count (enforced
//! by `tests/parallel_equivalence.rs`).

use orderlight_bench::cli;
use orderlight_sim::experiments::{fig10_jobs, fig12_jobs, fig13_jobs, SweepPoint};

fn emit(rows: &[SweepPoint], figure: &str) {
    for p in rows {
        let s = &p.stats;
        println!(
            "{figure},{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},{},{},{},{:.6},{}",
            p.workload,
            p.ts.replace(' ', ""),
            p.mode,
            p.ordering,
            p.bmf,
            s.exec_time_ms,
            s.command_bandwidth_gcs,
            s.data_bandwidth_gbs,
            s.stall_cycles(),
            s.sm.fence_stall_cycles,
            s.sm.ol_wait_cycles,
            s.sm.reg_wait_cycles,
            s.sm.structural_stall_cycles,
            s.sm.credit_wait_cycles,
            s.sm.fences + s.sm.orderlights,
            s.primitives_per_pim_instr,
            if s.is_correct() { "pass" } else { "FAIL" },
        );
    }
}

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "figure,workload,ts,mode,ordering,bmf,exec_ms,cmd_gcs,data_gbs,stall_cycles,stall_fence,stall_ol,stall_reg,stall_structural,stall_credit,primitives,prim_per_instr,verified"
    );
    emit(&fig10_jobs(data, jobs).expect("fig10"), "fig10");
    emit(&fig12_jobs(data, jobs).expect("fig12"), "fig12");
    emit(&fig13_jobs(data, jobs).expect("fig13"), "fig13");
}
