//! Dumps the full design-space sweep (Figures 10, 12 and 13) as CSV on
//! stdout — machine-readable results for external plotting.
//!
//! ```text
//! cargo run --release -p orderlight-bench --bin sweep_csv > sweep.csv
//! ```

use orderlight_bench::report_data_bytes;
use orderlight_sim::experiments::{fig10, fig12, fig13, SweepPoint};

fn emit(rows: &[SweepPoint], figure: &str) {
    for p in rows {
        let s = &p.stats;
        println!(
            "{figure},{},{},{},{},{:.6},{:.6},{:.6},{},{},{:.6},{}",
            p.workload,
            p.ts.replace(' ', ""),
            p.mode,
            p.bmf,
            s.exec_time_ms,
            s.command_bandwidth_gcs,
            s.data_bandwidth_gbs,
            s.stall_cycles(),
            s.sm.fences + s.sm.orderlights,
            s.primitives_per_pim_instr,
            if s.is_correct() { "pass" } else { "FAIL" },
        );
    }
}

fn main() {
    let data = report_data_bytes();
    println!(
        "figure,workload,ts,mode,bmf,exec_ms,cmd_gcs,data_gbs,stall_cycles,primitives,prim_per_instr,verified"
    );
    emit(&fig10(data).expect("fig10"), "fig10");
    emit(&fig12(data).expect("fig12"), "fig12");
    emit(&fig13(data).expect("fig13"), "fig13");
}
