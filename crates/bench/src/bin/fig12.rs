//! Regenerates paper Figure 12: execution-time improvement of
//! OrderLight over fence for the data-intensive application kernels,
//! plus the ordering-primitives-per-PIM-instruction line.

use orderlight_bench::cli;
use orderlight_sim::experiments::fig12_jobs;
use orderlight_sim::report::{bar_chart, f3, format_table, speedup};
use std::collections::BTreeMap;

/// `(kernel, TS)` -> per-mode measurements.
type Cells = BTreeMap<(String, String), [Option<(f64, f64)>; 2]>;

fn main() {
    let args = cli::parse();
    let (data, jobs) = (args.data, args.jobs);
    println!(
        "Figure 12 — application kernels: fence vs OrderLight, BMF=16, {} KiB/structure/channel\n",
        data / 1024
    );
    let rows = fig12_jobs(data, jobs).expect("figure 12 sweep");
    let mut cells: Cells = BTreeMap::new();
    for p in &rows {
        let i = usize::from(p.mode == "pim-orderlight");
        cells.entry((p.workload.clone(), p.ts.clone())).or_default()[i] =
            Some((p.stats.exec_time_ms, p.stats.primitives_per_pim_instr));
    }
    let order = ["BN_Fwd", "BN_Bwd", "FC", "KMeans", "SVM", "Hist", "Gen_Fil"];
    let ts_order = ["1/16 RB", "1/8 RB", "1/4 RB", "1/2 RB"];
    let mut table = Vec::new();
    let mut improvements = Vec::new();
    for wl in order {
        for ts in ts_order {
            let Some(c) = cells.get(&(wl.to_string(), ts.to_string())) else { continue };
            let (f_ms, _) = c[0].unwrap_or((0.0, 0.0));
            let (o_ms, prim) = c[1].unwrap_or((0.0, 0.0));
            if o_ms > 0.0 {
                improvements.push(f_ms / o_ms);
            }
            table.push(vec![
                wl.to_string(),
                ts.to_string(),
                f3(f_ms),
                f3(o_ms),
                speedup(f_ms, o_ms),
                format!("{prim:.3}"),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &["kernel", "TS", "fence ms", "OL ms", "OL vs fence", "primitives / PIM instr"],
            &table
        )
    );
    // The paper's headline bars: OL-vs-fence improvement per kernel at
    // the 1/8 RB design point.
    let bars: Vec<(String, f64)> = order
        .iter()
        .filter_map(|wl| {
            let c = cells.get(&((*wl).to_string(), "1/8 RB".to_string()))?;
            let (f_ms, _) = c[0]?;
            let (o_ms, _) = c[1]?;
            Some(((*wl).to_string(), f_ms / o_ms))
        })
        .collect();
    println!("\nOrderLight improvement over fence at 1/8 RB (x):\n{}", bar_chart(&bars, 40));

    let lo = improvements.iter().copied().fold(f64::MAX, f64::min);
    let hi = improvements.iter().copied().fold(0.0f64, f64::max);
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!(
        "\nOrderLight improvement over fence: {lo:.1}x to {hi:.1}x (mean {avg:.1}x); paper reports 5.5x to 8.5x"
    );
    println!("note the primitives/instruction column: it halves per TS doubling for the");
    println!("elementwise kernels but shrinks much more slowly for FC/KMeans and not at");
    println!("all for Gen_Fil (the paper's rate-of-decrease observation).");
}
