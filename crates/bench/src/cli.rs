//! Shared command-line handling for the report binaries.
//!
//! Every `src/bin/` binary accepts the shared execution flags, parsed
//! by [`orderlight_sim::cli`] — the same parser the `orderlight`
//! multitool dispatches through, so the flag surface cannot drift
//! between the two entry points:
//!
//! * `--jobs N` / `-j N` — sweep worker count (or `ORDERLIGHT_JOBS`).
//! * `--core cycle|event` — execution core (or `ORDERLIGHT_CORE`);
//!   installed process-wide as with the `orderlight` CLI.
//! * `--seed N` — master seed for fault-stressed runs (default 0;
//!   feed it to `ScenarioBuilder::fault_seed`).
//! * `--ordering MODE` — execution mode override for binaries that
//!   honour it (`gpu`, `none`, `fence`, `orderlight`, `seqnum`,
//!   `louvre`, `bulk`).
//!
//! Plus the report-specific `--data-kb N` — KiB per data structure per
//! channel (or `ORDERLIGHT_DATA_KB`; default 256).
//!
//! Unknown arguments are ignored, matching the binaries' historical
//! behaviour; invalid values for known flags exit with status 2.

use crate::report_data_bytes;
use orderlight_sim::cli::common_from_process_args;
use orderlight_sim::config::ExecMode;
use orderlight_sim::core_select::SimCore;

/// The parsed common flags.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Bytes per data structure per channel.
    pub data: u64,
    /// Sweep worker count.
    pub jobs: usize,
    /// Execution core (already installed as the process override).
    pub core: SimCore,
    /// Master fault seed for stressed runs.
    pub seed: u64,
    /// Execution-mode override from `--ordering`, when given.
    pub ordering: Option<ExecMode>,
}

impl BenchArgs {
    /// `data` in KiB, for report headers.
    #[must_use]
    pub fn data_kb(&self) -> u64 {
        self.data / 1024
    }
}

/// The value following `flag` in `args`, parsed as `u64`; exits with
/// status 2 on an unparsable value, `None` when the flag is absent.
fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let pos = args.iter().position(|a| a == flag)?;
    let Some(raw) = args.get(pos + 1) else {
        eprintln!("missing value for {flag}");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("invalid value '{raw}' for {flag}");
            std::process::exit(2);
        }
    }
}

/// Parses the process arguments (and environment fallbacks) into
/// [`BenchArgs`], installing the `--core` choice process-wide.
#[must_use]
pub fn parse() -> BenchArgs {
    let common = common_from_process_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let data = flag_value(&args, "--data-kb").map_or_else(report_data_bytes, |kb| kb * 1024);
    BenchArgs {
        data,
        jobs: common.jobs,
        core: common.core,
        seed: common.seed,
        ordering: common.ordering,
    }
}
