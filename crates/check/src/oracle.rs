//! The happens-before oracle: a passive trace sink that checks every
//! controller's issue stream against the ordering its packets and
//! fences promised.
//!
//! The oracle consumes four event kinds and ignores everything else
//! (in particular the per-cycle [`TraceEvent::QueueSample`] stream,
//! which the event core legitimately elides):
//!
//! * [`TraceEvent::ReqEnqueued`] — a request entered a controller's
//!   transaction queues; it becomes *outstanding*.
//! * [`TraceEvent::PacketEnqueued`] — an OrderLight packet arrived; it
//!   raises a **barrier** snapshotting the outstanding same-group
//!   requests (the packet's *pre-set*).
//! * [`TraceEvent::ReqIssued`] — a request's column (or execute)
//!   command issued. Issuing from outside a barrier's pre-set while
//!   that pre-set is non-empty is a violated happens-before edge.
//! * [`TraceEvent::FenceAck`] — a fence acknowledgement left the
//!   controller; acking a warp that still has outstanding requests is
//!   an early (unsafe) acknowledgement.

use orderlight_trace::{TraceEvent, TraceSink};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Mutex;

/// Retained-violation cap: everything is *counted*, but only the first
/// `MAX_RETAINED` violations keep their full records (a badly broken
/// schedule can violate millions of edges).
const MAX_RETAINED: usize = 4096;

/// A request identity: (flattened warp id, per-warp sequence number).
type Key = (u32, u64);

/// What kind of ordering promise was broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The request was enqueued after an OrderLight packet but issued
    /// while `pending` of the packet's pre-set requests were still
    /// outstanding in the packet's group.
    PacketOvertake {
        /// The overtaken packet's per-(channel, group) number.
        packet_number: u32,
        /// Memory cycle the packet arrived at the controller.
        packet_cycle: u64,
        /// Pre-set requests still outstanding at the offending issue.
        pending: usize,
    },
    /// A fence was acknowledged while its warp still had `outstanding`
    /// requests at this controller.
    EarlyFenceAck {
        /// The acknowledged fence id.
        fence_id: u64,
        /// The warp's outstanding request count at acknowledgement.
        outstanding: u64,
    },
    /// A warp's request issued with a sequence number below one the warp
    /// already issued at this controller — only checked when the
    /// per-warp sequence discipline is opted in
    /// ([`OrderingOracle::with_seq_check`], for the SeqNum backend whose
    /// promise is in-order issue rather than in-band barriers).
    SeqRegression {
        /// The highest sequence number the warp had already issued.
        prev_seq: u64,
    },
}

/// One violated ordering edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Memory cycle of the offending issue / acknowledgement.
    pub cycle: u64,
    /// Memory channel.
    pub channel: u8,
    /// Memory group.
    pub group: u8,
    /// Offending warp (flattened id).
    pub warp: u32,
    /// Offending per-warp sequence number (0 for fence violations).
    pub seq: u64,
    /// The broken promise.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ViolationKind::PacketOvertake { packet_number, packet_cycle, pending } => write!(
                f,
                "cycle {}: ch{} group {} warp {} seq {} overtook packet #{} \
                 (enqueued at cycle {}) with {} pre-packet request(s) still outstanding",
                self.cycle,
                self.channel,
                self.group,
                self.warp,
                self.seq,
                packet_number,
                packet_cycle,
                pending
            ),
            ViolationKind::EarlyFenceAck { fence_id, outstanding } => write!(
                f,
                "cycle {}: ch{} fence {} of warp {} acknowledged with {} request(s) outstanding",
                self.cycle, self.channel, fence_id, self.warp, outstanding
            ),
            ViolationKind::SeqRegression { prev_seq } => write!(
                f,
                "cycle {}: ch{} warp {} issued seq {} after already issuing seq {}",
                self.cycle, self.channel, self.warp, self.seq, prev_seq
            ),
        }
    }
}

/// The oracle's verdict and coverage counters after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Retained violation records (first [`MAX_RETAINED`]).
    pub violations: Vec<Violation>,
    /// Total violations observed (retained or not).
    pub violations_total: u64,
    /// Requests that entered controller queues.
    pub reqs_enqueued: u64,
    /// Column / execute commands issued.
    pub reqs_issued: u64,
    /// OrderLight packets observed.
    pub packets: u64,
    /// Barriers that imposed at least one edge (non-empty pre-set).
    pub barriers_raised: u64,
    /// Fence acknowledgements observed.
    pub fence_acks: u64,
}

impl CheckReport {
    /// Whether no ordering edge was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} violation(s) over {} requests, {} packets ({} binding), {} fence acks",
            self.violations_total,
            self.reqs_enqueued,
            self.packets,
            self.barriers_raised,
            self.fence_acks
        )
    }
}

/// A raised barrier: the packet identity and its pre-set.
#[derive(Debug)]
struct Barrier {
    number: u32,
    cycle: u64,
    pre: HashSet<Key>,
}

/// Per-(channel, group) ordering state.
#[derive(Debug, Default)]
struct GroupState {
    outstanding: HashSet<Key>,
    barriers: VecDeque<Barrier>,
}

/// Per-channel oracle state.
#[derive(Debug, Default)]
struct ChannelState {
    groups: HashMap<u8, GroupState>,
    warp_outstanding: HashMap<u32, u64>,
    /// Highest sequence number each warp has issued (seq-check mode).
    warp_last_seq: HashMap<u32, u64>,
}

#[derive(Debug, Default)]
struct OracleState {
    channels: HashMap<u8, ChannelState>,
    report: CheckReport,
    /// Opt-in per-warp issue-order discipline (the SeqNum backend's
    /// promise). Off by default: no other backend orders across an
    /// entire warp's stream.
    seq_check: bool,
}

impl OracleState {
    fn record(&mut self, v: Violation) {
        self.report.violations_total += 1;
        if self.report.violations.len() < MAX_RETAINED {
            self.report.violations.push(v);
        }
    }

    fn on_event(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::ReqEnqueued { channel, group, warp, seq, .. } => {
                self.report.reqs_enqueued += 1;
                let ch = self.channels.entry(channel).or_default();
                ch.groups.entry(group).or_default().outstanding.insert((warp, seq));
                *ch.warp_outstanding.entry(warp).or_default() += 1;
            }
            TraceEvent::PacketEnqueued { cycle, channel, group, number } => {
                self.report.packets += 1;
                let gs = self.channels.entry(channel).or_default().groups.entry(group).or_default();
                // An empty pre-set imposes no edge; skip the barrier.
                if !gs.outstanding.is_empty() {
                    self.report.barriers_raised += 1;
                    gs.barriers.push_back(Barrier { number, cycle, pre: gs.outstanding.clone() });
                }
            }
            TraceEvent::ReqIssued { cycle, channel, group, warp, seq } => {
                self.report.reqs_issued += 1;
                let seq_check = self.seq_check;
                let ch = self.channels.entry(channel).or_default();
                let key = (warp, seq);
                let mut violations = Vec::new();
                if seq_check {
                    let last = ch.warp_last_seq.entry(warp).or_default();
                    if seq < *last {
                        violations.push(Violation {
                            cycle,
                            channel,
                            group,
                            warp,
                            seq,
                            kind: ViolationKind::SeqRegression { prev_seq: *last },
                        });
                    }
                    *last = (*last).max(seq);
                }
                let gs = ch.groups.entry(group).or_default();
                for barrier in &mut gs.barriers {
                    if !barrier.pre.remove(&key) && !barrier.pre.is_empty() {
                        violations.push(Violation {
                            cycle,
                            channel,
                            group,
                            warp,
                            seq,
                            kind: ViolationKind::PacketOvertake {
                                packet_number: barrier.number,
                                packet_cycle: barrier.cycle,
                                pending: barrier.pre.len(),
                            },
                        });
                    }
                }
                while gs.barriers.front().is_some_and(|b| b.pre.is_empty()) {
                    gs.barriers.pop_front();
                }
                gs.outstanding.remove(&key);
                if let Some(n) = ch.warp_outstanding.get_mut(&warp) {
                    *n = n.saturating_sub(1);
                }
                for v in violations {
                    self.record(v);
                }
            }
            TraceEvent::FenceAck { cycle, channel, warp, fence_id } => {
                self.report.fence_acks += 1;
                let outstanding = self
                    .channels
                    .entry(channel)
                    .or_default()
                    .warp_outstanding
                    .get(&warp)
                    .copied()
                    .unwrap_or(0);
                if outstanding > 0 {
                    self.record(Violation {
                        cycle,
                        channel,
                        group: 0,
                        warp,
                        seq: 0,
                        kind: ViolationKind::EarlyFenceAck { fence_id, outstanding },
                    });
                }
            }
            _ => {}
        }
    }
}

/// The runtime ordering-violation oracle. Attach with
/// [`orderlight_sim::System::attach_observer`] (works under both
/// execution cores) or [`orderlight_sim::System::attach_sink`]; read
/// the verdict with [`OrderingOracle::report`] after the run.
#[derive(Debug, Default)]
pub struct OrderingOracle {
    state: Mutex<OracleState>,
}

impl OrderingOracle {
    /// A fresh oracle with no observations.
    #[must_use]
    pub fn new() -> OrderingOracle {
        OrderingOracle::default()
    }

    /// A fresh oracle that additionally checks per-warp issue order
    /// (sequence numbers must be non-decreasing per warp and channel).
    /// This is the promise of the SeqNum backend, which emits no in-band
    /// packets for the barrier machinery to check.
    #[must_use]
    pub fn with_seq_check() -> OrderingOracle {
        let o = OrderingOracle::default();
        o.state.lock().expect("oracle poisoned").seq_check = true;
        o
    }

    /// A snapshot of the verdict so far (cheap after a run; clones the
    /// retained violations).
    #[must_use]
    pub fn report(&self) -> CheckReport {
        self.state.lock().expect("oracle poisoned").report.clone()
    }
}

impl TraceSink for OrderingOracle {
    fn emit(&self, event: TraceEvent) {
        self.state.lock().expect("oracle poisoned").on_event(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(channel: u8, group: u8, warp: u32, seq: u64, cycle: u64) -> TraceEvent {
        TraceEvent::ReqEnqueued { cycle, channel, group, warp, seq }
    }

    fn iss(channel: u8, group: u8, warp: u32, seq: u64, cycle: u64) -> TraceEvent {
        TraceEvent::ReqIssued { cycle, channel, group, warp, seq }
    }

    fn pkt(channel: u8, group: u8, number: u32, cycle: u64) -> TraceEvent {
        TraceEvent::PacketEnqueued { cycle, channel, group, number }
    }

    #[test]
    fn ordered_stream_is_clean() {
        let o = OrderingOracle::new();
        o.emit(enq(0, 0, 1, 1, 10));
        o.emit(pkt(0, 0, 1, 11));
        o.emit(enq(0, 0, 1, 2, 12));
        o.emit(iss(0, 0, 1, 1, 20)); // pre-set drains first
        o.emit(iss(0, 0, 1, 2, 30));
        let r = o.report();
        assert!(r.is_clean(), "{}", r.summary());
        assert_eq!(r.barriers_raised, 1);
        assert_eq!((r.reqs_enqueued, r.reqs_issued, r.packets), (2, 2, 1));
    }

    #[test]
    fn overtake_is_flagged_once_per_broken_edge() {
        let o = OrderingOracle::new();
        o.emit(enq(0, 0, 1, 1, 10));
        o.emit(pkt(0, 0, 1, 11));
        o.emit(enq(0, 0, 1, 2, 12));
        o.emit(iss(0, 0, 1, 2, 20)); // post-packet request overtakes
        o.emit(iss(0, 0, 1, 1, 30));
        let r = o.report();
        assert_eq!(r.violations_total, 1);
        let v = r.violations[0];
        assert_eq!((v.warp, v.seq, v.cycle), (1, 2, 20));
        assert!(matches!(
            v.kind,
            ViolationKind::PacketOvertake { packet_number: 1, packet_cycle: 11, pending: 1 }
        ));
    }

    #[test]
    fn packets_do_not_constrain_other_groups_or_channels() {
        let o = OrderingOracle::new();
        o.emit(enq(0, 0, 1, 1, 10));
        o.emit(pkt(0, 0, 1, 11));
        // Same channel, different group; different channel, same group.
        o.emit(enq(0, 1, 2, 1, 12));
        o.emit(iss(0, 1, 2, 1, 13));
        o.emit(enq(1, 0, 3, 1, 12));
        o.emit(iss(1, 0, 3, 1, 13));
        o.emit(iss(0, 0, 1, 1, 30));
        assert!(o.report().is_clean());
    }

    #[test]
    fn empty_pre_set_raises_no_barrier() {
        let o = OrderingOracle::new();
        o.emit(pkt(0, 0, 1, 5));
        o.emit(enq(0, 0, 1, 1, 10));
        o.emit(iss(0, 0, 1, 1, 11));
        let r = o.report();
        assert!(r.is_clean());
        assert_eq!(r.packets, 1);
        assert_eq!(r.barriers_raised, 0);
    }

    #[test]
    fn stacked_barriers_each_enforce_their_own_pre_set() {
        let o = OrderingOracle::new();
        o.emit(enq(0, 0, 1, 1, 1));
        o.emit(pkt(0, 0, 1, 2));
        o.emit(enq(0, 0, 1, 2, 3));
        o.emit(pkt(0, 0, 2, 4));
        o.emit(enq(0, 0, 1, 3, 5));
        // seq 3 jumps both packets: one violation per broken barrier.
        o.emit(iss(0, 0, 1, 3, 6));
        assert_eq!(o.report().violations_total, 2);
    }

    #[test]
    fn early_fence_ack_is_flagged() {
        let o = OrderingOracle::new();
        o.emit(enq(0, 0, 7, 1, 10));
        o.emit(TraceEvent::FenceAck { cycle: 11, channel: 0, warp: 7, fence_id: 3 });
        let r = o.report();
        assert_eq!(r.violations_total, 1);
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::EarlyFenceAck { fence_id: 3, outstanding: 1 }
        ));
        // After the request completes, an ack for the same warp is fine.
        o.emit(iss(0, 0, 7, 1, 12));
        o.emit(TraceEvent::FenceAck { cycle: 13, channel: 0, warp: 7, fence_id: 4 });
        assert_eq!(o.report().violations_total, 1);
    }

    #[test]
    fn ignores_unrelated_events() {
        let o = OrderingOracle::new();
        o.emit(TraceEvent::QueueSample { cycle: 1, channel: 0, read_q: 3, write_q: 1 });
        o.emit(TraceEvent::WarpRetire { cycle: 2, sm: 0, warp: 0 });
        let r = o.report();
        assert!(r.is_clean());
        assert_eq!(r.reqs_enqueued, 0);
    }

    #[test]
    fn violation_display_names_the_edge() {
        let v = Violation {
            cycle: 20,
            channel: 3,
            group: 1,
            warp: 4,
            seq: 9,
            kind: ViolationKind::PacketOvertake { packet_number: 2, packet_cycle: 11, pending: 5 },
        };
        let s = v.to_string();
        assert!(s.contains("ch3") && s.contains("packet #2") && s.contains("5 pre-packet"));
    }
}
