//! Cross-primitive ordering comparison: run the same workload under
//! every ordering backend, with the happens-before oracle attached, and
//! report speedup vs. violation-freedom vs. ordering-metadata cost.
//!
//! This is the measurement half of the pluggable-backend refactor: the
//! five backends ([`COMPARE_BACKENDS`]) answer the same question —
//! "keep same-group PIM requests in order" — with different machinery
//! and different costs:
//!
//! | backend      | in-band metadata              | enforcement point   |
//! |--------------|-------------------------------|---------------------|
//! | `orderlight` | 42-bit group-tagged packets   | scheduler barrier   |
//! | `fence`      | probe/ack round trips         | issuing core stalls |
//! | `seqnum`     | credit responses per request  | controller FIFO     |
//! | `louvre`     | 42-bit versioned releases     | dequeue gate        |
//! | `bulk`       | none (controller state only)  | dequeue gate        |
//!
//! Every leg runs through [`check_scenario`], so each record carries
//! the oracle's verdict alongside the timing: a backend is only
//! comparable if its run was violation-free.

use crate::runner::check_scenario;
use orderlight_sim::config::ExecMode;
use orderlight_sim::core_select::SimCore;
use orderlight_sim::system::SimError;
use orderlight_sim::ScenarioBuilder;
use orderlight_workloads::{OrderingMode, WorkloadId};

/// The five ordering backends, in reporting order. `fence` is the
/// speedup baseline: it is the conservative scheme every GPU already
/// implements, so "speedup" reads as "what finer-grained ordering buys
/// over draining at the core".
pub const COMPARE_BACKENDS: [OrderingMode; 5] = [
    OrderingMode::Fence,
    OrderingMode::OrderLight,
    OrderingMode::SeqNum,
    OrderingMode::LouvreVersioned,
    OrderingMode::BulkBitwiseStrong,
];

/// Width of an in-band ordering message, in bits. OrderLight packets
/// and Louvre release markers both ride the request path at this width
/// (Section 4 of the paper); fence probes are modelled at the same
/// width since they traverse the same NoC slots.
pub const PACKET_BITS: u64 = 42;

/// Width of a SeqNum credit response, in bits: a warp id and a
/// sequence-number acknowledgement on the response path.
pub const CREDIT_BITS: u64 = 32;

/// One backend's row in the comparison: timing, verdict, and metadata
/// accounting for a single checked run.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendRecord {
    /// Which backend ran (its `Display` is the stable CLI/JSON label).
    pub ordering: OrderingMode,
    /// Drain time in core cycles.
    pub core_cycles: u64,
    /// Drain time in modelled milliseconds.
    pub exec_time_ms: f64,
    /// `fence` baseline cycles / this backend's cycles (1.0 for the
    /// baseline itself; >1 means faster than draining at the core).
    pub speedup_vs_fence: f64,
    /// Whether the checked run was fully clean: oracle-silent, DRAM
    /// bytes matching the golden model, zero backend sanity violations.
    pub clean: bool,
    /// Happens-before violations the oracle flagged.
    pub violations: u64,
    /// Backend-internal sanity violations (non-monotonic versions,
    /// out-of-order retires).
    pub sanity_violations: u64,
    /// In-band ordering packets merged at the controllers (OrderLight
    /// packets or Louvre versioned releases).
    pub packets: u64,
    /// Fence probe/ack round trips serviced by the controllers.
    pub fence_acks: u64,
    /// Credit responses returned on the response path (SeqNum only).
    pub credits: u64,
    /// Total in-band ordering metadata moved, in bits: packets and
    /// probes at [`PACKET_BITS`], credits at [`CREDIT_BITS`].
    /// BulkBitwiseStrong scores zero — its epochs live entirely in
    /// controller state.
    pub metadata_bits: u64,
}

/// Runs `workload` under every backend in [`COMPARE_BACKENDS`] on the
/// given core with the oracle attached, and returns one record per
/// backend, baseline first.
///
/// # Errors
/// Returns [`SimError`] if any leg fails to build or exhausts its
/// budget.
pub fn compare_backends(
    workload: WorkloadId,
    data_kb: u64,
    core: SimCore,
) -> Result<Vec<BackendRecord>, SimError> {
    let mut records = Vec::with_capacity(COMPARE_BACKENDS.len());
    let mut baseline_cycles = None;
    for mode in COMPARE_BACKENDS {
        let scenario = ScenarioBuilder::new(workload, ExecMode::Pim(mode))
            .data_kb(data_kb)
            .core(core)
            .build()
            .map_err(|e| SimError::config(e.to_string()))?;
        let outcome = check_scenario(&scenario)?;
        let stats = &outcome.stats;
        let cycles = stats.core_cycles;
        let baseline = *baseline_cycles.get_or_insert(cycles);
        let credits = if mode == OrderingMode::SeqNum { stats.sm.pim_issued } else { 0 };
        let metadata_bits =
            (stats.mc.ol_packets + stats.mc.fence_acks) * PACKET_BITS + credits * CREDIT_BITS;
        records.push(BackendRecord {
            ordering: mode,
            core_cycles: cycles,
            exec_time_ms: stats.exec_time_ms,
            speedup_vs_fence: baseline as f64 / cycles as f64,
            clean: outcome.is_clean(),
            violations: outcome.report.violations_total,
            sanity_violations: stats.mc.sanity_violations,
            packets: stats.mc.ol_packets,
            fence_acks: stats.mc.fence_acks,
            credits,
            metadata_bits,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_all_backends_and_is_clean() {
        let records = compare_backends(WorkloadId::Add, 8, SimCore::Event).unwrap();
        assert_eq!(records.len(), COMPARE_BACKENDS.len());
        assert_eq!(records[0].ordering, OrderingMode::Fence);
        assert!((records[0].speedup_vs_fence - 1.0).abs() < f64::EPSILON);
        for r in &records {
            assert!(r.clean, "{}: comparison legs must be violation-free", r.ordering);
            assert_eq!(r.violations, 0);
            assert!(r.core_cycles > 0);
        }
        // The metadata accounting must reflect each backend's actual
        // mechanism: packets for OrderLight/Louvre, probes for Fence,
        // credits for SeqNum, nothing in-band for BulkBitwiseStrong.
        let by = |m: OrderingMode| records.iter().find(|r| r.ordering == m).unwrap();
        assert!(by(OrderingMode::OrderLight).packets > 0);
        assert!(by(OrderingMode::LouvreVersioned).packets > 0);
        assert!(by(OrderingMode::Fence).fence_acks > 0);
        assert!(by(OrderingMode::SeqNum).credits > 0);
        let bulk = by(OrderingMode::BulkBitwiseStrong);
        assert_eq!(bulk.metadata_bits, 0, "bulk keeps ordering state out of band");
    }
}
