//! # Ordering-violation oracle and fault-injection checking
//!
//! Dynamic verification for the OrderLight reproduction, in two halves:
//!
//! * [`OrderingOracle`] — a passive [`orderlight_trace::TraceSink`]
//!   that reconstructs, per memory controller, the happens-before
//!   relation implied by OrderLight packets and fence probes, and flags
//!   every column command issued against an unsatisfied ordering edge.
//!   It is pure observation: attaching it changes no simulated cycle.
//! * [`check_scenario`] — the packaged harness: builds a
//!   [`orderlight_sim::Scenario`] (including its deterministic
//!   [`orderlight::FaultPlan`] perturbations), runs it with the oracle
//!   attached, and cross-checks the final DRAM image against the
//!   sequential golden model.
//!
//! The oracle's happens-before rule is *ingress-keyed*: an OrderLight
//! packet arriving at a controller snapshots the set of outstanding
//! same-group requests (enqueued, column command not yet issued). Any
//! request from outside that snapshot that issues while the snapshot is
//! non-empty overtook the packet — a violated edge. The rule is exact
//! because the channel's request path is FIFO: requests that are
//! logically before a packet also arrive before it.
//!
//! ```
//! use orderlight_check::check_scenario;
//! use orderlight_sim::ScenarioBuilder;
//! use orderlight_sim::config::ExecMode;
//! use orderlight_workloads::{OrderingMode, WorkloadId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario =
//!     ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight))
//!         .data_kb(8) // keep the doctest fast
//!         .build()?;
//! let outcome = check_scenario(&scenario)?;
//! assert!(outcome.is_clean(), "{}", outcome.report.summary());
//! # Ok(())
//! # }
//! ```

pub mod compare;
pub mod oracle;
pub mod runner;

pub use compare::{compare_backends, BackendRecord, COMPARE_BACKENDS};
pub use oracle::{CheckReport, OrderingOracle, Violation, ViolationKind};
pub use runner::{check_scenario, CheckOutcome};
