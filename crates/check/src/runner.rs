//! The packaged check harness: run a scenario with the oracle attached
//! and cross-check the final DRAM image.

use crate::oracle::{CheckReport, OrderingOracle};
use orderlight_sim::system::SimError;
use orderlight_sim::{RunStats, Scenario};
use std::sync::Arc;

/// Everything a checked run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The run's statistics, including the DRAM-image cross-check
    /// against the sequential golden model
    /// (`verified_matches` / `verified_mismatches`).
    pub stats: RunStats,
    /// The oracle's happens-before verdict.
    pub report: CheckReport,
    /// Ordering edges elided by a drop-edge mutation (zero unless the
    /// scenario's fault plan asked for one).
    pub edges_dropped: u64,
}

impl CheckOutcome {
    /// Whether the run was clean on all three axes: no happens-before
    /// edge violated, every output byte matching the golden model, and
    /// no backend-internal sanity violation (non-monotonic packet
    /// numbers, out-of-order retires).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.stats.is_correct() && self.stats.mc.sanity_violations == 0
    }

    /// One-line human summary covering all axes.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}; dram bytes: {} ok / {} wrong; {} backend sanity violation(s){}",
            self.report.summary(),
            self.stats.verified_matches,
            self.stats.verified_mismatches,
            self.stats.mc.sanity_violations,
            if self.edges_dropped > 0 {
                format!(" (mutation elided {} ordering edge(s))", self.edges_dropped)
            } else {
                String::new()
            }
        )
    }
}

/// Runs `scenario` with an [`OrderingOracle`] observing every memory
/// controller, on the scenario's resolved execution core, and returns
/// the combined verdict. The oracle rides the observer path
/// ([`orderlight_sim::System::attach_observer`]), so the event core
/// stays usable; a scenario-level trace sink, if any, is superseded at
/// the controllers for the duration of the check.
///
/// # Errors
/// Returns [`SimError`] on build failure or budget exhaustion.
pub fn check_scenario(scenario: &Scenario) -> Result<CheckOutcome, SimError> {
    // The SeqNum backend promises per-warp in-order issue instead of
    // in-band barriers; opt the oracle into the matching discipline.
    let seq_mode = matches!(
        scenario.experiment().mode,
        orderlight_sim::config::ExecMode::Pim(orderlight_workloads::OrderingMode::SeqNum)
    );
    let oracle =
        Arc::new(if seq_mode { OrderingOracle::with_seq_check() } else { OrderingOracle::new() });
    let mut sys = scenario.system()?;
    sys.attach_observer(oracle.clone());
    let stats = sys.run_with(scenario.budget(), scenario.core())?;
    let edges_dropped = sys.ordering_edges_dropped();
    Ok(CheckOutcome { stats, report: oracle.report(), edges_dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::fault::{DropEdge, FaultPlan};
    use orderlight_sim::config::ExecMode;
    use orderlight_sim::ScenarioBuilder;
    use orderlight_workloads::{OrderingMode, WorkloadId};

    fn small(mode: OrderingMode) -> ScenarioBuilder {
        ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(mode)).data_kb(8)
    }

    #[test]
    fn clean_orderlight_run_has_no_violations() {
        let outcome = check_scenario(&small(OrderingMode::OrderLight).build().unwrap()).unwrap();
        assert!(outcome.is_clean(), "{}", outcome.summary());
        assert!(outcome.report.packets > 0, "oracle must have seen packets");
        assert!(outcome.report.reqs_issued > 0);
        assert_eq!(outcome.edges_dropped, 0);
    }

    #[test]
    fn mutant_run_fires_the_oracle() {
        let plan =
            FaultPlan { drop_edge: Some(DropEdge { channel: 0, group: 0 }), ..FaultPlan::none() };
        let outcome =
            check_scenario(&small(OrderingMode::OrderLight).faults(plan).build().unwrap()).unwrap();
        assert!(outcome.edges_dropped > 0, "mutation must have elided edges");
        assert!(
            !outcome.report.is_clean(),
            "oracle must flag the elided edges: {}",
            outcome.summary()
        );
    }
}
