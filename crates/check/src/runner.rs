//! The packaged check harness: run a scenario with the oracle attached
//! and cross-check the final DRAM image.

use crate::oracle::{CheckReport, OrderingOracle};
use orderlight_sim::system::SimError;
use orderlight_sim::{RunStats, Scenario};
use std::sync::Arc;

/// Everything a checked run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The run's statistics, including the DRAM-image cross-check
    /// against the sequential golden model
    /// (`verified_matches` / `verified_mismatches`).
    pub stats: RunStats,
    /// The oracle's happens-before verdict.
    pub report: CheckReport,
    /// Ordering edges elided by a drop-edge mutation (zero unless the
    /// scenario's fault plan asked for one).
    pub edges_dropped: u64,
}

impl CheckOutcome {
    /// Whether the run was clean on both axes: no happens-before edge
    /// violated and every output byte matching the golden model.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.report.is_clean() && self.stats.is_correct()
    }

    /// One-line human summary covering both axes.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}; dram bytes: {} ok / {} wrong{}",
            self.report.summary(),
            self.stats.verified_matches,
            self.stats.verified_mismatches,
            if self.edges_dropped > 0 {
                format!(" (mutation elided {} ordering edge(s))", self.edges_dropped)
            } else {
                String::new()
            }
        )
    }
}

/// Runs `scenario` with an [`OrderingOracle`] observing every memory
/// controller, on the scenario's resolved execution core, and returns
/// the combined verdict. The oracle rides the observer path
/// ([`orderlight_sim::System::attach_observer`]), so the event core
/// stays usable; a scenario-level trace sink, if any, is superseded at
/// the controllers for the duration of the check.
///
/// # Errors
/// Returns [`SimError`] on build failure or budget exhaustion.
pub fn check_scenario(scenario: &Scenario) -> Result<CheckOutcome, SimError> {
    let oracle = Arc::new(OrderingOracle::new());
    let mut sys = scenario.system()?;
    sys.attach_observer(oracle.clone());
    let stats = sys.run_with(scenario.budget(), scenario.core())?;
    let edges_dropped = sys.ordering_edges_dropped();
    Ok(CheckOutcome { stats, report: oracle.report(), edges_dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::fault::{DropEdge, FaultPlan};
    use orderlight_sim::config::ExecMode;
    use orderlight_sim::ScenarioBuilder;
    use orderlight_workloads::{OrderingMode, WorkloadId};

    fn small(mode: OrderingMode) -> ScenarioBuilder {
        ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(mode)).data_kb(8)
    }

    #[test]
    fn clean_orderlight_run_has_no_violations() {
        let outcome = check_scenario(&small(OrderingMode::OrderLight).build().unwrap()).unwrap();
        assert!(outcome.is_clean(), "{}", outcome.summary());
        assert!(outcome.report.packets > 0, "oracle must have seen packets");
        assert!(outcome.report.reqs_issued > 0);
        assert_eq!(outcome.edges_dropped, 0);
    }

    #[test]
    fn mutant_run_fires_the_oracle() {
        let plan =
            FaultPlan { drop_edge: Some(DropEdge { channel: 0, group: 0 }), ..FaultPlan::none() };
        let outcome =
            check_scenario(&small(OrderingMode::OrderLight).faults(plan).build().unwrap()).unwrap();
        assert!(outcome.edges_dropped > 0, "mutation must have elided edges");
        assert!(
            !outcome.report.is_clean(),
            "oracle must flag the elided edges: {}",
            outcome.summary()
        );
    }
}
