//! Aggregated run metrics — the paper's evaluation vocabulary.

use orderlight_gpu::SmStats;
use orderlight_memctrl::McStats;

/// The result of one simulated run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Core cycles until every warp retired and the memory system
    /// drained.
    pub core_cycles: u64,
    /// Wall-clock execution time in milliseconds at the core frequency.
    pub exec_time_ms: f64,
    /// Aggregated SM counters (stalls, issued instructions).
    pub sm: SmStats,
    /// Aggregated memory-controller counters.
    pub mc: McStats,
    /// PIM-internal data moved, already scaled by the bandwidth
    /// multiplication factor.
    pub pim_data_bytes: u64,
    /// PIM command bandwidth in GigaCommands/s (paper Section 6's
    /// "Evaluation Metrics").
    pub command_bandwidth_gcs: f64,
    /// PIM data bandwidth in GB/s.
    pub data_bandwidth_gbs: f64,
    /// Ordering primitives issued per PIM instruction (the line plot of
    /// Figure 12).
    pub primitives_per_pim_instr: f64,
    /// Stripes whose final memory contents matched the golden model.
    pub verified_matches: u64,
    /// Stripes that mismatched (non-zero means functionally incorrect).
    pub verified_mismatches: u64,
}

impl RunStats {
    /// Whether the run produced bit-correct results.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.verified_mismatches == 0 && self.verified_matches > 0
    }

    /// Total core stall cycles (the bars of Figure 10b's secondary
    /// axis).
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.sm.total_stalls()
    }

    /// Mean fence wait in core cycles per fence instruction (Figure 5's
    /// secondary axis).
    #[must_use]
    pub fn wait_cycles_per_fence(&self) -> f64 {
        if self.sm.fences == 0 {
            0.0
        } else {
            self.sm.fence_stall_cycles as f64 / self.sm.fences as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RunStats {
        RunStats {
            core_cycles: 1_200_000,
            exec_time_ms: 1.0,
            sm: SmStats { fences: 10, fence_stall_cycles: 2000, ..SmStats::default() },
            mc: McStats::default(),
            pim_data_bytes: 0,
            command_bandwidth_gcs: 0.0,
            data_bandwidth_gbs: 0.0,
            primitives_per_pim_instr: 0.0,
            verified_matches: 100,
            verified_mismatches: 0,
        }
    }

    #[test]
    fn correctness_predicate() {
        let s = stats();
        assert!(s.is_correct());
        let bad = RunStats { verified_mismatches: 1, ..s };
        assert!(!bad.is_correct());
        let empty = RunStats { verified_matches: 0, ..s };
        assert!(!empty.is_correct(), "no output checked is not a pass");
    }

    #[test]
    fn per_fence_wait() {
        let s = stats();
        assert!((s.wait_cycles_per_fence() - 200.0).abs() < f64::EPSILON);
        let none = RunStats { sm: SmStats::default(), ..s };
        assert_eq!(none.wait_cycles_per_fence(), 0.0);
    }
}
