//! The versioned wire-level scenario schema — `orderlight/scenario/v1`.
//!
//! [`crate::scenario::ScenarioBuilder`] is the typed in-process front
//! door; this module makes that surface a **stable public API**: a JSON
//! document tagged `"schema": "orderlight/scenario/v1"` describes one
//! run, [`ScenarioSpec`] parses and validates it with *typed* errors
//! (a missing version tag, an unsupported version, an unknown field and
//! a malformed value are all distinct [`SchemaError`] variants — never
//! silently ignored), and [`ScenarioSpec::to_value`] re-serialises the
//! canonical form. The `orderlight serve` daemon accepts exactly this
//! document over the wire, `orderlight submit` emits it, and
//! `orderlight schema` prints [`schema_document`] so clients can
//! discover the accepted fields without reading the source.
//!
//! Versioning policy: v1 fields are frozen. New optional fields arrive
//! only with a new version tag (`orderlight/scenario/v2`), and a server
//! rejects versions it does not know — an unknown field today is an
//! error, not a forward-compatibility hole, so a typo'd knob can never
//! silently fall back to a default.
//!
//! ```
//! use orderlight_sim::schema::ScenarioSpec;
//!
//! let spec = ScenarioSpec::parse_str(
//!     r#"{"schema": "orderlight/scenario/v1", "workload": "Add",
//!         "mode": "orderlight", "ts": 8, "data_kb": 8}"#,
//! )
//! .unwrap();
//! assert_eq!(spec.data_bytes_per_channel, 8 * 1024);
//! let scenario = spec.build().unwrap();
//! assert!(scenario.run().unwrap().is_correct());
//! ```

use crate::config::ExecMode;
use crate::scenario::{Scenario, ScenarioBuilder};
use crate::stats::RunStats;
use orderlight::ConfigError;
use orderlight_pim::TsSize;
use orderlight_trace::json::Value;
use orderlight_workloads::{OrderingMode, WorkloadId};
use std::collections::BTreeMap;
use std::fmt;

/// The schema tag every v1 scenario document must carry.
pub const SCENARIO_SCHEMA_V1: &str = "orderlight/scenario/v1";

/// Every field the v1 parser accepts, in canonical order. The
/// rejection tests and [`schema_document`] are generated from this
/// table so the printed schema can never drift from the parser.
pub const SCENARIO_FIELDS_V1: [(&str, &str, &str); 9] = [
    ("schema", "string", "required; must be \"orderlight/scenario/v1\""),
    ("workload", "string", "required; a Table 2 kernel name (case-insensitive), e.g. \"Add\""),
    (
        "mode",
        "string",
        "optional (default \"orderlight\"): gpu|none|fence|orderlight|seqnum|louvre|bulk",
    ),
    (
        "ts",
        "number or string",
        "optional (default 8): PIM TS size as a row-buffer-fraction denominator, 16|8|4|2",
    ),
    ("bmf", "number", "optional (default 16): bandwidth multiplication factor, >= 1"),
    (
        "data_kb",
        "number",
        "optional (default 256): KiB per data structure per channel; exclusive with data_bytes",
    ),
    (
        "data_bytes",
        "number",
        "optional: bytes per data structure per channel; exclusive with data_kb",
    ),
    ("credits", "number", "optional (default 32): per-warp buffer credits for the seqnum baseline"),
    (
        "budget",
        "number",
        "optional: cycle budget override (default: generous per-stripe allowance)",
    ),
];

/// A typed schema violation. Every way a scenario document can be
/// rejected is a distinct variant, so the service layer can reply with
/// a machine-readable error kind and tests can assert the exact
/// failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The document is not a JSON object.
    NotAnObject,
    /// The `schema` version tag is absent.
    MissingVersion,
    /// The `schema` tag names a version this parser does not speak.
    UnsupportedVersion(String),
    /// A field the v1 schema does not define.
    UnknownField(String),
    /// A field the v1 schema requires is absent.
    MissingField(&'static str),
    /// A defined field carries a value outside its domain.
    BadValue {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::NotAnObject => write!(f, "scenario document must be a JSON object"),
            SchemaError::MissingVersion => {
                write!(
                    f,
                    "missing schema version tag (expected \"schema\": \"{SCENARIO_SCHEMA_V1}\")"
                )
            }
            SchemaError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported schema version '{v}' (this server speaks {SCENARIO_SCHEMA_V1})"
                )
            }
            SchemaError::UnknownField(name) => {
                write!(f, "unknown field '{name}' (v1 fields: {})", field_names().join(", "))
            }
            SchemaError::MissingField(name) => write!(f, "missing required field '{name}'"),
            SchemaError::BadValue { field, message } => {
                write!(f, "bad value for '{field}': {message}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

fn field_names() -> Vec<&'static str> {
    SCENARIO_FIELDS_V1.iter().map(|(n, ..)| *n).collect()
}

/// Parses a workload name (case-insensitive match against the Table 2
/// kernel registry). Shared by the wire schema and every CLI.
#[must_use]
pub fn parse_workload(name: &str) -> Option<WorkloadId> {
    WorkloadId::ALL.into_iter().find(|w| w.meta().name.eq_ignore_ascii_case(name))
}

/// Parses an execution-mode name (`gpu`, `none`, `fence`,
/// `orderlight`/`ol`, `seqnum`, `louvre`, `bulk`). Shared by the wire
/// schema and every CLI.
#[must_use]
pub fn parse_mode(name: &str) -> Option<ExecMode> {
    match name.to_ascii_lowercase().as_str() {
        "gpu" => Some(ExecMode::Gpu),
        "none" => Some(ExecMode::Pim(OrderingMode::None)),
        "fence" => Some(ExecMode::Pim(OrderingMode::Fence)),
        "orderlight" | "ol" => Some(ExecMode::Pim(OrderingMode::OrderLight)),
        "seqnum" => Some(ExecMode::Pim(OrderingMode::SeqNum)),
        "louvre" => Some(ExecMode::Pim(OrderingMode::LouvreVersioned)),
        "bulk" => Some(ExecMode::Pim(OrderingMode::BulkBitwiseStrong)),
        _ => None,
    }
}

/// The wire spelling of an execution mode, as accepted by
/// [`parse_mode`].
#[must_use]
pub fn mode_wire_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Gpu => "gpu",
        ExecMode::Pim(OrderingMode::None) => "none",
        ExecMode::Pim(OrderingMode::Fence) => "fence",
        ExecMode::Pim(OrderingMode::OrderLight) => "orderlight",
        ExecMode::Pim(OrderingMode::SeqNum) => "seqnum",
        ExecMode::Pim(OrderingMode::LouvreVersioned) => "louvre",
        ExecMode::Pim(OrderingMode::BulkBitwiseStrong) => "bulk",
    }
}

/// Parses a TS size given as a row-buffer-fraction denominator
/// (`"16"`, `"8"`, `"4"`, `"2"`). Shared by the wire schema and every
/// CLI.
#[must_use]
pub fn parse_ts(denom: &str) -> Option<TsSize> {
    match denom {
        "16" => Some(TsSize::Sixteenth),
        "8" => Some(TsSize::Eighth),
        "4" => Some(TsSize::Quarter),
        "2" => Some(TsSize::Half),
        _ => None,
    }
}

/// One fully parsed `orderlight/scenario/v1` document — the semantic
/// content of a wire request, with every default resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Which Table 2 kernel runs.
    pub workload: WorkloadId,
    /// Execution mode (GPU baseline or PIM under an ordering
    /// primitive).
    pub mode: ExecMode,
    /// PIM temporary-storage size.
    pub ts: TsSize,
    /// Bandwidth multiplication factor.
    pub bmf: u32,
    /// Bytes per data structure per channel.
    pub data_bytes_per_channel: u64,
    /// Per-warp buffer credits for the sequence-number baseline.
    pub seq_credits: u32,
    /// Cycle-budget override (`None`: the scenario default).
    pub budget: Option<u64>,
}

impl ScenarioSpec {
    /// The v1 defaults with `workload` filled in — what a minimal
    /// `{"schema": ..., "workload": ...}` document parses to.
    #[must_use]
    pub fn new(workload: WorkloadId) -> Self {
        ScenarioSpec {
            workload,
            mode: ExecMode::Pim(OrderingMode::OrderLight),
            ts: TsSize::Eighth,
            bmf: 16,
            data_bytes_per_channel: 256 * 1024,
            seq_credits: 32,
            budget: None,
        }
    }

    /// Parses a v1 document from JSON text.
    ///
    /// # Errors
    /// [`SchemaError::BadValue`] on malformed JSON (field `schema`
    /// carries the parse message), else as [`ScenarioSpec::from_value`].
    pub fn parse_str(text: &str) -> Result<Self, SchemaError> {
        let doc = orderlight_trace::json::parse(text).map_err(|e| SchemaError::BadValue {
            field: "schema",
            message: format!("document does not parse: {e}"),
        })?;
        Self::from_value(&doc)
    }

    /// Parses a v1 document from an already-parsed JSON value. The
    /// version tag is checked first, then every present field is
    /// matched against the v1 field table — an unknown field is a hard
    /// error.
    ///
    /// # Errors
    /// A typed [`SchemaError`] naming exactly what was rejected.
    pub fn from_value(doc: &Value) -> Result<Self, SchemaError> {
        let Value::Obj(map) = doc else {
            return Err(SchemaError::NotAnObject);
        };
        match map.get("schema") {
            None => return Err(SchemaError::MissingVersion),
            Some(Value::Str(v)) if v == SCENARIO_SCHEMA_V1 => {}
            Some(Value::Str(v)) => return Err(SchemaError::UnsupportedVersion(v.clone())),
            Some(other) => {
                return Err(SchemaError::BadValue {
                    field: "schema",
                    message: format!("expected a string, got {other:?}"),
                })
            }
        }
        for key in map.keys() {
            if !field_names().contains(&key.as_str()) {
                return Err(SchemaError::UnknownField(key.clone()));
            }
        }

        let workload = match map.get("workload") {
            None => return Err(SchemaError::MissingField("workload")),
            Some(Value::Str(name)) => {
                parse_workload(name).ok_or_else(|| SchemaError::BadValue {
                    field: "workload",
                    message: format!("unknown workload '{name}'"),
                })?
            }
            Some(other) => {
                return Err(SchemaError::BadValue {
                    field: "workload",
                    message: format!("expected a string, got {other:?}"),
                })
            }
        };
        let mut spec = ScenarioSpec::new(workload);

        if let Some(v) = map.get("mode") {
            let name = v.as_str().ok_or_else(|| SchemaError::BadValue {
                field: "mode",
                message: format!("expected a string, got {v:?}"),
            })?;
            spec.mode = parse_mode(name).ok_or_else(|| SchemaError::BadValue {
                field: "mode",
                message: format!("unknown mode '{name}'"),
            })?;
        }
        if let Some(v) = map.get("ts") {
            let denom = match v {
                Value::Str(s) => s.clone(),
                Value::Num(_) => format!("{}", uint_field(v, "ts")?),
                other => {
                    return Err(SchemaError::BadValue {
                        field: "ts",
                        message: format!("expected 16|8|4|2, got {other:?}"),
                    })
                }
            };
            spec.ts = parse_ts(&denom).ok_or_else(|| SchemaError::BadValue {
                field: "ts",
                message: format!("expected 16|8|4|2, got '{denom}'"),
            })?;
        }
        if let Some(v) = map.get("bmf") {
            spec.bmf = u32::try_from(uint_field(v, "bmf")?).map_err(|_| SchemaError::BadValue {
                field: "bmf",
                message: "exceeds u32".to_string(),
            })?;
        }
        match (map.get("data_kb"), map.get("data_bytes")) {
            (Some(_), Some(_)) => {
                return Err(SchemaError::BadValue {
                    field: "data_kb",
                    message: "data_kb and data_bytes are mutually exclusive".to_string(),
                })
            }
            (Some(v), None) => spec.data_bytes_per_channel = uint_field(v, "data_kb")? * 1024,
            (None, Some(v)) => spec.data_bytes_per_channel = uint_field(v, "data_bytes")?,
            (None, None) => {}
        }
        if let Some(v) = map.get("credits") {
            spec.seq_credits = u32::try_from(uint_field(v, "credits")?).map_err(|_| {
                SchemaError::BadValue { field: "credits", message: "exceeds u32".to_string() }
            })?;
        }
        if let Some(v) = map.get("budget") {
            spec.budget = Some(uint_field(v, "budget")?);
        }
        Ok(spec)
    }

    /// The canonical v1 serialisation of this spec (schema tag
    /// included, every field explicit, `data_bytes` spelling). Two
    /// semantically equal specs serialise to identical bytes.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("schema".to_string(), Value::Str(SCENARIO_SCHEMA_V1.to_string()));
        map.insert("workload".to_string(), Value::Str(self.workload.meta().name.to_string()));
        map.insert("mode".to_string(), Value::Str(mode_wire_name(self.mode).to_string()));
        map.insert("ts".to_string(), Value::Num(self.ts.denominator() as f64));
        map.insert("bmf".to_string(), Value::Num(f64::from(self.bmf)));
        #[allow(clippy::cast_precision_loss)]
        map.insert("data_bytes".to_string(), Value::Num(self.data_bytes_per_channel as f64));
        map.insert("credits".to_string(), Value::Num(f64::from(self.seq_credits)));
        if let Some(budget) = self.budget {
            #[allow(clippy::cast_precision_loss)]
            map.insert("budget".to_string(), Value::Num(budget as f64));
        }
        Value::Obj(map)
    }

    /// The [`ScenarioBuilder`] this spec configures — the bridge from
    /// the wire surface to the typed in-process surface.
    #[must_use]
    pub fn builder(&self) -> ScenarioBuilder {
        let b = ScenarioBuilder::new(self.workload, self.mode)
            .ts_size(self.ts)
            .bmf(self.bmf)
            .data_bytes_per_channel(self.data_bytes_per_channel)
            .seq_credits(self.seq_credits);
        match self.budget {
            Some(budget) => b.budget(budget),
            None => b,
        }
    }

    /// Builds the validated [`Scenario`].
    ///
    /// # Errors
    /// Returns [`ConfigError`] when the assembled experiment is
    /// inconsistent (e.g. `bmf: 0`).
    pub fn build(&self) -> Result<Scenario, ConfigError> {
        self.builder().build()
    }
}

/// Extracts a non-negative integer field, rejecting negatives,
/// fractions and non-numbers with a typed error.
fn uint_field(v: &Value, field: &'static str) -> Result<u64, SchemaError> {
    let bad = |message: String| SchemaError::BadValue { field, message };
    let n = v.as_f64().ok_or_else(|| bad(format!("expected a number, got {v:?}")))?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9.0e15) {
        return Err(bad(format!("expected a non-negative integer, got {n}")));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(n as u64)
}

/// The human- and machine-readable description of the accepted v1
/// schema, printed by `orderlight schema`: one entry per field with its
/// type and constraints, plus the workload and mode vocabularies.
#[must_use]
pub fn schema_document() -> String {
    let mut fields = BTreeMap::new();
    for (name, ty, doc) in SCENARIO_FIELDS_V1 {
        let mut entry = BTreeMap::new();
        entry.insert("type".to_string(), Value::Str(ty.to_string()));
        entry.insert("doc".to_string(), Value::Str(doc.to_string()));
        fields.insert(name.to_string(), Value::Obj(entry));
    }
    let workloads =
        WorkloadId::ALL.into_iter().map(|w| Value::Str(w.meta().name.to_string())).collect();
    let modes = ["gpu", "none", "fence", "orderlight", "seqnum", "louvre", "bulk"]
        .into_iter()
        .map(|m| Value::Str(m.to_string()))
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("schema".to_string(), Value::Str(SCENARIO_SCHEMA_V1.to_string()));
    doc.insert("fields".to_string(), Value::Obj(fields));
    doc.insert("workloads".to_string(), Value::Arr(workloads));
    doc.insert("modes".to_string(), Value::Arr(modes));
    doc.insert(
        "policy".to_string(),
        Value::Str(
            "unknown fields and missing/unsupported versions are rejected; \
             new fields only arrive with a new version tag"
                .to_string(),
        ),
    );
    let mut out = Value::Obj(doc).to_json();
    out.push('\n');
    out
}

/// Serialises a [`RunStats`] into a JSON value covering **every**
/// counter, so a service reply carries the same information as an
/// in-process run. Serialised through the canonical writer, two equal
/// `RunStats` always produce identical bytes — the property the
/// `ci.sh` smoke gate checks with `cmp`.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn stats_to_value(stats: &RunStats) -> Value {
    let num = |v: u64| Value::Num(v as f64);
    let mut sm = BTreeMap::new();
    sm.insert("issued".to_string(), num(stats.sm.issued));
    sm.insert("pim_issued".to_string(), num(stats.sm.pim_issued));
    sm.insert("loads".to_string(), num(stats.sm.loads));
    sm.insert("stores".to_string(), num(stats.sm.stores));
    sm.insert("computes".to_string(), num(stats.sm.computes));
    sm.insert("fences".to_string(), num(stats.sm.fences));
    sm.insert("orderlights".to_string(), num(stats.sm.orderlights));
    sm.insert("fence_stall_cycles".to_string(), num(stats.sm.fence_stall_cycles));
    sm.insert("ol_wait_cycles".to_string(), num(stats.sm.ol_wait_cycles));
    sm.insert("reg_wait_cycles".to_string(), num(stats.sm.reg_wait_cycles));
    sm.insert("structural_stall_cycles".to_string(), num(stats.sm.structural_stall_cycles));
    sm.insert("credit_wait_cycles".to_string(), num(stats.sm.credit_wait_cycles));
    let mut mc = BTreeMap::new();
    mc.insert("pim_commands".to_string(), num(stats.mc.pim_commands));
    mc.insert("activates".to_string(), num(stats.mc.activates));
    mc.insert("precharges".to_string(), num(stats.mc.precharges));
    mc.insert("col_reads".to_string(), num(stats.mc.col_reads));
    mc.insert("col_writes".to_string(), num(stats.mc.col_writes));
    mc.insert("exec_commands".to_string(), num(stats.mc.exec_commands));
    mc.insert("host_reads".to_string(), num(stats.mc.host_reads));
    mc.insert("host_writes".to_string(), num(stats.mc.host_writes));
    mc.insert("fence_acks".to_string(), num(stats.mc.fence_acks));
    mc.insert("ol_packets".to_string(), num(stats.mc.ol_packets));
    mc.insert("sanity_violations".to_string(), num(stats.mc.sanity_violations));
    mc.insert("last_issue_cycle".to_string(), num(stats.mc.last_issue_cycle));
    mc.insert("host_read_latency_sum".to_string(), num(stats.mc.host_read_latency_sum));
    let mut map = BTreeMap::new();
    map.insert("core_cycles".to_string(), num(stats.core_cycles));
    map.insert("exec_time_ms".to_string(), Value::Num(stats.exec_time_ms));
    map.insert("sm".to_string(), Value::Obj(sm));
    map.insert("mc".to_string(), Value::Obj(mc));
    map.insert("pim_data_bytes".to_string(), num(stats.pim_data_bytes));
    map.insert("command_bandwidth_gcs".to_string(), Value::Num(stats.command_bandwidth_gcs));
    map.insert("data_bandwidth_gbs".to_string(), Value::Num(stats.data_bandwidth_gbs));
    map.insert("primitives_per_pim_instr".to_string(), Value::Num(stats.primitives_per_pim_instr));
    map.insert("verified_matches".to_string(), num(stats.verified_matches));
    map.insert("verified_mismatches".to_string(), num(stats.verified_mismatches));
    Value::Obj(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        format!("{{\"schema\": \"{SCENARIO_SCHEMA_V1}\", \"workload\": \"Add\"}}")
    }

    #[test]
    fn minimal_document_parses_to_defaults() {
        let spec = ScenarioSpec::parse_str(&minimal()).unwrap();
        assert_eq!(spec, ScenarioSpec::new(WorkloadId::Add));
        assert_eq!(spec.mode, ExecMode::Pim(OrderingMode::OrderLight));
        assert_eq!(spec.data_bytes_per_channel, 256 * 1024);
        assert_eq!(spec.budget, None);
    }

    #[test]
    fn full_document_round_trips_canonically() {
        let text = format!(
            "{{\"schema\": \"{SCENARIO_SCHEMA_V1}\", \"workload\": \"kmeans\", \
             \"mode\": \"fence\", \"ts\": \"2\", \"bmf\": 4, \"data_kb\": 64, \
             \"credits\": 8, \"budget\": 1000000}}"
        );
        let spec = ScenarioSpec::parse_str(&text).unwrap();
        assert_eq!(spec.workload, WorkloadId::Kmeans);
        assert_eq!(spec.mode, ExecMode::Pim(OrderingMode::Fence));
        assert_eq!(spec.ts, TsSize::Half);
        assert_eq!(spec.data_bytes_per_channel, 64 * 1024);
        assert_eq!(spec.budget, Some(1_000_000));
        // canonical form re-parses to the same spec, byte-stably.
        let canon = spec.to_value().to_json();
        let again = ScenarioSpec::parse_str(&canon).unwrap();
        assert_eq!(again, spec);
        assert_eq!(again.to_value().to_json(), canon);
    }

    #[test]
    fn ts_accepts_number_and_string_spellings() {
        for ts in ["\"ts\": 16", "\"ts\": \"16\""] {
            let text =
                format!("{{\"schema\": \"{SCENARIO_SCHEMA_V1}\", \"workload\": \"Add\", {ts}}}");
            assert_eq!(ScenarioSpec::parse_str(&text).unwrap().ts, TsSize::Sixteenth, "{ts}");
        }
    }

    #[test]
    fn missing_version_is_a_typed_error() {
        let err = ScenarioSpec::parse_str("{\"workload\": \"Add\"}").unwrap_err();
        assert_eq!(err, SchemaError::MissingVersion);
    }

    #[test]
    fn unsupported_version_is_a_typed_error() {
        let err = ScenarioSpec::parse_str(
            "{\"schema\": \"orderlight/scenario/v99\", \"workload\": \"Add\"}",
        )
        .unwrap_err();
        assert_eq!(err, SchemaError::UnsupportedVersion("orderlight/scenario/v99".to_string()));
    }

    #[test]
    fn unknown_field_is_rejected_by_name() {
        let text = format!(
            "{{\"schema\": \"{SCENARIO_SCHEMA_V1}\", \"workload\": \"Add\", \"data_kib\": 8}}"
        );
        let err = ScenarioSpec::parse_str(&text).unwrap_err();
        assert_eq!(err, SchemaError::UnknownField("data_kib".to_string()));
    }

    #[test]
    fn missing_workload_and_bad_values_are_typed() {
        let err = ScenarioSpec::parse_str(&format!("{{\"schema\": \"{SCENARIO_SCHEMA_V1}\"}}"))
            .unwrap_err();
        assert_eq!(err, SchemaError::MissingField("workload"));
        for (frag, field) in [
            ("\"workload\": \"NoSuchKernel\"", "workload"),
            ("\"workload\": \"Add\", \"mode\": \"strict\"", "mode"),
            ("\"workload\": \"Add\", \"ts\": 3", "ts"),
            ("\"workload\": \"Add\", \"bmf\": -1", "bmf"),
            ("\"workload\": \"Add\", \"data_kb\": 1.5", "data_kb"),
            ("\"workload\": \"Add\", \"data_kb\": 1, \"data_bytes\": 32", "data_kb"),
        ] {
            let text = format!("{{\"schema\": \"{SCENARIO_SCHEMA_V1}\", {frag}}}");
            match ScenarioSpec::parse_str(&text).unwrap_err() {
                SchemaError::BadValue { field: f, .. } => assert_eq!(f, field, "{frag}"),
                other => panic!("{frag}: expected BadValue, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_object_is_rejected() {
        assert_eq!(ScenarioSpec::parse_str("[1,2]").unwrap_err(), SchemaError::NotAnObject);
        assert!(matches!(
            ScenarioSpec::parse_str("{nope").unwrap_err(),
            SchemaError::BadValue { .. }
        ));
    }

    #[test]
    fn schema_document_names_every_parser_field() {
        let doc = orderlight_trace::json::parse(&schema_document()).unwrap();
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some(SCENARIO_SCHEMA_V1));
        let fields = doc.get("fields").unwrap();
        for (name, ..) in SCENARIO_FIELDS_V1 {
            assert!(fields.get(name).is_some(), "schema doc is missing '{name}'");
        }
    }

    #[test]
    fn stats_serialisation_is_total_and_stable() {
        let spec =
            ScenarioSpec { data_bytes_per_channel: 4 * 1024, ..ScenarioSpec::new(WorkloadId::Add) };
        let stats = spec.build().unwrap().run().unwrap();
        let a = stats_to_value(&stats).to_json();
        let b = stats_to_value(&stats).to_json();
        assert_eq!(a, b);
        let doc = orderlight_trace::json::parse(&a).unwrap();
        #[allow(clippy::cast_precision_loss)]
        let cycles = stats.core_cycles as f64;
        assert_eq!(doc.get("core_cycles").and_then(Value::as_f64), Some(cycles));
        assert!(doc.get("sm").unwrap().get("fence_stall_cycles").is_some());
        assert!(doc.get("mc").unwrap().get("pim_commands").is_some());
    }
}
