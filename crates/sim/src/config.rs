//! System and experiment configuration (paper Table 1).

use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::ConfigError;
use orderlight_gpu::SmConfig;
use orderlight_hbm::{RefreshParams, TimingParams};
use orderlight_memctrl::McConfig;
use orderlight_noc::PipeConfig;
use orderlight_pim::TsSize;
use orderlight_workloads::{OrderingMode, WorkloadId};

/// The full-system configuration. Defaults reproduce Table 1:
///
/// | GPU | Volta Titan V model, 80 SMs, 1200 MHz |
/// |-----|----------------------------------------|
/// | Memory | HBM, 16 channels, 16 banks/channel, 850 MHz, 32 B bus |
/// | Queues | L2 64, R/W 64 | FR-FCFS scheduler |
/// | Latency | interconnect-to-L2 120 cyc, L2-to-DRAM 100 cyc |
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core clock (Hz). Table 1: 1200 MHz.
    pub core_freq_hz: f64,
    /// Memory clock (Hz). Table 1: 850 MHz.
    pub mem_freq_hz: f64,
    /// Memory channels. Table 1: 16.
    pub channels: usize,
    /// Banks per channel. Table 1: 16.
    pub banks_per_channel: usize,
    /// Row-buffer bytes. 2 KB.
    pub row_bytes: u64,
    /// Total SMs on the die (Table 1: 80). Only `sms_used` run the
    /// evaluated kernel; the rest are assumed available for concurrent
    /// compute kernels (the point of fine-grained arbitration).
    pub total_sms: usize,
    /// SMs used to drive the kernel.
    pub sms_used: usize,
    /// Warps per used SM (`sms_used * warps_per_sm` must cover the
    /// channels, one warp per channel).
    pub warps_per_sm: usize,
    /// DRAM timing.
    pub timing: TimingParams,
    /// All-bank refresh (off by default, matching the paper's
    /// methodology; see the `ablation_refresh` experiment).
    pub refresh: Option<RefreshParams>,
    /// Address interleaving.
    pub mapping: AddressMapping,
    /// Bank-to-memory-group map.
    pub groups: GroupMap,
    /// Memory-pipe latencies/capacities.
    pub pipe: PipeConfig,
    /// Per-SM microarchitecture.
    pub sm: SmConfig,
    /// Memory-controller queueing/scheduling knobs (mapping/groups are
    /// overridden from this config).
    pub mc: McConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        let mapping = AddressMapping::hbm_default();
        let groups = GroupMap::default();
        SystemConfig {
            core_freq_hz: 1.2e9,
            mem_freq_hz: 850e6,
            channels: 16,
            banks_per_channel: 16,
            row_bytes: 2048,
            total_sms: 80,
            sms_used: 8,
            warps_per_sm: 2,
            timing: TimingParams::hbm_table1(),
            refresh: None,
            mc: McConfig {
                mapping: mapping.clone(),
                groups: groups.clone(),
                ..McConfig::default()
            },
            mapping,
            groups,
            pipe: PipeConfig::default(),
            sm: SmConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns [`ConfigError`] when clocks are non-positive, the warp
    /// allocation does not cover the channels, or sub-configs disagree.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.core_freq_hz <= 0.0 || self.mem_freq_hz <= 0.0 {
            return Err(ConfigError::new(format!(
                "clock frequencies must be positive (core_freq_hz = {}, mem_freq_hz = {})",
                self.core_freq_hz, self.mem_freq_hz
            )));
        }
        if self.channels == 0 || self.channels != self.mapping.channels() {
            return Err(ConfigError::new(format!(
                "channel count must match the address mapping (channels = {}, mapping expects {})",
                self.channels,
                self.mapping.channels()
            )));
        }
        if self.banks_per_channel != self.mapping.banks() {
            return Err(ConfigError::new(format!(
                "bank count must match the address mapping \
                 (banks_per_channel = {}, mapping expects {})",
                self.banks_per_channel,
                self.mapping.banks()
            )));
        }
        if self.row_bytes != self.mapping.row_bytes() {
            return Err(ConfigError::new(format!(
                "row size must match the address mapping (row_bytes = {}, mapping expects {})",
                self.row_bytes,
                self.mapping.row_bytes()
            )));
        }
        if self.sms_used * self.warps_per_sm < self.channels {
            return Err(ConfigError::new(format!(
                "need at least one warp per channel \
                 (sms_used {} x warps_per_sm {} = {} warps < {} channels)",
                self.sms_used,
                self.warps_per_sm,
                self.sms_used * self.warps_per_sm,
                self.channels
            )));
        }
        if self.sms_used > self.total_sms {
            return Err(ConfigError::new(format!(
                "sms_used exceeds total_sms (sms_used = {}, total_sms = {})",
                self.sms_used, self.total_sms
            )));
        }
        self.timing.validate()?;
        Ok(())
    }

    /// Peak host-visible memory bandwidth in GB/s
    /// (`channels x 32 B x mem_freq`). Table 1's configuration gives
    /// ~435 GB/s (the paper quotes 405 GB/s achievable).
    #[must_use]
    pub fn peak_host_bandwidth_gbs(&self) -> f64 {
        self.channels as f64 * 32.0 * self.mem_freq_hz / 1e9
    }
}

/// What executes on the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The conventional-GPU baseline: data streams through the memory
    /// pipe to the core (the green "GPU" bars of Figure 10b).
    Gpu,
    /// Fine-grained PIM with the given ordering primitive.
    Pim(OrderingMode),
}

impl ExecMode {
    /// The memory-controller ordering backend this mode selects — the
    /// single mapping from kernel-level ordering choice to controller
    /// machinery. GPU runs and unordered PIM runs still host the
    /// [`orderlight_memctrl::OrderingKind::Fence`] backend: it is inert
    /// without probes, and keeps the fence path serviceable everywhere.
    #[must_use]
    pub fn ordering_backend(self) -> orderlight_memctrl::OrderingKind {
        use orderlight_memctrl::OrderingKind;
        match self {
            ExecMode::Gpu => OrderingKind::Fence,
            ExecMode::Pim(mode) => match mode {
                OrderingMode::None | OrderingMode::Fence => OrderingKind::Fence,
                OrderingMode::OrderLight => OrderingKind::OrderLight,
                OrderingMode::SeqNum => OrderingKind::SeqNum,
                OrderingMode::LouvreVersioned => OrderingKind::LouvreVersioned,
                OrderingMode::BulkBitwiseStrong => OrderingKind::BulkBitwiseStrong,
            },
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Gpu => write!(f, "gpu"),
            ExecMode::Pim(mode) => write!(f, "pim-{mode}"),
        }
    }
}

/// One experiment: a workload at a design point.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The system under test.
    pub system: SystemConfig,
    /// Which kernel runs.
    pub workload: WorkloadId,
    /// Execution mode.
    pub mode: ExecMode,
    /// PIM temporary-storage size (ignored in GPU mode).
    pub ts_size: TsSize,
    /// PIM bandwidth multiplication factor (ignored in GPU mode).
    pub bmf: u32,
    /// Logical job size: bytes per data structure per channel.
    pub data_bytes_per_channel: u64,
    /// Per-warp buffer credits for the sequence-number baseline
    /// (`OrderingMode::SeqNum` only).
    pub seq_credits: u32,
}

impl ExperimentConfig {
    /// A convenient default design point: Add kernel, OrderLight,
    /// 1/8-row-buffer TS, BMF 16, 256 KiB per structure per channel.
    #[must_use]
    pub fn new(workload: WorkloadId, mode: ExecMode) -> Self {
        ExperimentConfig {
            system: SystemConfig::default(),
            workload,
            mode,
            ts_size: TsSize::Eighth,
            bmf: 16,
            data_bytes_per_channel: 256 * 1024,
            seq_credits: 32,
        }
    }

    /// TS capacity in stripes at this design point.
    #[must_use]
    pub fn ts_stripes(&self) -> u64 {
        self.ts_size.stripes(self.system.row_bytes)
    }

    /// Stripes each warp's stream covers per structure: the full channel
    /// slice for the GPU baseline, the representative 1/BMF slice for
    /// PIM (each fine-grained command drives `bmf` lock-stepped units).
    #[must_use]
    pub fn stripes_per_channel(&self) -> u64 {
        let stripes = self.data_bytes_per_channel / 32;
        match self.mode {
            ExecMode::Gpu => stripes.max(1),
            ExecMode::Pim(_) => (stripes / u64::from(self.bmf)).max(1),
        }
    }

    /// Validates the experiment.
    ///
    /// # Errors
    /// Returns [`ConfigError`] for invalid systems or a zero BMF/job.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.system.validate()?;
        if self.bmf == 0 {
            return Err(ConfigError::new(format!(
                "bmf must be positive (bmf = {}, valid range 1..)",
                self.bmf
            )));
        }
        if self.data_bytes_per_channel == 0 {
            return Err(ConfigError::new(format!(
                "job size must be positive (data_bytes_per_channel = {}, valid range 1..)",
                self.data_bytes_per_channel
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SystemConfig::default();
        c.validate().unwrap();
        assert_eq!(c.channels, 16);
        assert_eq!(c.banks_per_channel, 16);
        assert_eq!(c.total_sms, 80);
        assert!((c.core_freq_hz - 1.2e9).abs() < 1.0);
        assert!((c.mem_freq_hz - 850e6).abs() < 1.0);
        assert_eq!(c.mc.queue_capacity, 64, "Table 1: R/W queue size 64");
        assert_eq!(c.pipe.icnt_latency, 120, "Table 1: interconnect-to-L2 latency");
        assert_eq!(c.pipe.l2_out_latency, 100, "Table 1: L2-to-DRAM latency");
        assert_eq!(c.timing, TimingParams::hbm_table1());
    }

    #[test]
    fn peak_bandwidth_near_435_gbs() {
        let c = SystemConfig::default();
        assert!((c.peak_host_bandwidth_gbs() - 435.2).abs() < 0.1);
    }

    #[test]
    fn validation_catches_mismatches() {
        let c = SystemConfig { channels: 8, ..SystemConfig::default() };
        assert!(c.validate().is_err());
        let c = SystemConfig { sms_used: 1, warps_per_sm: 2, ..SystemConfig::default() };
        assert!(c.validate().is_err(), "cannot cover 16 channels");
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn pim_slice_scales_with_bmf() {
        let mut e = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        e.data_bytes_per_channel = 1 << 20;
        e.bmf = 16;
        assert_eq!(e.stripes_per_channel(), (1 << 20) / 32 / 16);
        e.bmf = 4;
        assert_eq!(e.stripes_per_channel(), (1 << 20) / 32 / 4);
        let g = ExperimentConfig {
            mode: ExecMode::Gpu,
            ..ExperimentConfig::new(WorkloadId::Add, ExecMode::Gpu)
        };
        assert_eq!(g.stripes_per_channel(), g.data_bytes_per_channel / 32);
    }

    #[test]
    fn exec_mode_display() {
        assert_eq!(ExecMode::Gpu.to_string(), "gpu");
        assert_eq!(ExecMode::Pim(OrderingMode::Fence).to_string(), "pim-fence");
    }
}
