//! # Full-system simulator (paper Section 6 methodology)
//!
//! Assembles the whole stack — SMs ([`orderlight_gpu`]), per-channel
//! memory pipes ([`orderlight_noc`]), memory controllers
//! ([`orderlight_memctrl`]) and HBM channels with PIM units
//! ([`orderlight_hbm`], [`orderlight_pim`]) — under the Table 1
//! configuration, runs a workload to completion in two clock domains
//! (1200 MHz core, 850 MHz memory), verifies the result against the
//! golden model, and reports the paper's metrics:
//!
//! * execution time (ms) and core stall cycles,
//! * PIM command bandwidth (GC/s) and PIM data bandwidth (GB/s),
//! * ordering primitives issued per PIM instruction,
//! * functional correctness (matches / mismatches vs. the golden image).
//!
//! [`scenario::ScenarioBuilder`] is the typed front door: one builder
//! collects the workload, execution mode, kernel parameters, system
//! overrides, execution core, worker count, trace sink and fault plan,
//! validates them together, and hands back a runnable
//! [`Scenario`](scenario::Scenario).
//!
//! [`experiments`] packages a canned runner for every figure and table
//! of the paper's evaluation. Each sweep enumerates its design points
//! first ([`experiments::JobSpec`]) and executes them through the
//! [`pool`] — a dependency-free scoped-thread pool whose results are
//! bit-identical to the serial loop at any worker count.

pub mod calendar;
pub mod cli;
pub mod config;
pub mod core_select;
pub mod experiments;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod schema;
pub mod service;
pub mod stats;
pub mod system;

pub use config::{ExecMode, ExperimentConfig, SystemConfig};
pub use core_select::SimCore;
pub use pool::Pool;
pub use scenario::{Scenario, ScenarioBuilder};
pub use schema::{ScenarioSpec, SchemaError, SCENARIO_SCHEMA_V1};
pub use stats::RunStats;
pub use system::System;
