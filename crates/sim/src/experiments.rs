//! Canned experiment runners — one per table/figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index).
//!
//! Every sweep is expressed in two stages so it can run in parallel:
//! a `*_points` function **enumerates** the design points as
//! [`JobSpec`]s, and [`run_points`] executes them through a
//! [`Pool`](crate::pool::Pool) of scoped threads. Results are returned
//! in enumeration order and are bit-identical to the serial loop
//! ([`run_points_serial`]) at any worker count: a run's RNG streams are
//! seeded from the point spec (workload/channel/slice), never from
//! worker identity, and each run owns its whole `System`, so nothing
//! observable leaks between concurrent runs. `tests/
//! parallel_equivalence.rs` enforces the contract.

use crate::config::{ExecMode, ExperimentConfig, SystemConfig};
use crate::pool::Pool;
use crate::scenario::ScenarioBuilder;
use crate::stats::RunStats;
use crate::system::SimError;
use orderlight::types::BankId;
use orderlight_hbm::{Channel, ColKind, DramCommand, TimingParams};
use orderlight_pim::TsSize;
use orderlight_workloads::{OrderingMode, WorkloadId};

/// One point of a design-space sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload run.
    pub workload: String,
    /// TS size label ("1/8 RB", …; "-" for GPU runs).
    pub ts: String,
    /// Execution mode label ("gpu", "pim-fence", "pim-orderlight", …).
    pub mode: String,
    /// Controller ordering-backend label ("orderlight", "fence",
    /// "seqnum", "louvre", "bulk") — lets figures be re-cut per
    /// backend even where `mode` aliases (GPU and unordered PIM both
    /// host the fence backend).
    pub ordering: String,
    /// Bandwidth multiplication factor.
    pub bmf: u32,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Applies the paper's SM-allocation policy (Section 6): with fences the
/// core idles, so eight warps share an SM (2 SMs drive 16 channels);
/// OrderLight's issue throughput needs one SM per two warps (8 SMs).
pub fn apply_sm_policy(exp: &mut ExperimentConfig) {
    match exp.mode {
        ExecMode::Pim(OrderingMode::Fence) => {
            exp.system.sms_used = 2;
            exp.system.warps_per_sm = 8;
        }
        ExecMode::Pim(_) => {
            exp.system.sms_used = 8;
            exp.system.warps_per_sm = 2;
        }
        // The conventional baseline uses the whole GPU; eight warps per
        // channel give it the memory-level parallelism a real streaming
        // grid would have.
        ExecMode::Gpu => {
            exp.system.sms_used = 16;
            exp.system.warps_per_sm = 8;
        }
    }
}

/// Builds, runs and verifies one experiment. Thin wrapper over
/// [`ScenarioBuilder`] — prefer building a
/// [`Scenario`](crate::scenario::Scenario) directly in new code.
///
/// # Errors
/// Returns [`SimError`] if the system fails to drain.
pub fn run_experiment(exp: ExperimentConfig) -> Result<RunStats, SimError> {
    ScenarioBuilder::from_experiment(exp)
        .build()
        .map_err(|e| SimError::config(e.to_string()))?
        .run()
}

/// Like [`run_experiment`], but keeps the caller's SM allocation
/// instead of applying the paper's GPU SM policy — for hosts (e.g. the
/// CPU study) whose allocation is part of the configuration. Thin
/// wrapper over [`ScenarioBuilder::keep_sm_allocation`].
///
/// # Errors
/// Returns [`SimError`] if the system fails to drain.
pub fn run_experiment_fixed(exp: ExperimentConfig) -> Result<RunStats, SimError> {
    ScenarioBuilder::from_experiment(exp)
        .keep_sm_allocation()
        .build()
        .map_err(|e| SimError::config(e.to_string()))?
        .run()
}

/// Like [`run_experiment`], but with `sink` attached to every SM,
/// controller and DRAM channel before the run. Returns the statistics
/// together with the system's clock domains, which exporters need to
/// place core- and memory-clocked events on one time axis. Thin
/// wrapper over [`ScenarioBuilder::trace`].
///
/// # Errors
/// Returns [`SimError`] if the system fails to drain.
pub fn run_experiment_traced(
    exp: ExperimentConfig,
    sink: orderlight_trace::SharedSink,
) -> Result<(RunStats, orderlight_trace::ClockDomains), SimError> {
    ScenarioBuilder::from_experiment(exp)
        .trace(sink)
        .build()
        .map_err(|e| SimError::config(e.to_string()))?
        .run_with_clocks()
}

/// Runs one `(workload, ts, mode, bmf)` point.
///
/// # Errors
/// Propagates [`SimError`] from the run.
pub fn run_point(
    workload: WorkloadId,
    ts: TsSize,
    mode: ExecMode,
    bmf: u32,
    data_bytes_per_channel: u64,
) -> Result<SweepPoint, SimError> {
    JobSpec { workload, ts, mode, bmf, data_bytes_per_channel }.run()
}

/// The full specification of one independent sweep point — everything a
/// worker thread needs to reproduce the run. Seeding is derived from
/// these fields alone (the workload generators hash workload, channel
/// and slice identity), so the same spec yields the same
/// [`SweepPoint`] on any thread of any pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload to run.
    pub workload: WorkloadId,
    /// PIM temporary-storage size (ignored in GPU mode).
    pub ts: TsSize,
    /// Execution mode.
    pub mode: ExecMode,
    /// Bandwidth multiplication factor.
    pub bmf: u32,
    /// Bytes per data structure per channel.
    pub data_bytes_per_channel: u64,
}

impl JobSpec {
    /// A spec at the default BMF 16.
    #[must_use]
    pub fn new(workload: WorkloadId, ts: TsSize, mode: ExecMode, data: u64) -> JobSpec {
        JobSpec { workload, ts, mode, bmf: 16, data_bytes_per_channel: data }
    }

    /// The [`ScenarioBuilder`] this point's run is assembled from —
    /// shared by [`JobSpec::run`] and harnesses (like the stall
    /// profiler) that attach their own sinks before running.
    #[must_use]
    pub fn builder(&self) -> ScenarioBuilder {
        ScenarioBuilder::new(self.workload, self.mode)
            .ts_size(self.ts)
            .bmf(self.bmf)
            .data_bytes_per_channel(self.data_bytes_per_channel)
    }

    /// Builds, runs and verifies this point's experiment.
    ///
    /// # Errors
    /// Propagates [`SimError`] from the run.
    pub fn run(&self) -> Result<SweepPoint, SimError> {
        let stats = self.builder().build().map_err(|e| SimError::config(e.to_string()))?.run()?;
        Ok(SweepPoint {
            workload: self.workload.to_string(),
            ts: match self.mode {
                ExecMode::Gpu => "-".to_string(),
                ExecMode::Pim(_) => self.ts.to_string(),
            },
            mode: self.mode.to_string(),
            ordering: self.mode.ordering_backend().to_string(),
            bmf: self.bmf,
            stats,
        })
    }
}

/// Executes `specs` through `pool`, returning results in input order.
/// On failure the error reported is the *first failing spec in input
/// order* (not completion order), keeping even the error path
/// deterministic.
///
/// # Errors
/// Propagates the first [`SimError`] in input order.
pub fn run_points(specs: &[JobSpec], pool: &Pool) -> Result<Vec<SweepPoint>, SimError> {
    pool.run(specs.iter().map(|s| move || s.run()).collect::<Vec<_>>()).into_iter().collect()
}

/// The reference serial loop. [`run_points`] at any worker count is
/// asserted bit-identical to this by `tests/parallel_equivalence.rs`.
///
/// # Errors
/// Propagates the first [`SimError`].
pub fn run_points_serial(specs: &[JobSpec]) -> Result<Vec<SweepPoint>, SimError> {
    specs.iter().map(JobSpec::run).collect()
}

/// Runs a batch of fully-specified experiments through `pool`,
/// preserving input order (the ablation sweeps' analogue of
/// [`run_points`]).
///
/// # Errors
/// Propagates the first [`SimError`] in input order.
pub fn run_experiments(
    exps: Vec<ExperimentConfig>,
    pool: &Pool,
) -> Result<Vec<RunStats>, SimError> {
    pool.run(exps.into_iter().map(|e| move || run_experiment(e)).collect::<Vec<_>>())
        .into_iter()
        .collect()
}

/// Enumerates Figure 5's design points: fence overhead for the
/// vector-add kernel — {no ordering (functionally incorrect), fence at
/// TS = 1/16..1/2 RB}.
#[must_use]
pub fn fig05_points(data_bytes_per_channel: u64) -> Vec<JobSpec> {
    let mut points = vec![JobSpec::new(
        WorkloadId::Add,
        TsSize::Eighth,
        ExecMode::Pim(OrderingMode::None),
        data_bytes_per_channel,
    )];
    for ts in TsSize::ALL {
        points.push(JobSpec::new(
            WorkloadId::Add,
            ts,
            ExecMode::Pim(OrderingMode::Fence),
            data_bytes_per_channel,
        ));
    }
    points
}

/// Enumerates the fence-heavy stress series: every streaming kernel
/// under the traditional fence at TS = 1/16 RB — the finest tile size,
/// where a fence round trip punctuates every 128 B tile and cores
/// spend most cycles stalled (the paper's worst case, Figure 5's
/// leftmost fence bar). This is the event core's best case, so
/// `orderlight bench` reports its cycle-vs-event speedup as a series
/// of its own.
#[must_use]
pub fn fence_heavy_points(data_bytes_per_channel: u64) -> Vec<JobSpec> {
    [WorkloadId::Scale, WorkloadId::Copy, WorkloadId::Daxpy, WorkloadId::Triad, WorkloadId::Add]
        .into_iter()
        .map(|w| {
            JobSpec::new(
                w,
                TsSize::Sixteenth,
                ExecMode::Pim(OrderingMode::Fence),
                data_bytes_per_channel,
            )
        })
        .collect()
}

/// Figure 5, executed across `jobs` workers.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig05_jobs(data_bytes_per_channel: u64, jobs: usize) -> Result<Vec<SweepPoint>, SimError> {
    run_points(&fig05_points(data_bytes_per_channel), &Pool::new(jobs))
}

/// Figure 5: fence overhead for the vector-add kernel — execution time
/// and waiting cycles per fence (serial execution; see [`fig05_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig05(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    fig05_jobs(data_bytes_per_channel, 1)
}

/// Enumerates Figures 10a/10b: every stream kernel at every TS size
/// under fence and OrderLight, plus the GPU baseline.
#[must_use]
pub fn fig10_points(data_bytes_per_channel: u64) -> Vec<JobSpec> {
    let mut points = Vec::new();
    for wl in WorkloadId::STREAMS {
        points.push(JobSpec::new(wl, TsSize::Eighth, ExecMode::Gpu, data_bytes_per_channel));
        for ts in TsSize::ALL {
            for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
                points.push(JobSpec::new(wl, ts, ExecMode::Pim(mode), data_bytes_per_channel));
            }
        }
    }
    points
}

/// Figures 10a/10b, executed across `jobs` workers.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig10_jobs(data_bytes_per_channel: u64, jobs: usize) -> Result<Vec<SweepPoint>, SimError> {
    run_points(&fig10_points(data_bytes_per_channel), &Pool::new(jobs))
}

/// Figures 10a/10b: the stream benchmark sweep (serial execution; see
/// [`fig10_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig10(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    fig10_jobs(data_bytes_per_channel, 1)
}

/// Enumerates Figure 12: the application kernels, fence vs OrderLight
/// at every TS size.
#[must_use]
pub fn fig12_points(data_bytes_per_channel: u64) -> Vec<JobSpec> {
    let mut points = Vec::new();
    for wl in WorkloadId::APPS {
        for ts in TsSize::ALL {
            for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
                points.push(JobSpec::new(wl, ts, ExecMode::Pim(mode), data_bytes_per_channel));
            }
        }
    }
    points
}

/// Figure 12, executed across `jobs` workers.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig12_jobs(data_bytes_per_channel: u64, jobs: usize) -> Result<Vec<SweepPoint>, SimError> {
    run_points(&fig12_points(data_bytes_per_channel), &Pool::new(jobs))
}

/// Figure 12: the application-kernel sweep (fence vs OrderLight at every
/// TS size), whose `primitives_per_pim_instr` reproduces the line plot
/// (serial execution; see [`fig12_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig12(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    fig12_jobs(data_bytes_per_channel, 1)
}

/// Enumerates Figure 13: the bandwidth-multiplication-factor sweep
/// (4x/8x/16x) for the Add kernel under fence and OrderLight.
#[must_use]
pub fn fig13_points(data_bytes_per_channel: u64) -> Vec<JobSpec> {
    let mut points = Vec::new();
    for bmf in [4u32, 8, 16] {
        for ts in TsSize::ALL {
            for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
                points.push(JobSpec {
                    workload: WorkloadId::Add,
                    ts,
                    mode: ExecMode::Pim(mode),
                    bmf,
                    data_bytes_per_channel,
                });
            }
        }
    }
    points
}

/// Figure 13, executed across `jobs` workers.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig13_jobs(data_bytes_per_channel: u64, jobs: usize) -> Result<Vec<SweepPoint>, SimError> {
    run_points(&fig13_points(data_bytes_per_channel), &Pool::new(jobs))
}

/// Figure 13: bandwidth-multiplication-factor sweep (4x/8x/16x) for the
/// Add kernel under fence and OrderLight (serial execution; see
/// [`fig13_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig13(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    fig13_jobs(data_bytes_per_channel, 1)
}

/// Figure 11: the DRAM timing window — analytic and micro-simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11 {
    /// Analytic window: tRCDW + 7·tCCD + tWP + tRP.
    pub analytic_window: u64,
    /// The same window measured on the simulated bank state machine.
    pub simulated_window: u64,
    /// Column writes per window.
    pub writes_per_window: u64,
    /// Peak command bandwidth over 16 channels, GC/s.
    pub peak_command_gcs: f64,
}

/// Computes Figure 11 both analytically and by driving the bank state
/// machine, asserting they agree.
#[must_use]
pub fn fig11() -> Fig11 {
    let t = TimingParams::hbm_table1();
    let analytic = t.row_window_writes(8);
    // Micro-sim: stream two rows of 8 writes through one bank and
    // measure the ACT-to-ACT spacing.
    let mut ch = Channel::new(t, 16, 2048);
    let mut now = 0;
    let mut acts = Vec::new();
    for row in 0..2u32 {
        while !ch.try_issue(DramCommand::Activate { bank: BankId(0), row }, now) {
            now += 1;
        }
        acts.push(now);
        let mut writes = 0;
        while writes < 8 {
            if ch.try_issue(DramCommand::column(BankId(0), ColKind::Write), now) {
                writes += 1;
            }
            now += 1;
        }
        while !ch.try_issue(DramCommand::Precharge { bank: BankId(0) }, now) {
            now += 1;
        }
    }
    let simulated = acts[1] - acts[0];
    Fig11 {
        analytic_window: analytic,
        simulated_window: simulated,
        writes_per_window: 8,
        peak_command_gcs: t.peak_command_bandwidth(8, analytic, 16, 850e6) / 1e9,
    }
}

/// The arbitration-granularity ablation (Sections 3.2/3.5): mean host
/// read latency while a PIM kernel saturates the same channels, under
/// fine-grained arbitration (host requests interleave) versus
/// coarse-grained arbitration (host requests blocked until PIM
/// completes, modelled as queueing the host work after the PIM run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbitrationAblation {
    /// Mean host read latency (memory cycles) with fine-grained
    /// arbitration.
    pub fga_mean_host_latency: f64,
    /// Host latency under coarse-grained arbitration: the whole PIM
    /// kernel's execution time stands between the host and its data.
    pub cga_host_wait_cycles: u64,
    /// PIM execution time (core cycles) used for the CGA bound.
    pub pim_exec_cycles: u64,
}

/// Runs the arbitration ablation (see [`ArbitrationAblation`]) across
/// `jobs` workers.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_arbitration_jobs(
    data_bytes_per_channel: u64,
    jobs: usize,
) -> Result<ArbitrationAblation, SimError> {
    // Fine-grained: host traffic to memory group 1 interleaves with the
    // PIM kernel in group 0. We approximate the host stream with the
    // Copy workload placed in GPU mode on the same system size, and
    // measure its mean service latency when run alone (the FGA latency
    // for group-1 requests is unaffected by group-0 OrderLight packets —
    // asserted by unit tests in `orderlight-memctrl`).
    let mut gpu = ExperimentConfig::new(WorkloadId::Copy, ExecMode::Gpu);
    gpu.data_bytes_per_channel = data_bytes_per_channel;
    // Coarse-grained: the host waits out the whole PIM kernel.
    let mut pim = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
    pim.data_bytes_per_channel = data_bytes_per_channel;
    let stats = run_experiments(vec![gpu, pim], &Pool::new(jobs))?;
    let (gpu_stats, pim_stats) = (&stats[0], &stats[1]);
    let fga_mean = if gpu_stats.mc.host_reads == 0 {
        0.0
    } else {
        gpu_stats.mc.host_read_latency_sum as f64 / gpu_stats.mc.host_reads as f64
    };
    Ok(ArbitrationAblation {
        fga_mean_host_latency: fga_mean,
        cga_host_wait_cycles: pim_stats.core_cycles,
        pim_exec_cycles: pim_stats.core_cycles,
    })
}

/// Runs the arbitration ablation serially (see
/// [`ablation_arbitration_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_arbitration(data_bytes_per_channel: u64) -> Result<ArbitrationAblation, SimError> {
    ablation_arbitration_jobs(data_bytes_per_channel, 1)
}

/// One row of the sequence-number (Kim et al. (paper reference 27)) comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqNumRow {
    /// Configuration label ("orderlight", "seqnum B=8", ...).
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// PIM command bandwidth (GC/s).
    pub command_gcs: f64,
    /// Core cycles stalled waiting for buffer credits.
    pub credit_wait_cycles: u64,
    /// Whether the run verified.
    pub correct: bool,
}

/// The Related Work comparison (Section 8.1): OrderLight versus
/// per-request sequence numbers with credit-based buffer management,
/// sweeping the controller buffer size. Kim et al.'s approach needs
/// memory-side buffering and pays credit round trips; OrderLight's
/// in-band packets need neither.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_seqnum_jobs(
    data_bytes_per_channel: u64,
    ts: TsSize,
    jobs: usize,
) -> Result<Vec<SeqNumRow>, SimError> {
    let mut base = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
    base.ts_size = ts;
    base.data_bytes_per_channel = data_bytes_per_channel;
    const CREDITS: [u32; 5] = [4, 8, 16, 32, 64];
    let mut exps = vec![base.clone()];
    for credits in CREDITS {
        let mut exp = base.clone();
        exp.mode = ExecMode::Pim(OrderingMode::SeqNum);
        exp.seq_credits = credits;
        exps.push(exp);
    }
    let stats = run_experiments(exps, &Pool::new(jobs))?;
    let mut rows = Vec::new();
    let ol = &stats[0];
    rows.push(SeqNumRow {
        label: "orderlight".into(),
        exec_time_ms: ol.exec_time_ms,
        command_gcs: ol.command_bandwidth_gcs,
        credit_wait_cycles: 0,
        correct: ol.is_correct(),
    });
    for (credits, s) in CREDITS.iter().zip(&stats[1..]) {
        rows.push(SeqNumRow {
            label: format!("seqnum B={credits}"),
            exec_time_ms: s.exec_time_ms,
            command_gcs: s.command_bandwidth_gcs,
            credit_wait_cycles: s.sm.credit_wait_cycles,
            correct: s.is_correct(),
        });
    }
    Ok(rows)
}

/// The sequence-number comparison, run serially (see
/// [`ablation_seqnum_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_seqnum(
    data_bytes_per_channel: u64,
    ts: TsSize,
) -> Result<Vec<SeqNumRow>, SimError> {
    ablation_seqnum_jobs(data_bytes_per_channel, ts, 1)
}

/// The fence-scope ablation (paper Section 4.3): where the fence
/// acknowledgement is generated decides both its cost and its safety.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FenceScopeAblation {
    /// Execution time with the correct issue-to-DRAM fence (ms).
    pub dram_issue_ms: f64,
    /// Mean waiting cycles per fence, issue-to-DRAM scope.
    pub dram_issue_wait: f64,
    /// Whether the issue-to-DRAM run verified.
    pub dram_issue_correct: bool,
    /// Execution time with the L2 ("global serialization point") fence.
    pub l2_ack_ms: f64,
    /// Mean waiting cycles per fence, L2 scope.
    pub l2_ack_wait: f64,
    /// Whether the L2-scope run verified (no guarantee that it does).
    pub l2_ack_correct: bool,
    /// Output stripes that mismatched under the L2-scope fence.
    pub l2_ack_mismatches: u64,
}

/// Runs the fence-scope ablation on the Add kernel across `jobs`
/// workers.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_fence_scope_jobs(
    data_bytes_per_channel: u64,
    ts: TsSize,
    jobs: usize,
) -> Result<FenceScopeAblation, SimError> {
    let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence));
    exp.ts_size = ts;
    exp.data_bytes_per_channel = data_bytes_per_channel;
    let strict_exp = exp.clone();
    exp.system.pipe.fence_ack_at_l2 = true;
    let stats = run_experiments(vec![strict_exp, exp], &Pool::new(jobs))?;
    let (strict, loose) = (&stats[0], &stats[1]);
    Ok(FenceScopeAblation {
        dram_issue_ms: strict.exec_time_ms,
        dram_issue_wait: strict.wait_cycles_per_fence(),
        dram_issue_correct: strict.is_correct(),
        l2_ack_ms: loose.exec_time_ms,
        l2_ack_wait: loose.wait_cycles_per_fence(),
        l2_ack_correct: loose.is_correct(),
        l2_ack_mismatches: loose.verified_mismatches,
    })
}

/// Runs the fence-scope ablation serially (see
/// [`ablation_fence_scope_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_fence_scope(
    data_bytes_per_channel: u64,
    ts: TsSize,
) -> Result<FenceScopeAblation, SimError> {
    ablation_fence_scope_jobs(data_bytes_per_channel, ts, 1)
}

/// A CPU-host system configuration, following the paper's conclusion:
/// the innovations apply to out-of-order CPUs, whose renaming units and
/// reservation stations play the operand collector's role and whose
/// fence overheads are still on the order of 100 cycles. We model the
/// CPU host with the same structures under CPU parameters: a short
/// uncore path to the controller (L3 + mesh instead of a GPU
/// interconnect), wide issue, reservation-station-sized collectors, and
/// one hardware context per channel.
#[must_use]
pub fn cpu_host_config() -> SystemConfig {
    // 2 GHz cores, eight of them driving two channels each.
    let mut sys = SystemConfig {
        core_freq_hz: 2.0e9,
        total_sms: 8,
        sms_used: 8,
        warps_per_sm: 2,
        ..SystemConfig::default()
    };
    // Uncore: core -> L3 slice -> memory controller.
    sys.pipe.icnt_latency = 40;
    sys.pipe.sub_latency = 4;
    sys.pipe.l2_out_latency = 20;
    sys.pipe.return_latency = 60;
    // Reservation stations instead of collector units.
    sys.sm.issue_width = 4;
    sys.sm.oc_capacity = 48;
    sys.sm.oc_latency = 2;
    sys.sm.ldst_capacity = 32;
    sys
}

/// One row of the CPU-host applicability study.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuHostRow {
    /// Ordering primitive label.
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// Mean waiting cycles per fence.
    pub wait_per_fence: f64,
    /// Whether the run verified.
    pub correct: bool,
}

/// Runs the Add kernel on the CPU-host configuration under fences and
/// OrderLight (paper Conclusion: fence overheads on OoO CPUs are still
/// ~100 cycles, and the operand-collector gating maps onto reservation
/// stations).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_cpu_host_jobs(
    data_bytes_per_channel: u64,
    ts: TsSize,
    jobs: usize,
) -> Result<Vec<CpuHostRow>, SimError> {
    const MODES: [OrderingMode; 2] = [OrderingMode::Fence, OrderingMode::OrderLight];
    let exps: Vec<ExperimentConfig> = MODES
        .into_iter()
        .map(|mode| {
            let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(mode));
            exp.system = cpu_host_config();
            exp.ts_size = ts;
            exp.data_bytes_per_channel = data_bytes_per_channel;
            exp
        })
        .collect();
    // CPU allocation is fixed; skip the GPU SM policy.
    let stats: Result<Vec<RunStats>, SimError> = Pool::new(jobs)
        .run(exps.into_iter().map(|e| move || run_experiment_fixed(e)).collect::<Vec<_>>())
        .into_iter()
        .collect();
    Ok(MODES
        .into_iter()
        .zip(stats?)
        .map(|(mode, s)| CpuHostRow {
            label: format!("cpu {mode}"),
            exec_time_ms: s.exec_time_ms,
            wait_per_fence: s.wait_cycles_per_fence(),
            correct: s.is_correct(),
        })
        .collect())
}

/// The CPU-host study, run serially (see [`ablation_cpu_host_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_cpu_host(
    data_bytes_per_channel: u64,
    ts: TsSize,
) -> Result<Vec<CpuHostRow>, SimError> {
    ablation_cpu_host_jobs(data_bytes_per_channel, ts, 1)
}

/// One row of the scheduler-knob ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRow {
    /// Knob setting label.
    pub label: String,
    /// OrderLight (single-bank PIM stream) command bandwidth, GC/s.
    pub pim_command_gcs: f64,
    /// GPU-baseline (multi-bank host stream) execution time, ms.
    pub host_exec_ms: f64,
    /// GPU-baseline row activations (locality proxy: fewer is better).
    pub host_activates: u64,
}

/// Sweeps the controller design knobs DESIGN.md calls out — FR-FCFS
/// scan depth and per-bank command-queue capacity.
///
/// Two traffic classes react very differently: the ordered single-bank
/// PIM stream is insensitive (the OrderLight barriers already pin the
/// schedule — itself a useful observation), while the GPU baseline's
/// multi-bank host stream relies on the scan window for bank-level
/// parallelism and row locality.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_scheduler_jobs(
    data_bytes_per_channel: u64,
    jobs: usize,
) -> Result<Vec<SchedulerRow>, SimError> {
    let mut labels = Vec::new();
    let mut exps = Vec::new();
    let mut enumerate = |label: String, scan_depth: usize, bank_q: usize| {
        let mut pim =
            ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        pim.data_bytes_per_channel = data_bytes_per_channel;
        pim.system.mc.scan_depth = scan_depth;
        pim.system.mc.bank_queue_capacity = bank_q;
        let mut host = ExperimentConfig::new(WorkloadId::Add, ExecMode::Gpu);
        host.data_bytes_per_channel = data_bytes_per_channel / 4;
        host.system.mc.scan_depth = scan_depth;
        host.system.mc.bank_queue_capacity = bank_q;
        labels.push(label);
        exps.push(pim);
        exps.push(host);
    };
    for scan in [1usize, 4, 16, 64] {
        enumerate(format!("scan_depth={scan}"), scan, 4);
    }
    for bq in [1usize, 2, 4, 8] {
        enumerate(format!("bank_queue={bq}"), 16, bq);
    }
    let stats = run_experiments(exps, &Pool::new(jobs))?;
    Ok(labels
        .into_iter()
        .zip(stats.chunks_exact(2))
        .map(|(label, pair)| SchedulerRow {
            label,
            pim_command_gcs: pair[0].command_bandwidth_gcs,
            host_exec_ms: pair[1].exec_time_ms,
            host_activates: pair[1].mc.activates,
        })
        .collect())
}

/// The scheduler-knob ablation, run serially (see
/// [`ablation_scheduler_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_scheduler(data_bytes_per_channel: u64) -> Result<Vec<SchedulerRow>, SimError> {
    ablation_scheduler_jobs(data_bytes_per_channel, 1)
}

/// One row of the refresh ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshRow {
    /// Configuration label.
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// OrderLight command bandwidth (GC/s).
    pub command_gcs: f64,
    /// Whether the run verified.
    pub correct: bool,
}

/// Quantifies what the paper's (and most PIM studies') no-refresh
/// methodology hides: the Add kernel under OrderLight with all-bank
/// refresh off versus HBM2-like tREFI/tRFC.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_refresh_jobs(
    data_bytes_per_channel: u64,
    jobs: usize,
) -> Result<Vec<RefreshRow>, SimError> {
    let settings = [
        ("no refresh (paper)", None),
        ("HBM2 refresh", Some(orderlight_hbm::RefreshParams::hbm2())),
    ];
    let exps: Vec<ExperimentConfig> = settings
        .iter()
        .map(|(_, refresh)| {
            let mut exp =
                ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
            exp.data_bytes_per_channel = data_bytes_per_channel;
            exp.system.refresh = *refresh;
            exp
        })
        .collect();
    let stats = run_experiments(exps, &Pool::new(jobs))?;
    Ok(settings
        .iter()
        .zip(stats)
        .map(|((label, _), s)| RefreshRow {
            label: (*label).to_string(),
            exec_time_ms: s.exec_time_ms,
            command_gcs: s.command_bandwidth_gcs,
            correct: s.is_correct(),
        })
        .collect())
}

/// The refresh ablation, run serially (see [`ablation_refresh_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_refresh(data_bytes_per_channel: u64) -> Result<Vec<RefreshRow>, SimError> {
    ablation_refresh_jobs(data_bytes_per_channel, 1)
}

/// One row of the page-policy ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PagePolicyRow {
    /// `workload / policy` label.
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// Row activations issued.
    pub activates: u64,
}

/// Open-page versus closed-page row management under OrderLight, on a
/// streaming kernel (Add: rewards open rows) and an irregular one
/// (Gen_Fil: random 128 B probes rarely revisit a row).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_page_policy_jobs(
    data_bytes_per_channel: u64,
    jobs: usize,
) -> Result<Vec<PagePolicyRow>, SimError> {
    use orderlight_memctrl::PagePolicy;
    let mut labels = Vec::new();
    let mut exps = Vec::new();
    for wl in [WorkloadId::Add, WorkloadId::GenFil] {
        for policy in [PagePolicy::Open, PagePolicy::Closed] {
            let mut exp = ExperimentConfig::new(wl, ExecMode::Pim(OrderingMode::OrderLight));
            exp.data_bytes_per_channel = data_bytes_per_channel;
            exp.system.mc.page_policy = policy;
            labels.push(format!("{wl} / {policy:?}"));
            exps.push(exp);
        }
    }
    let stats = run_experiments(exps, &Pool::new(jobs))?;
    Ok(labels
        .into_iter()
        .zip(stats)
        .map(|(label, s)| PagePolicyRow {
            label,
            exec_time_ms: s.exec_time_ms,
            activates: s.mc.activates,
        })
        .collect())
}

/// The page-policy ablation, run serially (see
/// [`ablation_page_policy_jobs`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_page_policy(data_bytes_per_channel: u64) -> Result<Vec<PagePolicyRow>, SimError> {
    ablation_page_policy_jobs(data_bytes_per_channel, 1)
}

/// Table 1 as printable rows (configuration echo).
#[must_use]
pub fn table1() -> Vec<(String, String)> {
    let c = SystemConfig::default();
    let t = c.timing;
    vec![
        ("GPU model".into(), "Volta Titan V (modelled)".into()),
        ("Number of SMs".into(), c.total_sms.to_string()),
        ("Core frequency".into(), format!("{} MHz", c.core_freq_hz / 1e6)),
        ("Memory model".into(), "HBM".into()),
        ("Memory channels".into(), c.channels.to_string()),
        ("Banks per channel".into(), c.banks_per_channel.to_string()),
        ("Memory frequency".into(), format!("{} MHz", c.mem_freq_hz / 1e6)),
        ("DRAM bus width".into(), "32B".into()),
        ("Memory scheduler".into(), "FRFCFS".into()),
        ("R/W queue size".into(), c.mc.queue_capacity.to_string()),
        ("L2 queue size".into(), (c.pipe.sub_capacity * 2).to_string()),
        ("Interconnect to L2 latency".into(), format!("{} cycles", c.pipe.icnt_latency)),
        ("L2 to DRAM scheduler latency".into(), format!("{} cycles", c.pipe.l2_out_latency)),
        (
            "Memory timing".into(),
            format!(
                "CCD={}:RRD={}:RCDW={}:RAS={}:RP={}:CL={}:WL={}:CDLR={}:WR={}:CCDL={}:WTP={}",
                t.ccd, t.rrd, t.rcd_wr, t.ras, t.rp, t.cl, t.wl, t.cdlr, t.wr, t.ccdl, t.wtp
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_analytic_matches_simulation() {
        let f = fig11();
        assert_eq!(f.analytic_window, 44);
        assert_eq!(f.simulated_window, 44);
        assert!((f.peak_command_gcs - 2.47).abs() < 0.05);
    }

    #[test]
    fn sm_policy_follows_the_paper() {
        let mut e = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence));
        apply_sm_policy(&mut e);
        assert_eq!((e.system.sms_used, e.system.warps_per_sm), (2, 8));
        let mut e = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        apply_sm_policy(&mut e);
        assert_eq!((e.system.sms_used, e.system.warps_per_sm), (8, 2));
    }

    #[test]
    fn table1_echoes_the_paper() {
        let rows = table1();
        let get = |k: &str| rows.iter().find(|(a, _)| a == k).unwrap().1.clone();
        assert_eq!(get("Number of SMs"), "80");
        assert_eq!(get("Memory channels"), "16");
        assert_eq!(get("R/W queue size"), "64");
        assert!(get("Memory timing").contains("RCDW=9"));
        assert!(get("Memory timing").contains("WTP=9"));
    }

    #[test]
    fn point_enumerations_match_the_paper_shapes() {
        let data = 8 * 1024;
        assert_eq!(fig05_points(data).len(), 5, "NoFence + 4 fence TS points");
        assert_eq!(fig10_points(data).len(), 5 * 9, "5 kernels x (GPU + 4 TS x 2 modes)");
        assert_eq!(fig12_points(data).len(), 7 * 4 * 2);
        assert_eq!(fig13_points(data).len(), 3 * 4 * 2);
        for p in fig10_points(data) {
            assert_eq!(p.data_bytes_per_channel, data);
            assert_eq!(p.bmf, 16);
        }
        let bmfs: Vec<u32> = fig13_points(data).iter().map(|p| p.bmf).collect();
        assert!(bmfs.starts_with(&[4; 8]) && bmfs.ends_with(&[16; 8]));
    }

    #[test]
    fn run_points_is_bit_identical_to_the_serial_loop() {
        // The cheapest two-point slice of fig05 at a tiny job size; the
        // full-figure equivalence matrix lives in
        // `tests/parallel_equivalence.rs`.
        let specs = &fig05_points(4 * 1024)[..2];
        let serial = run_points_serial(specs).unwrap();
        let pooled = run_points(specs, &Pool::new(2)).unwrap();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn run_point_produces_consistent_labels() {
        let p = run_point(
            WorkloadId::Scale,
            TsSize::Quarter,
            ExecMode::Pim(OrderingMode::OrderLight),
            16,
            8 * 1024,
        )
        .unwrap();
        assert_eq!(p.workload, "Scale");
        assert_eq!(p.ts, "1/4 RB");
        assert_eq!(p.mode, "pim-orderlight");
        assert!(p.stats.is_correct());
    }
}
