//! Canned experiment runners — one per table/figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index).

use crate::config::{ExecMode, ExperimentConfig, SystemConfig};
use crate::stats::RunStats;
use crate::system::{SimError, System};
use orderlight::types::BankId;
use orderlight_hbm::{Channel, ColKind, DramCommand, TimingParams};
use orderlight_pim::TsSize;
use orderlight_workloads::{OrderingMode, WorkloadId};

/// One point of a design-space sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Workload run.
    pub workload: String,
    /// TS size label ("1/8 RB", …; "-" for GPU runs).
    pub ts: String,
    /// Execution mode label ("gpu", "pim-fence", "pim-orderlight", …).
    pub mode: String,
    /// Bandwidth multiplication factor.
    pub bmf: u32,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Applies the paper's SM-allocation policy (Section 6): with fences the
/// core idles, so eight warps share an SM (2 SMs drive 16 channels);
/// OrderLight's issue throughput needs one SM per two warps (8 SMs).
pub fn apply_sm_policy(exp: &mut ExperimentConfig) {
    match exp.mode {
        ExecMode::Pim(OrderingMode::Fence) => {
            exp.system.sms_used = 2;
            exp.system.warps_per_sm = 8;
        }
        ExecMode::Pim(_) => {
            exp.system.sms_used = 8;
            exp.system.warps_per_sm = 2;
        }
        // The conventional baseline uses the whole GPU; eight warps per
        // channel give it the memory-level parallelism a real streaming
        // grid would have.
        ExecMode::Gpu => {
            exp.system.sms_used = 16;
            exp.system.warps_per_sm = 8;
        }
    }
}

/// Cycle budget for a run (generous; a run that exceeds it is treated as
/// a deadlock).
fn budget(exp: &ExperimentConfig) -> u64 {
    200_000_000 + exp.stripes_per_channel() * 20_000
}

/// Builds, runs and verifies one experiment.
///
/// # Errors
/// Returns [`SimError`] if the system fails to drain.
pub fn run_experiment(mut exp: ExperimentConfig) -> Result<RunStats, SimError> {
    apply_sm_policy(&mut exp);
    let b = budget(&exp);
    let mut sys = System::build(exp).map_err(|e| SimError::from_config(&e))?;
    sys.run(b)
}

/// Like [`run_experiment`], but with `sink` attached to every SM,
/// controller and DRAM channel before the run. Returns the statistics
/// together with the system's clock domains, which exporters need to
/// place core- and memory-clocked events on one time axis.
///
/// # Errors
/// Returns [`SimError`] if the system fails to drain.
pub fn run_experiment_traced(
    mut exp: ExperimentConfig,
    sink: orderlight_trace::SharedSink,
) -> Result<(RunStats, orderlight_trace::ClockDomains), SimError> {
    apply_sm_policy(&mut exp);
    let b = budget(&exp);
    let mut sys = System::build(exp).map_err(|e| SimError::from_config(&e))?;
    sys.attach_sink(sink);
    let clocks = sys.clock_domains();
    let stats = sys.run(b)?;
    Ok((stats, clocks))
}

impl SimError {
    fn from_config(e: &orderlight::ConfigError) -> SimError {
        SimError::config(e.to_string())
    }
}

/// Runs one `(workload, ts, mode, bmf)` point.
///
/// # Errors
/// Propagates [`SimError`] from the run.
pub fn run_point(
    workload: WorkloadId,
    ts: TsSize,
    mode: ExecMode,
    bmf: u32,
    data_bytes_per_channel: u64,
) -> Result<SweepPoint, SimError> {
    let mut exp = ExperimentConfig::new(workload, mode);
    exp.ts_size = ts;
    exp.bmf = bmf;
    exp.data_bytes_per_channel = data_bytes_per_channel;
    let stats = run_experiment(exp)?;
    Ok(SweepPoint {
        workload: workload.to_string(),
        ts: match mode {
            ExecMode::Gpu => "-".to_string(),
            ExecMode::Pim(_) => ts.to_string(),
        },
        mode: mode.to_string(),
        bmf,
        stats,
    })
}

/// Figure 5: fence overhead for the vector-add kernel — execution time
/// and waiting cycles per fence for {no ordering (functionally
/// incorrect), fence at TS = 1/16..1/2 RB}.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig05(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    let mut rows = Vec::new();
    rows.push(run_point(
        WorkloadId::Add,
        TsSize::Eighth,
        ExecMode::Pim(OrderingMode::None),
        16,
        data_bytes_per_channel,
    )?);
    for ts in TsSize::ALL {
        rows.push(run_point(
            WorkloadId::Add,
            ts,
            ExecMode::Pim(OrderingMode::Fence),
            16,
            data_bytes_per_channel,
        )?);
    }
    Ok(rows)
}

/// Figures 10a/10b: the stream benchmark sweep — every stream kernel at
/// every TS size under fence and OrderLight, plus the GPU baseline.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig10(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    let mut rows = Vec::new();
    for wl in WorkloadId::STREAMS {
        rows.push(run_point(wl, TsSize::Eighth, ExecMode::Gpu, 16, data_bytes_per_channel)?);
        for ts in TsSize::ALL {
            for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
                rows.push(run_point(wl, ts, ExecMode::Pim(mode), 16, data_bytes_per_channel)?);
            }
        }
    }
    Ok(rows)
}

/// Figure 12: the application-kernel sweep (fence vs OrderLight at every
/// TS size), whose `primitives_per_pim_instr` reproduces the line plot.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig12(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    let mut rows = Vec::new();
    for wl in WorkloadId::APPS {
        for ts in TsSize::ALL {
            for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
                rows.push(run_point(wl, ts, ExecMode::Pim(mode), 16, data_bytes_per_channel)?);
            }
        }
    }
    Ok(rows)
}

/// Figure 13: bandwidth-multiplication-factor sweep (4x/8x/16x) for the
/// Add kernel under fence and OrderLight.
///
/// # Errors
/// Propagates [`SimError`].
pub fn fig13(data_bytes_per_channel: u64) -> Result<Vec<SweepPoint>, SimError> {
    let mut rows = Vec::new();
    for bmf in [4u32, 8, 16] {
        for ts in TsSize::ALL {
            for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
                rows.push(run_point(
                    WorkloadId::Add,
                    ts,
                    ExecMode::Pim(mode),
                    bmf,
                    data_bytes_per_channel,
                )?);
            }
        }
    }
    Ok(rows)
}

/// Figure 11: the DRAM timing window — analytic and micro-simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11 {
    /// Analytic window: tRCDW + 7·tCCD + tWP + tRP.
    pub analytic_window: u64,
    /// The same window measured on the simulated bank state machine.
    pub simulated_window: u64,
    /// Column writes per window.
    pub writes_per_window: u64,
    /// Peak command bandwidth over 16 channels, GC/s.
    pub peak_command_gcs: f64,
}

/// Computes Figure 11 both analytically and by driving the bank state
/// machine, asserting they agree.
#[must_use]
pub fn fig11() -> Fig11 {
    let t = TimingParams::hbm_table1();
    let analytic = t.row_window_writes(8);
    // Micro-sim: stream two rows of 8 writes through one bank and
    // measure the ACT-to-ACT spacing.
    let mut ch = Channel::new(t, 16, 2048);
    let mut now = 0;
    let mut acts = Vec::new();
    for row in 0..2u32 {
        while !ch.try_issue(DramCommand::Activate { bank: BankId(0), row }, now) {
            now += 1;
        }
        acts.push(now);
        let mut writes = 0;
        while writes < 8 {
            if ch.try_issue(DramCommand::column(BankId(0), ColKind::Write), now) {
                writes += 1;
            }
            now += 1;
        }
        while !ch.try_issue(DramCommand::Precharge { bank: BankId(0) }, now) {
            now += 1;
        }
    }
    let simulated = acts[1] - acts[0];
    Fig11 {
        analytic_window: analytic,
        simulated_window: simulated,
        writes_per_window: 8,
        peak_command_gcs: t.peak_command_bandwidth(8, analytic, 16, 850e6) / 1e9,
    }
}

/// The arbitration-granularity ablation (Sections 3.2/3.5): mean host
/// read latency while a PIM kernel saturates the same channels, under
/// fine-grained arbitration (host requests interleave) versus
/// coarse-grained arbitration (host requests blocked until PIM
/// completes, modelled as queueing the host work after the PIM run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbitrationAblation {
    /// Mean host read latency (memory cycles) with fine-grained
    /// arbitration.
    pub fga_mean_host_latency: f64,
    /// Host latency under coarse-grained arbitration: the whole PIM
    /// kernel's execution time stands between the host and its data.
    pub cga_host_wait_cycles: u64,
    /// PIM execution time (core cycles) used for the CGA bound.
    pub pim_exec_cycles: u64,
}

/// Runs the arbitration ablation (see [`ArbitrationAblation`]).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_arbitration(data_bytes_per_channel: u64) -> Result<ArbitrationAblation, SimError> {
    // Fine-grained: host traffic to memory group 1 interleaves with the
    // PIM kernel in group 0. We approximate the host stream with the
    // Copy workload placed in GPU mode on the same system size, and
    // measure its mean service latency when run alone (the FGA latency
    // for group-1 requests is unaffected by group-0 OrderLight packets —
    // asserted by unit tests in `orderlight-memctrl`).
    let mut gpu = ExperimentConfig::new(WorkloadId::Copy, ExecMode::Gpu);
    gpu.data_bytes_per_channel = data_bytes_per_channel;
    let gpu_stats = run_experiment(gpu)?;
    let fga_mean = if gpu_stats.mc.host_reads == 0 {
        0.0
    } else {
        gpu_stats.mc.host_read_latency_sum as f64 / gpu_stats.mc.host_reads as f64
    };
    // Coarse-grained: the host waits out the whole PIM kernel.
    let mut pim = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
    pim.data_bytes_per_channel = data_bytes_per_channel;
    let pim_stats = run_experiment(pim)?;
    Ok(ArbitrationAblation {
        fga_mean_host_latency: fga_mean,
        cga_host_wait_cycles: pim_stats.core_cycles,
        pim_exec_cycles: pim_stats.core_cycles,
    })
}

/// One row of the sequence-number (Kim et al. (paper reference 27)) comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqNumRow {
    /// Configuration label ("orderlight", "seqnum B=8", ...).
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// PIM command bandwidth (GC/s).
    pub command_gcs: f64,
    /// Core cycles stalled waiting for buffer credits.
    pub credit_wait_cycles: u64,
    /// Whether the run verified.
    pub correct: bool,
}

/// The Related Work comparison (Section 8.1): OrderLight versus
/// per-request sequence numbers with credit-based buffer management,
/// sweeping the controller buffer size. Kim et al.'s approach needs
/// memory-side buffering and pays credit round trips; OrderLight's
/// in-band packets need neither.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_seqnum(
    data_bytes_per_channel: u64,
    ts: TsSize,
) -> Result<Vec<SeqNumRow>, SimError> {
    let mut rows = Vec::new();
    let mut base = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
    base.ts_size = ts;
    base.data_bytes_per_channel = data_bytes_per_channel;
    let ol = run_experiment(base.clone())?;
    rows.push(SeqNumRow {
        label: "orderlight".into(),
        exec_time_ms: ol.exec_time_ms,
        command_gcs: ol.command_bandwidth_gcs,
        credit_wait_cycles: 0,
        correct: ol.is_correct(),
    });
    for credits in [4u32, 8, 16, 32, 64] {
        let mut exp = base.clone();
        exp.mode = ExecMode::Pim(OrderingMode::SeqNum);
        exp.seq_credits = credits;
        let stats = run_experiment(exp)?;
        rows.push(SeqNumRow {
            label: format!("seqnum B={credits}"),
            exec_time_ms: stats.exec_time_ms,
            command_gcs: stats.command_bandwidth_gcs,
            credit_wait_cycles: stats.sm.credit_wait_cycles,
            correct: stats.is_correct(),
        });
    }
    Ok(rows)
}

/// The fence-scope ablation (paper Section 4.3): where the fence
/// acknowledgement is generated decides both its cost and its safety.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FenceScopeAblation {
    /// Execution time with the correct issue-to-DRAM fence (ms).
    pub dram_issue_ms: f64,
    /// Mean waiting cycles per fence, issue-to-DRAM scope.
    pub dram_issue_wait: f64,
    /// Whether the issue-to-DRAM run verified.
    pub dram_issue_correct: bool,
    /// Execution time with the L2 ("global serialization point") fence.
    pub l2_ack_ms: f64,
    /// Mean waiting cycles per fence, L2 scope.
    pub l2_ack_wait: f64,
    /// Whether the L2-scope run verified (no guarantee that it does).
    pub l2_ack_correct: bool,
    /// Output stripes that mismatched under the L2-scope fence.
    pub l2_ack_mismatches: u64,
}

/// Runs the fence-scope ablation on the Add kernel.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_fence_scope(
    data_bytes_per_channel: u64,
    ts: TsSize,
) -> Result<FenceScopeAblation, SimError> {
    let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence));
    exp.ts_size = ts;
    exp.data_bytes_per_channel = data_bytes_per_channel;
    let strict = run_experiment(exp.clone())?;
    exp.system.pipe.fence_ack_at_l2 = true;
    let loose = run_experiment(exp)?;
    Ok(FenceScopeAblation {
        dram_issue_ms: strict.exec_time_ms,
        dram_issue_wait: strict.wait_cycles_per_fence(),
        dram_issue_correct: strict.is_correct(),
        l2_ack_ms: loose.exec_time_ms,
        l2_ack_wait: loose.wait_cycles_per_fence(),
        l2_ack_correct: loose.is_correct(),
        l2_ack_mismatches: loose.verified_mismatches,
    })
}

/// A CPU-host system configuration, following the paper's conclusion:
/// the innovations apply to out-of-order CPUs, whose renaming units and
/// reservation stations play the operand collector's role and whose
/// fence overheads are still on the order of 100 cycles. We model the
/// CPU host with the same structures under CPU parameters: a short
/// uncore path to the controller (L3 + mesh instead of a GPU
/// interconnect), wide issue, reservation-station-sized collectors, and
/// one hardware context per channel.
#[must_use]
pub fn cpu_host_config() -> SystemConfig {
    // 2 GHz cores, eight of them driving two channels each.
    let mut sys = SystemConfig {
        core_freq_hz: 2.0e9,
        total_sms: 8,
        sms_used: 8,
        warps_per_sm: 2,
        ..SystemConfig::default()
    };
    // Uncore: core -> L3 slice -> memory controller.
    sys.pipe.icnt_latency = 40;
    sys.pipe.sub_latency = 4;
    sys.pipe.l2_out_latency = 20;
    sys.pipe.return_latency = 60;
    // Reservation stations instead of collector units.
    sys.sm.issue_width = 4;
    sys.sm.oc_capacity = 48;
    sys.sm.oc_latency = 2;
    sys.sm.ldst_capacity = 32;
    sys
}

/// One row of the CPU-host applicability study.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuHostRow {
    /// Ordering primitive label.
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// Mean waiting cycles per fence.
    pub wait_per_fence: f64,
    /// Whether the run verified.
    pub correct: bool,
}

/// Runs the Add kernel on the CPU-host configuration under fences and
/// OrderLight (paper Conclusion: fence overheads on OoO CPUs are still
/// ~100 cycles, and the operand-collector gating maps onto reservation
/// stations).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_cpu_host(
    data_bytes_per_channel: u64,
    ts: TsSize,
) -> Result<Vec<CpuHostRow>, SimError> {
    let mut rows = Vec::new();
    for mode in [OrderingMode::Fence, OrderingMode::OrderLight] {
        let mut exp = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(mode));
        exp.system = cpu_host_config();
        exp.ts_size = ts;
        exp.data_bytes_per_channel = data_bytes_per_channel;
        // CPU allocation is fixed; skip the GPU SM policy.
        let b = 200_000_000 + exp.stripes_per_channel() * 20_000;
        let stats = System::build(exp).map_err(|e| SimError::from_config(&e))?.run(b)?;
        rows.push(CpuHostRow {
            label: format!("cpu {mode}"),
            exec_time_ms: stats.exec_time_ms,
            wait_per_fence: stats.wait_cycles_per_fence(),
            correct: stats.is_correct(),
        });
    }
    Ok(rows)
}

/// One row of the scheduler-knob ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRow {
    /// Knob setting label.
    pub label: String,
    /// OrderLight (single-bank PIM stream) command bandwidth, GC/s.
    pub pim_command_gcs: f64,
    /// GPU-baseline (multi-bank host stream) execution time, ms.
    pub host_exec_ms: f64,
    /// GPU-baseline row activations (locality proxy: fewer is better).
    pub host_activates: u64,
}

/// Sweeps the controller design knobs DESIGN.md calls out — FR-FCFS
/// scan depth and per-bank command-queue capacity.
///
/// Two traffic classes react very differently: the ordered single-bank
/// PIM stream is insensitive (the OrderLight barriers already pin the
/// schedule — itself a useful observation), while the GPU baseline's
/// multi-bank host stream relies on the scan window for bank-level
/// parallelism and row locality.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_scheduler(data_bytes_per_channel: u64) -> Result<Vec<SchedulerRow>, SimError> {
    let mut rows = Vec::new();
    let mut run_with = |label: String, scan_depth: usize, bank_q: usize| -> Result<(), SimError> {
        let mut pim =
            ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        pim.data_bytes_per_channel = data_bytes_per_channel;
        pim.system.mc.scan_depth = scan_depth;
        pim.system.mc.bank_queue_capacity = bank_q;
        let pim_stats = run_experiment(pim)?;
        let mut host = ExperimentConfig::new(WorkloadId::Add, ExecMode::Gpu);
        host.data_bytes_per_channel = data_bytes_per_channel / 4;
        host.system.mc.scan_depth = scan_depth;
        host.system.mc.bank_queue_capacity = bank_q;
        let host_stats = run_experiment(host)?;
        rows.push(SchedulerRow {
            label,
            pim_command_gcs: pim_stats.command_bandwidth_gcs,
            host_exec_ms: host_stats.exec_time_ms,
            host_activates: host_stats.mc.activates,
        });
        Ok(())
    };
    for scan in [1usize, 4, 16, 64] {
        run_with(format!("scan_depth={scan}"), scan, 4)?;
    }
    for bq in [1usize, 2, 4, 8] {
        run_with(format!("bank_queue={bq}"), 16, bq)?;
    }
    Ok(rows)
}

/// One row of the refresh ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshRow {
    /// Configuration label.
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// OrderLight command bandwidth (GC/s).
    pub command_gcs: f64,
    /// Whether the run verified.
    pub correct: bool,
}

/// Quantifies what the paper's (and most PIM studies') no-refresh
/// methodology hides: the Add kernel under OrderLight with all-bank
/// refresh off versus HBM2-like tREFI/tRFC.
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_refresh(data_bytes_per_channel: u64) -> Result<Vec<RefreshRow>, SimError> {
    let mut rows = Vec::new();
    for (label, refresh) in [
        ("no refresh (paper)", None),
        ("HBM2 refresh", Some(orderlight_hbm::RefreshParams::hbm2())),
    ] {
        let mut exp =
            ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        exp.data_bytes_per_channel = data_bytes_per_channel;
        exp.system.refresh = refresh;
        let stats = run_experiment(exp)?;
        rows.push(RefreshRow {
            label: label.to_string(),
            exec_time_ms: stats.exec_time_ms,
            command_gcs: stats.command_bandwidth_gcs,
            correct: stats.is_correct(),
        });
    }
    Ok(rows)
}

/// One row of the page-policy ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PagePolicyRow {
    /// `workload / policy` label.
    pub label: String,
    /// Execution time (ms).
    pub exec_time_ms: f64,
    /// Row activations issued.
    pub activates: u64,
}

/// Open-page versus closed-page row management under OrderLight, on a
/// streaming kernel (Add: rewards open rows) and an irregular one
/// (Gen_Fil: random 128 B probes rarely revisit a row).
///
/// # Errors
/// Propagates [`SimError`].
pub fn ablation_page_policy(data_bytes_per_channel: u64) -> Result<Vec<PagePolicyRow>, SimError> {
    use orderlight_memctrl::PagePolicy;
    let mut rows = Vec::new();
    for wl in [WorkloadId::Add, WorkloadId::GenFil] {
        for policy in [PagePolicy::Open, PagePolicy::Closed] {
            let mut exp = ExperimentConfig::new(wl, ExecMode::Pim(OrderingMode::OrderLight));
            exp.data_bytes_per_channel = data_bytes_per_channel;
            exp.system.mc.page_policy = policy;
            let stats = run_experiment(exp)?;
            rows.push(PagePolicyRow {
                label: format!("{wl} / {policy:?}"),
                exec_time_ms: stats.exec_time_ms,
                activates: stats.mc.activates,
            });
        }
    }
    Ok(rows)
}

/// Table 1 as printable rows (configuration echo).
#[must_use]
pub fn table1() -> Vec<(String, String)> {
    let c = SystemConfig::default();
    let t = c.timing;
    vec![
        ("GPU model".into(), "Volta Titan V (modelled)".into()),
        ("Number of SMs".into(), c.total_sms.to_string()),
        ("Core frequency".into(), format!("{} MHz", c.core_freq_hz / 1e6)),
        ("Memory model".into(), "HBM".into()),
        ("Memory channels".into(), c.channels.to_string()),
        ("Banks per channel".into(), c.banks_per_channel.to_string()),
        ("Memory frequency".into(), format!("{} MHz", c.mem_freq_hz / 1e6)),
        ("DRAM bus width".into(), "32B".into()),
        ("Memory scheduler".into(), "FRFCFS".into()),
        ("R/W queue size".into(), c.mc.queue_capacity.to_string()),
        ("L2 queue size".into(), (c.pipe.sub_capacity * 2).to_string()),
        ("Interconnect to L2 latency".into(), format!("{} cycles", c.pipe.icnt_latency)),
        ("L2 to DRAM scheduler latency".into(), format!("{} cycles", c.pipe.l2_out_latency)),
        (
            "Memory timing".into(),
            format!(
                "CCD={}:RRD={}:RCDW={}:RAS={}:RP={}:CL={}:WL={}:CDLR={}:WR={}:CCDL={}:WTP={}",
                t.ccd, t.rrd, t.rcd_wr, t.ras, t.rp, t.cl, t.wl, t.cdlr, t.wr, t.ccdl, t.wtp
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_analytic_matches_simulation() {
        let f = fig11();
        assert_eq!(f.analytic_window, 44);
        assert_eq!(f.simulated_window, 44);
        assert!((f.peak_command_gcs - 2.47).abs() < 0.05);
    }

    #[test]
    fn sm_policy_follows_the_paper() {
        let mut e = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence));
        apply_sm_policy(&mut e);
        assert_eq!((e.system.sms_used, e.system.warps_per_sm), (2, 8));
        let mut e = ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        apply_sm_policy(&mut e);
        assert_eq!((e.system.sms_used, e.system.warps_per_sm), (8, 2));
    }

    #[test]
    fn table1_echoes_the_paper() {
        let rows = table1();
        let get = |k: &str| rows.iter().find(|(a, _)| a == k).unwrap().1.clone();
        assert_eq!(get("Number of SMs"), "80");
        assert_eq!(get("Memory channels"), "16");
        assert_eq!(get("R/W queue size"), "64");
        assert!(get("Memory timing").contains("RCDW=9"));
        assert!(get("Memory timing").contains("WTP=9"));
    }

    #[test]
    fn run_point_produces_consistent_labels() {
        let p = run_point(
            WorkloadId::Scale,
            TsSize::Quarter,
            ExecMode::Pim(OrderingMode::OrderLight),
            16,
            8 * 1024,
        )
        .unwrap();
        assert_eq!(p.workload, "Scale");
        assert_eq!(p.ts, "1/4 RB");
        assert_eq!(p.mode, "pim-orderlight");
        assert!(p.stats.is_correct());
    }
}
