//! The typed front door for assembling and running experiments.
//!
//! [`ScenarioBuilder`] gathers everything a run needs — workload,
//! execution mode, kernel parameters, system overrides, execution core,
//! worker count, trace sink, fault plan and cycle budget — into one
//! validated [`Scenario`]. It replaces the historical pattern of
//! mutating an [`ExperimentConfig`] field by field and threading core /
//! jobs / sink selections through ad-hoc arguments and environment
//! variables: the CLI, the bench binaries and the experiment runners
//! all build a `Scenario` and call [`Scenario::run`].
//!
//! ```
//! use orderlight_sim::scenario::ScenarioBuilder;
//! use orderlight_sim::config::ExecMode;
//! use orderlight_workloads::{OrderingMode, WorkloadId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stats = ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight))
//!     .data_bytes_per_channel(8 * 1024) // keep the doctest fast
//!     .build()?
//!     .run()?;
//! assert!(stats.is_correct());
//! # Ok(())
//! # }
//! ```

use crate::config::{ExecMode, ExperimentConfig, SystemConfig};
use crate::core_select::{resolve_core, SimCore};
use crate::experiments::apply_sm_policy;
use crate::pool::{resolve_jobs, Pool};
use crate::stats::RunStats;
use crate::system::{SimError, System};
use orderlight::fault::FaultPlan;
use orderlight::ConfigError;
use orderlight_pim::TsSize;
use orderlight_trace::SharedSink;
use orderlight_workloads::WorkloadId;

/// Default cycle budget for a scenario: generous headroom plus a
/// per-stripe allowance (a run that exceeds it is treated as a
/// deadlock).
#[must_use]
pub fn default_budget(exp: &ExperimentConfig) -> u64 {
    200_000_000 + exp.stripes_per_channel() * 20_000
}

/// A fully-specified, validated run. Build one with [`ScenarioBuilder`].
#[derive(Debug, Clone)]
pub struct Scenario {
    exp: ExperimentConfig,
    core: Option<SimCore>,
    jobs: Option<usize>,
    faults: FaultPlan,
    sink: Option<SharedSink>,
    budget: Option<u64>,
}

impl Scenario {
    /// The underlying experiment configuration.
    #[must_use]
    pub fn experiment(&self) -> &ExperimentConfig {
        &self.exp
    }

    /// The fault plan (noop unless the builder set one).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The execution core this scenario resolves to: the builder's
    /// explicit choice, else the process override / `ORDERLIGHT_CORE` /
    /// default chain of [`resolve_core`].
    #[must_use]
    pub fn core(&self) -> SimCore {
        resolve_core(self.core)
    }

    /// The worker count for sweeps: the builder's explicit choice, else
    /// the `ORDERLIGHT_JOBS` / available-parallelism chain of
    /// [`resolve_jobs`].
    #[must_use]
    pub fn jobs(&self) -> usize {
        resolve_jobs(self.jobs)
    }

    /// A [`Pool`] sized to [`Scenario::jobs`].
    #[must_use]
    pub fn pool(&self) -> Pool {
        Pool::new(self.jobs())
    }

    /// The cycle budget: the builder's explicit choice, else
    /// [`default_budget`].
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget.unwrap_or_else(|| default_budget(&self.exp))
    }

    /// Builds the [`System`] for this scenario: constructs it from the
    /// experiment, applies the fault plan, and attaches the trace sink
    /// (if any). The caller owns the run loop — [`Scenario::run`] is the
    /// packaged version.
    ///
    /// # Errors
    /// Returns [`SimError`] if the experiment fails to build.
    pub fn system(&self) -> Result<System, SimError> {
        let mut sys =
            System::build(self.exp.clone()).map_err(|e| SimError::config(e.to_string()))?;
        sys.apply_faults(&self.faults);
        if let Some(sink) = &self.sink {
            sys.attach_sink(sink.clone());
        }
        Ok(sys)
    }

    /// Builds, runs to completion on [`Scenario::core`], and verifies.
    ///
    /// # Errors
    /// Returns [`SimError`] on build failure or budget exhaustion.
    pub fn run(&self) -> Result<RunStats, SimError> {
        let mut sys = self.system()?;
        sys.run_with(self.budget(), self.core())
    }

    /// The canonical scenario hash — the service-cache key.
    ///
    /// Folds every **semantic** input of a run (workload, mode, TS
    /// size, BMF, job size, credits, the resolved cycle budget, the
    /// fault plan and the full system configuration) through SplitMix64,
    /// each field salted with its name. Two scenarios that would produce
    /// the same [`RunStats`] by construction hash equal no matter how
    /// they were spelled (JSON field order, `data_kb` vs `data_bytes`,
    /// defaults left implicit vs written out), and changing any single
    /// field changes the hash.
    ///
    /// Execution knobs that provably do *not* affect results are
    /// excluded: the core (cycle/event bit-identity contract), the
    /// worker count (pool purity contract) and the trace sink
    /// (observe-only contract). This is what makes a cache reply exact:
    /// `System::run` is a pure function of exactly the hashed fields.
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        let mut h = fold_str(0x6f72_6465_726c_6967, "orderlight/scenario/v1");
        h = fold_str(h, "workload");
        h = fold_str(h, self.exp.workload.meta().name);
        h = fold_str(h, "mode");
        h = fold_str(h, &self.exp.mode.to_string());
        h = fold_u64(fold_str(h, "ts"), self.exp.ts_size.denominator());
        h = fold_u64(fold_str(h, "bmf"), u64::from(self.exp.bmf));
        h = fold_u64(fold_str(h, "data_bytes"), self.exp.data_bytes_per_channel);
        h = fold_u64(fold_str(h, "credits"), u64::from(self.exp.seq_credits));
        h = fold_u64(fold_str(h, "budget"), self.budget());
        // The fault plan and system configuration are folded through
        // their derived Debug forms: every public knob appears there, so
        // a change to any nested field (scheduler depth, refresh window,
        // pipe latency, jitter bound ...) perturbs the hash without this
        // function having to enumerate — and chase — them all.
        h = fold_str(fold_str(h, "faults"), &format!("{:?}", self.faults));
        fold_str(fold_str(h, "system"), &format!("{:?}", self.exp.system))
    }

    /// Like [`Scenario::run`], but also returns the system's clock
    /// domains — exporters need them to place core- and memory-clocked
    /// trace events on one time axis.
    ///
    /// # Errors
    /// Returns [`SimError`] on build failure or budget exhaustion.
    pub fn run_with_clocks(&self) -> Result<(RunStats, orderlight_trace::ClockDomains), SimError> {
        let mut sys = self.system()?;
        let clocks = sys.clock_domains();
        let stats = sys.run_with(self.budget(), self.core())?;
        Ok((stats, clocks))
    }
}

/// One SplitMix64 step: scrambles the accumulated state with the next
/// 64-bit word. The underlying generator passes BigCrush, so single-bit
/// input changes diffuse through the whole state.
fn fold_u64(h: u64, v: u64) -> u64 {
    orderlight::rng::Rng::new(h ^ v).next_u64()
}

/// Folds a string: its length, then each 8-byte chunk (zero-padded).
/// The length prefix keeps `("ab", "c")` and `("a", "bc")` distinct
/// across adjacent folds.
fn fold_str(h: u64, s: &str) -> u64 {
    let mut h = fold_u64(h, s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold_u64(h, u64::from_le_bytes(word));
    }
    h
}

/// Builder for [`Scenario`] — the single typed entry point for
/// configuring a run (see the module docs).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    exp: ExperimentConfig,
    sm_policy: bool,
    core: Option<SimCore>,
    jobs: Option<usize>,
    faults: FaultPlan,
    sink: Option<SharedSink>,
    budget: Option<u64>,
}

impl ScenarioBuilder {
    /// Starts from the paper defaults for `workload` under `mode`. The
    /// paper's SM-allocation policy ([`apply_sm_policy`]) is applied at
    /// [`build`](Self::build) time unless
    /// [`keep_sm_allocation`](Self::keep_sm_allocation) is called.
    #[must_use]
    pub fn new(workload: WorkloadId, mode: ExecMode) -> Self {
        Self::from_experiment(ExperimentConfig::new(workload, mode))
    }

    /// Wraps an existing experiment configuration — the migration path
    /// for call sites that already hold an [`ExperimentConfig`].
    #[must_use]
    pub fn from_experiment(exp: ExperimentConfig) -> Self {
        ScenarioBuilder {
            exp,
            sm_policy: true,
            core: None,
            jobs: None,
            faults: FaultPlan::none(),
            sink: None,
            budget: None,
        }
    }

    /// Sets the PIM temporary-storage size (ignored in GPU mode).
    #[must_use]
    pub fn ts_size(mut self, ts: TsSize) -> Self {
        self.exp.ts_size = ts;
        self
    }

    /// Sets the bandwidth multiplication factor.
    #[must_use]
    pub fn bmf(mut self, bmf: u32) -> Self {
        self.exp.bmf = bmf;
        self
    }

    /// Sets the bytes per data structure per channel.
    #[must_use]
    pub fn data_bytes_per_channel(mut self, bytes: u64) -> Self {
        self.exp.data_bytes_per_channel = bytes;
        self
    }

    /// Sets the data size in KiB per structure per channel.
    #[must_use]
    pub fn data_kb(self, kb: u64) -> Self {
        self.data_bytes_per_channel(kb * 1024)
    }

    /// Sets the sequence-number baseline's credit count.
    #[must_use]
    pub fn seq_credits(mut self, credits: u32) -> Self {
        self.exp.seq_credits = credits;
        self
    }

    /// Replaces the whole system configuration (implies the caller owns
    /// the SM allocation: the paper policy is skipped).
    #[must_use]
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.exp.system = system;
        self.sm_policy = false;
        self
    }

    /// Adjusts the system configuration in place — for nested knobs
    /// (scheduler depths, pipe latencies, refresh parameters) without
    /// rebuilding the whole [`SystemConfig`].
    #[must_use]
    pub fn tune_system(mut self, f: impl FnOnce(&mut SystemConfig)) -> Self {
        f(&mut self.exp.system);
        self
    }

    /// Keeps the current SM allocation instead of applying the paper's
    /// mode-dependent policy at build time.
    #[must_use]
    pub fn keep_sm_allocation(mut self) -> Self {
        self.sm_policy = false;
        self
    }

    /// Pins the execution core (otherwise the [`resolve_core`] chain
    /// decides at run time).
    #[must_use]
    pub fn core(mut self, core: SimCore) -> Self {
        self.core = Some(core);
        self
    }

    /// Pins the sweep worker count (otherwise the [`resolve_jobs`]
    /// chain decides).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Installs a fault plan (see [`FaultPlan`]); [`FaultPlan::none`]
    /// by default.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Re-seeds the current fault plan's master seed without changing
    /// which layers are enabled.
    #[must_use]
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.faults.seed = seed;
        self
    }

    /// Attaches a trace sink to the built systems. Sinks observe the
    /// same event stream under either core — see
    /// [`System::attach_sink`].
    #[must_use]
    pub fn trace(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Overrides the cycle budget ([`default_budget`] otherwise).
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Applies the SM policy (unless disabled), validates, and returns
    /// the immutable [`Scenario`].
    ///
    /// # Errors
    /// Returns [`ConfigError`] naming the offending value if the
    /// assembled experiment is inconsistent.
    pub fn build(self) -> Result<Scenario, ConfigError> {
        let ScenarioBuilder { mut exp, sm_policy, core, jobs, faults, sink, budget } = self;
        if sm_policy {
            apply_sm_policy(&mut exp);
        }
        exp.validate()?;
        Ok(Scenario { exp, core, jobs, faults, sink, budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight_workloads::OrderingMode;

    #[test]
    fn builder_applies_the_sm_policy_by_default() {
        let s = ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence))
            .data_kb(8)
            .build()
            .unwrap();
        assert_eq!(s.experiment().system.sms_used, 2);
        assert_eq!(s.experiment().system.warps_per_sm, 8);
        let s = ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence))
            .data_kb(8)
            .keep_sm_allocation()
            .build()
            .unwrap();
        assert_eq!(s.experiment().system.sms_used, SystemConfig::default().sms_used);
    }

    #[test]
    fn builder_rejects_invalid_configs_with_values() {
        let err = ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight))
            .bmf(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("bmf = 0"), "got: {err}");
    }

    #[test]
    fn scenario_run_matches_the_legacy_path() {
        let mut exp =
            ExperimentConfig::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        exp.data_bytes_per_channel = 8 * 1024;
        let legacy = crate::experiments::run_experiment(exp).unwrap();
        let scenario =
            ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight))
                .data_kb(8)
                .build()
                .unwrap();
        assert_eq!(scenario.run().unwrap(), legacy);
    }

    #[test]
    fn fault_seed_reseeds_without_toggling_layers() {
        let s = ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight))
            .faults(FaultPlan::stress(7))
            .fault_seed(9)
            .build()
            .unwrap();
        assert_eq!(s.faults().seed, 9);
        assert!(s.faults().sched_adversary);
    }

    #[test]
    fn canonical_hash_ignores_spelling_but_not_semantics() {
        use crate::schema::ScenarioSpec;
        // Three textually different documents for the same scenario:
        // reordered fields, data_kb vs data_bytes, defaults explicit vs
        // implicit (bmf/credits/mode written out vs omitted).
        let texts = [
            r#"{"schema": "orderlight/scenario/v1", "workload": "Add", "data_kb": 8}"#,
            r#"{"data_bytes": 8192, "workload": "add", "schema": "orderlight/scenario/v1"}"#,
            concat!(
                r#"{"schema": "orderlight/scenario/v1", "mode": "orderlight", "bmf": 16,"#,
                r#" "credits": 32, "ts": 8, "workload": "Add", "data_kb": 8}"#
            ),
        ];
        let hashes: Vec<u64> = texts
            .iter()
            .map(|t| ScenarioSpec::parse_str(t).unwrap().build().unwrap().canonical_hash())
            .collect();
        assert_eq!(hashes[0], hashes[1], "data_kb vs data_bytes must not matter");
        assert_eq!(hashes[0], hashes[2], "explicit defaults must not matter");
        // Execution knobs excluded from the key: core and jobs.
        let base = ScenarioSpec::parse_str(texts[0]).unwrap();
        let tuned = base.builder().core(SimCore::Cycle).jobs(7).build().unwrap();
        assert_eq!(tuned.canonical_hash(), hashes[0]);
    }

    #[test]
    fn canonical_hash_changes_with_every_field() {
        let base = || {
            ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight))
                .data_kb(8)
        };
        let h0 = base().build().unwrap().canonical_hash();
        let variants = [
            (
                "workload",
                ScenarioBuilder::new(WorkloadId::Copy, ExecMode::Pim(OrderingMode::OrderLight))
                    .data_kb(8),
            ),
            (
                "mode",
                ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence))
                    .data_kb(8),
            ),
            ("ts", base().ts_size(TsSize::Half)),
            ("bmf", base().bmf(4)),
            ("data", base().data_kb(16)),
            ("credits", base().seq_credits(8)),
            ("budget", base().budget(123_456)),
            ("faults", base().faults(FaultPlan::stress(3))),
            ("fault_seed", base().faults(FaultPlan::stress(4))),
            ("system", base().tune_system(|sys| sys.mc.scan_depth = 3)),
        ];
        let mut seen = vec![h0];
        for (name, builder) in variants {
            let h = builder.build().unwrap().canonical_hash();
            assert!(!seen.contains(&h), "'{name}' change did not change the hash");
            seen.push(h);
        }
    }

    #[test]
    fn tune_system_reaches_nested_knobs() {
        let s = ScenarioBuilder::new(WorkloadId::Add, ExecMode::Gpu)
            .data_kb(4)
            .tune_system(|sys| sys.mc.scan_depth = 3)
            .build()
            .unwrap();
        assert_eq!(s.experiment().system.mc.scan_depth, 3);
    }
}
