//! Simulation-core selection: dense cycle stepping vs event-driven
//! time skipping.
//!
//! [`crate::System`] has two bit-identical execution cores (see
//! `DESIGN.md`, "Quiescence contract"):
//!
//! * [`SimCore::Cycle`] — the classic dense loop: every core cycle and
//!   every memory cycle is ticked.
//! * [`SimCore::Event`] — between interesting cycles the system asks
//!   every component for its quiescence horizon
//!   ([`orderlight::NextEvent`]) and jumps straight to the global
//!   minimum, charging stall counters in closed form for the skipped
//!   span.
//!
//! Selection mirrors the `--jobs` / `ORDERLIGHT_JOBS` convention from
//! [`crate::pool`]: an explicit `--core` flag wins, then a
//! process-global override (set by binaries and tests instead of the
//! unsafe-in-threads `std::env::set_var`), then the `ORDERLIGHT_CORE`
//! environment variable, then the default — the event core.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which execution core [`crate::System::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimCore {
    /// Dense per-cycle stepping.
    Cycle,
    /// Event-driven time skipping (bit-identical to `Cycle`; the
    /// default).
    #[default]
    Event,
}

impl SimCore {
    /// Parses `"cycle"` or `"event"` (the `--core` / `ORDERLIGHT_CORE`
    /// spellings).
    ///
    /// # Errors
    /// Returns a message naming the bad value.
    pub fn parse(s: &str) -> Result<SimCore, String> {
        match s {
            "cycle" => Ok(SimCore::Cycle),
            "event" => Ok(SimCore::Event),
            other => Err(format!("invalid core '{other}' (expected 'cycle' or 'event')")),
        }
    }

    /// The canonical spelling, as accepted by [`SimCore::parse`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimCore::Cycle => "cycle",
            SimCore::Event => "event",
        }
    }
}

/// Process-global override: 0 = unset, 1 = cycle, 2 = event.
static CORE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Sets (or with `None` clears) a process-global core override. Sits
/// between an explicit flag and the `ORDERLIGHT_CORE` environment
/// variable in [`resolve_core`]'s precedence order; exists so tests
/// and binaries can steer core selection without mutating the process
/// environment (which is unsound once threads exist).
pub fn set_core_override(core: Option<SimCore>) {
    let v = match core {
        None => 0,
        Some(SimCore::Cycle) => 1,
        Some(SimCore::Event) => 2,
    };
    CORE_OVERRIDE.store(v, Ordering::Relaxed);
}

fn core_override() -> Option<SimCore> {
    match CORE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(SimCore::Cycle),
        2 => Some(SimCore::Event),
        _ => None,
    }
}

/// Resolves a `--core` setting: `Some` from a flag, else the
/// [`set_core_override`] process override, else the `ORDERLIGHT_CORE`
/// environment variable (ignored when unparseable), else
/// [`SimCore::Event`].
#[must_use]
pub fn resolve_core(flag: Option<SimCore>) -> SimCore {
    flag.or_else(core_override)
        .or_else(|| std::env::var("ORDERLIGHT_CORE").ok().and_then(|v| SimCore::parse(&v).ok()))
        .unwrap_or_default()
}

/// Extracts `--core NAME` from a raw argument list, returning the
/// remaining arguments and the resolved core. Shared by the
/// figure-regeneration binaries and the `orderlight` CLI.
///
/// # Errors
/// Returns a message when the flag has a missing or invalid value.
pub fn take_core_flag(args: &[String]) -> Result<(Vec<String>, SimCore), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut flag = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--core" {
            let Some(v) = it.next() else {
                return Err(format!("missing value for {a}"));
            };
            flag = Some(SimCore::parse(v)?);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, resolve_core(flag)))
}

/// Core for a standalone sweep binary: parses `--core NAME` from the
/// process arguments (exiting with status 2 on a malformed flag, like
/// a usage error), falling back to `ORDERLIGHT_CORE`, then to the
/// default event core. The chosen core is also installed as the
/// process override so every `System` the binary constructs uses it.
#[must_use]
pub fn core_from_process_args() -> SimCore {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match take_core_flag(&args) {
        Ok((_, core)) => {
            set_core_override(Some(core));
            core
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for core in [SimCore::Cycle, SimCore::Event] {
            assert_eq!(SimCore::parse(core.as_str()), Ok(core));
        }
        assert!(SimCore::parse("dense").is_err());
        assert!(SimCore::parse("").is_err());
    }

    #[test]
    fn explicit_flag_beats_override() {
        // Serialised against other tests by not touching the override
        // except under a restore guard.
        set_core_override(Some(SimCore::Cycle));
        assert_eq!(resolve_core(Some(SimCore::Event)), SimCore::Event);
        assert_eq!(resolve_core(None), SimCore::Cycle);
        set_core_override(None);
    }

    #[test]
    fn take_core_flag_parses_and_strips() {
        let args: Vec<String> =
            ["--data-kb", "8", "--core", "cycle", "x"].iter().map(ToString::to_string).collect();
        let (rest, core) = take_core_flag(&args).unwrap();
        assert_eq!(core, SimCore::Cycle);
        assert_eq!(rest, vec!["--data-kb", "8", "x"]);
        assert!(take_core_flag(&["--core".into()]).is_err(), "missing value");
        assert!(take_core_flag(&["--core".into(), "dense".into()]).is_err(), "bad value");
    }
}
