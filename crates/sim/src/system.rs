//! System assembly and the dual-clock simulation loop.
//!
//! [`System::run`] executes on one of two bit-identical cores (see
//! `DESIGN.md`, "Quiescence contract"): the dense [`System::step_cycle`]
//! loop, or the event-driven calendar loop (`run_event`) that keeps one
//! pending wake-up cycle per component in a [`Calendar`] bucket queue,
//! jumps the clocks straight to the earliest one, and touches only the
//! components due (or woken) on each executed cycle — every other
//! component catches up lazily in closed form when it is next involved.

use crate::calendar::Calendar;
use crate::config::{ExecMode, ExperimentConfig};
use crate::core_select::{resolve_core, SimCore};
use crate::stats::RunStats;
use orderlight::fault::{FaultLayer, FaultPlan};
use orderlight::types::{ChannelId, CoreCycle, GlobalWarpId, MemCycle, MemGroupId};
use orderlight::{ConfigError, InstrStream, MemReq, NextEvent};
use orderlight_gpu::{Sm, SmStats, Warp};
use orderlight_hbm::Channel;
use orderlight_memctrl::{McConfig, McStats, MemoryController};
use orderlight_noc::MemoryPipe;
use orderlight_pim::PimUnit;
use orderlight_workloads::WorkloadInstance;
use std::error::Error;
use std::fmt;

/// Requests an SM may hand to the pipes per core cycle.
const LDST_DRAIN_PER_CYCLE: usize = 2;
/// Requests a pipe may hand to its controller per core cycle.
const MC_INGEST_PER_CYCLE: usize = 2;

/// A simulation failure (deadlock / cycle-budget exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    message: String,
}

impl SimError {
    fn new(message: impl Into<String>) -> Self {
        SimError { message: message.into() }
    }

    /// Wraps a configuration problem as a simulation error — used by
    /// harness crates that fold a build failure into the run's error
    /// channel.
    #[must_use]
    pub fn config(message: impl Into<String>) -> Self {
        SimError::new(message)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl Error for SimError {}

/// The assembled system under test.
pub struct System {
    exp: ExperimentConfig,
    instance: WorkloadInstance,
    sms: Vec<Sm>,
    pipes: Vec<MemoryPipe>,
    mcs: Vec<MemoryController>,
    now: CoreCycle,
    mem_now: MemCycle,
    clock_acc: u64,
    core_hz: u64,
    mem_hz: u64,
    /// When recording, the core cycles the event core executed densely
    /// (the boundaries of its skipped windows). `None` = off.
    skip_log: Option<Vec<CoreCycle>>,
}

/// Scratch state of one event-core run: the calendar of per-component
/// wake-ups, each component's lazy sync point (the first cycle of its
/// clock domain not yet accounted to it), and the per-cycle due/touched
/// masks. Component ids are `0..sms`, then pipes, then controllers.
struct EventState {
    cal: Calendar,
    due: Vec<u32>,
    sm_synced: Vec<CoreCycle>,
    pipe_synced: Vec<CoreCycle>,
    mc_synced: Vec<MemCycle>,
    due_sm: Vec<bool>,
    due_pipe: Vec<bool>,
    touched_sm: Vec<bool>,
    touched_pipe: Vec<bool>,
    touched_mc: Vec<bool>,
    pushed_pipe: Vec<bool>,
    delivered_sm: Vec<bool>,
}

impl System {
    /// Builds the system for an experiment: constructs the workload
    /// instance, pins one warp per channel across the configured SMs,
    /// and initialises the DRAM functional stores with the input data.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if the experiment is inconsistent.
    pub fn build(exp: ExperimentConfig) -> Result<System, ConfigError> {
        exp.validate()?;
        let sys = &exp.system;
        // Host data interleaves across the group's banks for bank-level
        // parallelism and is processed by all configured warps; PIM uses
        // the paper's single-bank placement and one warp per channel.
        let total_warps = sys.sms_used * sys.warps_per_sm;
        let (interleave, host_slices) = match exp.mode {
            ExecMode::Gpu => {
                (sys.groups.banks_per_group() as u64, (total_warps / sys.channels).max(1) as u64)
            }
            ExecMode::Pim(_) => (1, 1),
        };
        let instance = WorkloadInstance::with_placement(
            exp.workload,
            sys.mapping.clone(),
            &sys.groups,
            exp.ts_stripes(),
            exp.stripes_per_channel(),
            match exp.mode {
                ExecMode::Gpu => orderlight_workloads::OrderingMode::None,
                ExecMode::Pim(mode) => mode,
            },
            interleave,
            host_slices,
        );
        Self::assemble(exp, instance)
    }

    /// Builds the system around a caller-supplied workload instance —
    /// the entry point for *custom* kernels built with
    /// [`orderlight_workloads::KernelBuilder`] and instantiated via
    /// [`WorkloadInstance::custom`]. Only PIM execution modes are
    /// supported (custom host baselines would need the instance's slice
    /// placement to match the SM allocation), and the instance's
    /// ordering mode must agree with the experiment's.
    ///
    /// # Errors
    /// Returns [`ConfigError`] on mode mismatch or an invalid system.
    pub fn build_custom(
        exp: ExperimentConfig,
        instance: WorkloadInstance,
    ) -> Result<System, ConfigError> {
        exp.system.validate()?;
        let ExecMode::Pim(mode) = exp.mode else {
            return Err(ConfigError::new("custom kernels support PIM modes only"));
        };
        if instance.mode() != mode {
            return Err(ConfigError::new(
                "the instance's ordering mode must match the experiment's",
            ));
        }
        Self::assemble(exp, instance)
    }

    /// Wires SMs, pipes and controllers around `instance`.
    fn assemble(exp: ExperimentConfig, instance: WorkloadInstance) -> Result<System, ConfigError> {
        let sys = &exp.system;
        let total_warps = sys.sms_used * sys.warps_per_sm;
        let warp_count = match exp.mode {
            ExecMode::Gpu => (total_warps / sys.channels).max(1) * sys.channels,
            ExecMode::Pim(_) => sys.channels,
        };
        // The sequence-number baseline gates the core on buffer credits
        // and makes the controller dequeue/issue strictly in order.
        let seq_mode =
            matches!(exp.mode, ExecMode::Pim(orderlight_workloads::OrderingMode::SeqNum));
        let sm_cfg =
            orderlight_gpu::SmConfig { credits: seq_mode.then_some(exp.seq_credits), ..sys.sm };
        // Map the workload's ordering mode onto the controller backend
        // (see [`ExecMode::ordering_backend`] for the full table).
        let ordering = exp.mode.ordering_backend();

        // Warp w drives channel w % channels (slice w / channels when
        // several warps cooperate per channel), packed across the SMs.
        let mut sms = Vec::with_capacity(sys.sms_used);
        let mut w = 0usize;
        for sm_idx in 0..sys.sms_used {
            let mut warps = Vec::new();
            for warp_idx in 0..sys.warps_per_sm {
                if w >= warp_count {
                    break;
                }
                let channel = ChannelId((w % sys.channels) as u8);
                let slice = (w / sys.channels) as u64;
                let program: Box<dyn InstrStream> = match exp.mode {
                    ExecMode::Gpu => Box::new(instance.host_stream_slice(channel, slice)),
                    ExecMode::Pim(_) => Box::new(instance.pim_stream(channel)),
                };
                warps.push(Warp::new(GlobalWarpId::new(sm_idx, warp_idx), channel, program));
                w += 1;
            }
            sms.push(Sm::new(sm_cfg, warps));
        }

        let mut pipes = Vec::with_capacity(sys.channels);
        let mut mcs = Vec::with_capacity(sys.channels);
        for ch in 0..sys.channels {
            pipes.push(MemoryPipe::new(&sys.pipe));
            let channel = Channel::with_refresh(
                sys.timing,
                sys.banks_per_channel,
                sys.row_bytes as usize,
                sys.refresh,
            );
            let pim = PimUnit::new(exp.ts_size, sys.row_bytes, exp.bmf);
            let mc_cfg = McConfig {
                mapping: sys.mapping.clone(),
                groups: sys.groups.clone(),
                ordering,
                ..sys.mc.clone()
            };
            let mut mc = MemoryController::new(mc_cfg, channel, pim);
            // Input data into the functional store.
            for (addr, value) in instance.init_data(ChannelId(ch as u8)) {
                let loc = sys.mapping.decode(addr);
                debug_assert_eq!(loc.channel, ChannelId(ch as u8));
                mc.channel_mut().store_mut().write(loc.bank, loc.row, loc.col, value);
            }
            mcs.push(mc);
        }

        Ok(System {
            core_hz: sys.core_freq_hz as u64,
            mem_hz: sys.mem_freq_hz as u64,
            exp,
            instance,
            sms,
            pipes,
            mcs,
            now: 0,
            mem_now: 0,
            clock_acc: 0,
            skip_log: None,
        })
    }

    /// Attaches a trace sink to every SM and memory controller (which
    /// forwards it to its DRAM channel). The sink only observes: an
    /// instrumented run is cycle-identical to an uninstrumented one,
    /// under **either** execution core — every component synthesizes
    /// its periodic events (stall runs, pipe/queue samples) closed-form
    /// at skip boundaries, so the event core feeds a sink the same
    /// events the dense core would emit cycle-by-cycle (arrival order
    /// and `WarpRetire` stamps may differ across cores; see DESIGN.md,
    /// "Skip-boundary event synthesis").
    /// The default sink is [`orderlight_trace::NopSink`], which costs a
    /// single `is_enabled()` check per would-be event.
    pub fn attach_sink(&mut self, sink: orderlight_trace::SharedSink) {
        for sm in &mut self.sms {
            sm.set_sink(sink.clone());
        }
        for (ch, pipe) in self.pipes.iter_mut().enumerate() {
            pipe.set_sink(sink.clone(), ch as u8);
        }
        for (ch, mc) in self.mcs.iter_mut().enumerate() {
            mc.set_sink(sink.clone(), ch as u8);
        }
    }

    /// Attaches an *observer* sink to the memory controllers only
    /// (SMs and pipes keep their current sink). Observers consume the
    /// ordering vocabulary — `ReqEnqueued` / `ReqIssued` /
    /// `PacketEnqueued` / `FenceAck` — which both execution cores emit
    /// identically: those events fire only on densely-executed memory
    /// cycles (an active controller pins the quiescence horizon to
    /// `now`). Controller-side periodic detail (queue samples) is
    /// synthesized at skip boundaries, so it too matches across cores;
    /// use [`attach_sink`](Self::attach_sink) to also capture SM and
    /// NoC events. A later `attach_sink`/`attach_observer` call
    /// replaces the controllers' sink.
    pub fn attach_observer(&mut self, sink: orderlight_trace::SharedSink) {
        for (ch, mc) in self.mcs.iter_mut().enumerate() {
            mc.set_sink(sink.clone(), ch as u8);
        }
    }

    /// Applies a deterministic fault plan to the assembled system,
    /// seeding each enabled injection layer with a per-layer,
    /// per-channel [`orderlight::rng::Rng`] stream derived from the
    /// plan's master seed:
    ///
    /// * NoC jitter — extra traversal delay on each channel's request
    ///   path ([`MemoryPipe`] queues; order-preserving).
    /// * Scheduler adversary — the FR-FCFS pick is drawn uniformly from
    ///   the *eligible* candidate set instead of the default heuristic
    ///   (every ordering/timing constraint still holds).
    /// * Refresh storm — each channel's refresh cadence is randomised
    ///   within the storm's interval window.
    /// * Drop-edge mutation — one controller's group barrier is elided
    ///   (the only *illegal* layer; used to prove the oracle fires).
    ///
    /// Every draw happens on a state-determined, densely-executed
    /// cycle, so an injected schedule is bit-identical across both
    /// execution cores and any worker count. Call before `run`.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        if plan.is_noop() {
            return;
        }
        if let Some(jitter) = plan.noc_jitter {
            for (ch, pipe) in self.pipes.iter_mut().enumerate() {
                pipe.set_jitter(plan.layer_seed(FaultLayer::Noc, ch as u8), jitter.max_extra);
            }
        }
        for (ch, mc) in self.mcs.iter_mut().enumerate() {
            if plan.sched_adversary {
                mc.set_adversary(plan.layer_seed(FaultLayer::Sched, ch as u8));
            }
            if let Some(storm) = plan.refresh_storm {
                mc.channel_mut()
                    .enable_refresh_storm(storm, plan.layer_seed(FaultLayer::Refresh, ch as u8));
            }
            if let Some(edge) = plan.drop_edge {
                if usize::from(edge.channel) == ch {
                    mc.set_elide_group(MemGroupId(edge.group));
                }
            }
        }
    }

    /// Ordering edges elided by a [`FaultPlan::drop_edge`] mutation,
    /// summed over all controllers (zero on un-mutated systems).
    #[must_use]
    pub fn ordering_edges_dropped(&self) -> u64 {
        self.mcs.iter().map(MemoryController::ordering_edges_dropped).sum()
    }

    /// The clock frequencies of this system as trace clock domains, for
    /// timestamp conversion when exporting events.
    #[must_use]
    pub fn clock_domains(&self) -> orderlight_trace::ClockDomains {
        orderlight_trace::ClockDomains { core_hz: self.core_hz as f64, mem_hz: self.mem_hz as f64 }
    }

    /// The experiment this system was built for.
    #[must_use]
    pub fn experiment(&self) -> &ExperimentConfig {
        &self.exp
    }

    /// The instantiated workload (streams, layout, golden model).
    #[must_use]
    pub fn workload(&self) -> &WorkloadInstance {
        &self.instance
    }

    /// The memory controllers (one per channel).
    #[must_use]
    pub fn controllers(&self) -> &[MemoryController] {
        &self.mcs
    }

    /// Per-channel controller statistics (load-balance diagnostics).
    #[must_use]
    pub fn channel_stats(&self) -> Vec<McStats> {
        self.mcs.iter().map(MemoryController::stats).collect()
    }

    /// Current core cycle.
    #[must_use]
    pub fn now(&self) -> CoreCycle {
        self.now
    }

    /// Current memory cycle (advances at `mem_hz / core_hz` of the core
    /// clock via an integer accumulator — no drift).
    #[must_use]
    pub fn mem_now(&self) -> MemCycle {
        self.mem_now
    }

    /// Routes a request to its channel.
    fn channel_of(&self, req: &MemReq) -> ChannelId {
        match req {
            MemReq::Marker(copy) => copy.marker.channel(),
            other => self
                .exp
                .system
                .mapping
                .channel_of(other.addr().expect("non-marker requests have addresses")),
        }
    }

    /// Advances the whole system one core clock cycle — the dense core.
    pub fn step_cycle(&mut self) {
        let now = self.now;

        // 1. SMs issue.
        for sm in &mut self.sms {
            sm.tick(now);
        }

        // 2. LDST queues drain into the per-channel pipes (head-of-line
        //    blocking when a pipe is full).
        for sm_idx in 0..self.sms.len() {
            for _ in 0..LDST_DRAIN_PER_CYCLE {
                let Some(head) = self.sms[sm_idx].peek_ldst() else { break };
                let ch = self.channel_of(head);
                if !self.pipes[ch.index()].can_push() {
                    break;
                }
                let req = self.sms[sm_idx].pop_ldst().expect("peeked head");
                self.pipes[ch.index()].push_request(req, now);
            }
        }

        // 3. Pipes advance; ready heads enter the controllers.
        for (ch, pipe) in self.pipes.iter_mut().enumerate() {
            pipe.tick(now);
            for _ in 0..MC_INGEST_PER_CYCLE {
                let Some(head) = pipe.peek_mc(now) else { break };
                if !self.mcs[ch].can_accept(head) {
                    break;
                }
                let req = pipe.pop_mc(now).expect("peeked head");
                self.mcs[ch].push(req);
            }
        }

        // 4. Memory clock domain: tick controllers at mem_hz/core_hz.
        self.clock_acc += self.mem_hz;
        while self.clock_acc >= self.core_hz {
            self.clock_acc -= self.core_hz;
            for (ch, mc) in self.mcs.iter_mut().enumerate() {
                for resp in mc.tick(self.mem_now) {
                    self.pipes[ch].push_response(resp, now);
                }
            }
            self.mem_now += 1;
        }

        // 5. Responses return to their SMs.
        for pipe in &mut self.pipes {
            while let Some(resp) = pipe.pop_response(now) {
                self.sms[resp.warp().sm()].deliver(resp);
            }
        }

        self.now += 1;
    }

    /// Maps a memory-domain event at mem cycle `m` to the core cycle
    /// whose [`step_cycle`](Self::step_cycle) executes that memory tick.
    /// The dense loop runs the accumulated mem ticks of core step `s`
    /// (counting from 1) when `(clock_acc + s*mem_hz) / core_hz` first
    /// covers them, so the smallest such `s` inverts the accumulator in
    /// closed form.
    fn core_cycle_for_mem_event(&self, m: MemCycle) -> CoreCycle {
        debug_assert!(m >= self.mem_now, "memory events cannot be in the past");
        let needed = u128::from(m - self.mem_now + 1) * u128::from(self.core_hz);
        let num = needed - u128::from(self.clock_acc);
        let s = num.div_ceil(u128::from(self.mem_hz));
        debug_assert!(s >= 1, "clock_acc stays below core_hz");
        // Saturating on both the u128 narrowing and the final add: a
        // saturated memory-domain timer (near `u64::MAX`) must map to a
        // "never" core cycle, not truncate/wrap into the past — the
        // calendar rejects past horizons.
        let s = u64::try_from(s).unwrap_or(u64::MAX);
        self.now.saturating_add(s - 1)
    }

    /// Jumps the global clocks forward `span` core cycles without
    /// touching any component — the event core's components account for
    /// skipped windows lazily, each when it is next involved.
    fn jump_clocks(&mut self, span: u64) {
        let total = u128::from(self.clock_acc) + u128::from(span) * u128::from(self.mem_hz);
        self.clock_acc = (total % u128::from(self.core_hz)) as u64;
        self.mem_now += (total / u128::from(self.core_hz)) as u64;
        self.now += span;
    }

    /// Accounts the quiescent window `[synced[s], upto)` to SM `s` in
    /// closed form and advances its sync point.
    fn catch_up_sm(&mut self, ev: &mut EventState, s: usize, upto: CoreCycle) {
        let gap = upto - ev.sm_synced[s];
        if gap > 0 {
            self.sms[s].skip_quiescent(ev.sm_synced[s], gap);
            ev.sm_synced[s] = upto;
        }
    }

    /// Accounts the quiescent window `[synced[ch], upto)` to pipe `ch`.
    fn catch_up_pipe(&mut self, ev: &mut EventState, ch: usize, upto: CoreCycle) {
        let gap = upto - ev.pipe_synced[ch];
        if gap > 0 {
            self.pipes[ch].skip_quiescent(ev.pipe_synced[ch], gap);
            ev.pipe_synced[ch] = upto;
        }
    }

    /// Accounts the idle memory-tick window `[synced[ch], upto)` to
    /// controller `ch` (leaving its arrival cursor at `upto - 1`, where
    /// a dense run's last tick would have put it).
    fn catch_up_mc(&mut self, ev: &mut EventState, ch: usize, upto: MemCycle) {
        let ticks = upto - ev.mc_synced[ch];
        if ticks > 0 {
            self.mcs[ch].skip_ticks(ev.mc_synced[ch], ticks);
            ev.mc_synced[ch] = upto;
        }
    }

    /// The event core: a calendar-queue loop that executes only the
    /// cycles on which some component acts, and on those cycles touches
    /// only the due components. Equivalent to running
    /// [`step_cycle`](Self::step_cycle) every cycle — bit-identically,
    /// including the trace stream — because:
    ///
    /// * every component's [`NextEvent`] horizon is registered in the
    ///   calendar whenever the component is mutated, so no state change
    ///   can hide inside a skipped window (the quiescence contract);
    /// * cross-component hand-offs (LDST head into a pipe with space,
    ///   deliveries into an SM) wake the destination for the next
    ///   cycle, covering the two transfers that have no single owner;
    /// * a component not ticked on an executed cycle is quiescent there
    ///   by construction and accounts the window lazily
    ///   (`skip_quiescent` / `skip_ticks`) before its next mutation, so
    ///   stall counters, occupancy integrals and synthesized trace
    ///   events land exactly as the dense core's would.
    ///
    /// The budget error fires at the same cycle as the dense core's; a
    /// system with no future event at all (a deadlock the budget will
    /// catch) burns the remaining budget in one jump.
    fn run_event(&mut self, max_core_cycles: u64) -> Result<(), SimError> {
        let (n_sms, n_pipes, n_mcs) = (self.sms.len(), self.pipes.len(), self.mcs.len());
        let total = n_sms + n_pipes + n_mcs;
        let mut ev = EventState {
            cal: Calendar::new(total, self.now),
            due: Vec::with_capacity(total),
            sm_synced: vec![self.now; n_sms],
            pipe_synced: vec![self.now; n_pipes],
            mc_synced: vec![self.mem_now; n_mcs],
            due_sm: vec![false; n_sms],
            due_pipe: vec![false; n_pipes],
            touched_sm: vec![false; n_sms],
            touched_pipe: vec![false; n_pipes],
            touched_mc: vec![false; n_mcs],
            pushed_pipe: vec![false; n_pipes],
            delivered_sm: vec![false; n_sms],
        };
        // Bootstrap: everyone wakes on the first cycle (equivalent to a
        // dense step) and re-registers its true horizon from there.
        for c in 0..total {
            ev.cal.schedule(c as u32, self.now);
        }
        loop {
            if self.is_done() {
                // Account the trailing quiescent window to every lazy
                // component, so counters, occupancy integrals and
                // synthesized periodic events match a dense run that
                // ticked through cycle `now - 1`.
                for s in 0..n_sms {
                    self.catch_up_sm(&mut ev, s, self.now);
                }
                for ch in 0..n_pipes {
                    self.catch_up_pipe(&mut ev, ch, self.now);
                }
                for ch in 0..n_mcs {
                    self.catch_up_mc(&mut ev, ch, self.mem_now);
                }
                return Ok(());
            }
            if self.now >= max_core_cycles {
                return Err(self.budget_error());
            }
            let Some(t) = ev.cal.pop_next(&mut ev.due) else {
                // No component will ever act again, yet the system is
                // not drained: burn the budget so the deadlock error
                // fires at the same cycle as the dense core's.
                self.jump_clocks(max_core_cycles - self.now);
                continue;
            };
            if t >= max_core_cycles {
                self.jump_clocks(max_core_cycles - self.now);
                continue;
            }
            debug_assert!(t >= self.now, "calendar may not fire in the past");
            self.jump_clocks(t - self.now);
            if let Some(log) = self.skip_log.as_mut() {
                log.push(t);
            }
            self.step_event_cycle(t, &mut ev);
        }
    }

    /// Executes core cycle `t` touching only due or woken components,
    /// in exactly [`step_cycle`](Self::step_cycle)'s phase and index
    /// order. `self.now` must equal `t` on entry and is `t + 1` after.
    fn step_event_cycle(&mut self, t: CoreCycle, ev: &mut EventState) {
        let n_sms = self.sms.len();
        let n_pipes = self.pipes.len();
        let pipe_base = n_sms;
        let mc_base = n_sms + n_pipes;
        for m in [&mut ev.due_sm, &mut ev.touched_sm, &mut ev.delivered_sm] {
            m.fill(false);
        }
        for m in [&mut ev.due_pipe, &mut ev.touched_pipe, &mut ev.pushed_pipe] {
            m.fill(false);
        }
        ev.touched_mc.fill(false);
        for i in 0..ev.due.len() {
            let c = ev.due[i] as usize;
            if c < pipe_base {
                ev.due_sm[c] = true;
            } else if c < mc_base {
                ev.due_pipe[c - pipe_base] = true;
            }
            // A due controller only forces the cycle to execute; phase 4
            // re-derives per-tick activity from `next_event` directly.
        }

        // 1. Due SMs issue.
        for s in 0..n_sms {
            if !ev.due_sm[s] {
                continue;
            }
            self.catch_up_sm(ev, s, t);
            self.sms[s].tick(t);
            ev.sm_synced[s] = t + 1;
            ev.touched_sm[s] = true;
        }

        // 2. LDST queues drain into the per-channel pipes. Contents-
        //    driven, so every SM participates (a blocked head from an
        //    earlier cycle drains the moment its pipe has space, exactly
        //    as in the dense loop).
        for s in 0..n_sms {
            for _ in 0..LDST_DRAIN_PER_CYCLE {
                let Some(head) = self.sms[s].peek_ldst() else { break };
                let ch = self.channel_of(head).index();
                if !self.pipes[ch].can_push() {
                    break;
                }
                // An un-ticked source SM is quiescent at `t` (its only
                // action this cycle is this externally-driven pop):
                // account through `t` before mutating it.
                self.catch_up_sm(ev, s, t + 1);
                let req = self.sms[s].pop_ldst().expect("peeked head");
                self.catch_up_pipe(ev, ch, t);
                self.pipes[ch].push_request(req, t);
                ev.touched_sm[s] = true;
                ev.touched_pipe[ch] = true;
                ev.pushed_pipe[ch] = true;
            }
        }

        // 3. Due (or freshly pushed) pipes advance; ready heads enter
        //    the controllers, whose arrival cursor first catches up to
        //    the memory tick a dense run would have it at.
        for ch in 0..n_pipes {
            if !(ev.due_pipe[ch] || ev.pushed_pipe[ch]) {
                continue;
            }
            self.catch_up_pipe(ev, ch, t);
            self.pipes[ch].tick(t);
            ev.pipe_synced[ch] = t + 1;
            ev.touched_pipe[ch] = true;
            for _ in 0..MC_INGEST_PER_CYCLE {
                let Some(head) = self.pipes[ch].peek_mc(t) else { break };
                if !self.mcs[ch].can_accept(head) {
                    break;
                }
                let req = self.pipes[ch].pop_mc(t).expect("peeked head");
                self.catch_up_mc(ev, ch, self.mem_now);
                self.mcs[ch].push(req);
                ev.touched_mc[ch] = true;
            }
        }

        // 4. Memory clock domain: tick the controllers that act on each
        //    accumulated memory cycle (an idle controller's tick is pure
        //    bookkeeping, reproduced in closed form when it next syncs).
        self.clock_acc += self.mem_hz;
        while self.clock_acc >= self.core_hz {
            self.clock_acc -= self.core_hz;
            let m = self.mem_now;
            for ch in 0..self.mcs.len() {
                if self.mcs[ch].next_event(m) != Some(m) {
                    continue;
                }
                self.catch_up_mc(ev, ch, m);
                let resps = self.mcs[ch].tick(m);
                ev.mc_synced[ch] = m + 1;
                ev.touched_mc[ch] = true;
                for resp in resps {
                    // The receiving pipe must have accounted cycle `t`
                    // (dense pipes tick in phase 3, before responses
                    // arrive) so its periodic samples exclude the
                    // response.
                    self.catch_up_pipe(ev, ch, t + 1);
                    self.pipes[ch].push_response(resp, t);
                    ev.touched_pipe[ch] = true;
                }
            }
            self.mem_now += 1;
        }

        // 5. Responses return to their SMs. Only touched pipes can hold
        //    a ready response: a return path's ready deadline is itself
        //    a calendar event, so its pipe is due the cycle it matures.
        for ch in 0..n_pipes {
            if !ev.touched_pipe[ch] {
                continue;
            }
            while let Some(resp) = self.pipes[ch].pop_response(t) {
                let s = resp.warp().sm();
                self.catch_up_sm(ev, s, t + 1);
                self.sms[s].deliver(resp);
                ev.touched_sm[s] = true;
                ev.delivered_sm[s] = true;
            }
        }

        self.now = t + 1;

        // Re-register every touched component's horizon. Untouched
        // components keep their standing wake-ups, which remain valid:
        // nothing they depend on changed.
        for s in 0..n_sms {
            if !ev.touched_sm[s] {
                continue;
            }
            if ev.delivered_sm[s] {
                // A delivery may have readied or completed a warp; the
                // next dense tick issues or retires it. Unconditional
                // (not gated on what the delivery did or on a sink), so
                // skip decisions are observation-independent.
                ev.cal.schedule(s as u32, t + 1);
            } else if let Some(at) = self.sms[s].next_event(t + 1) {
                ev.cal.schedule(s as u32, at);
            }
        }
        for ch in 0..n_pipes {
            if !ev.touched_pipe[ch] {
                continue;
            }
            if let Some(at) = self.pipes[ch].next_event(t + 1) {
                ev.cal.schedule((pipe_base + ch) as u32, at);
            }
        }
        for ch in 0..self.mcs.len() {
            if !ev.touched_mc[ch] {
                continue;
            }
            if let Some(m) = self.mcs[ch].next_event(self.mem_now) {
                let at = self.core_cycle_for_mem_event(m);
                ev.cal.schedule((mc_base + ch) as u32, at);
            }
        }
        // The LDST-to-pipe hand-off has no single owner: an SM whose
        // queued head faces a pipe with space acts next cycle (covers
        // both rate-limit leftovers and pipes that just freed space).
        for s in 0..n_sms {
            let Some(head) = self.sms[s].peek_ldst() else { continue };
            if self.pipes[self.channel_of(head).index()].can_push() {
                ev.cal.schedule(s as u32, t + 1);
            }
        }
    }

    /// Starts or stops recording the event core's executed-cycle
    /// sequence (the boundaries of its skipped windows). Observe-only:
    /// recording never changes skip decisions. Starting resets any
    /// previous recording.
    pub fn record_skip_boundaries(&mut self, on: bool) {
        self.skip_log = on.then(Vec::new);
    }

    /// Takes the recorded executed-cycle sequence (empty if recording
    /// was never enabled) and stops recording.
    pub fn take_skip_boundaries(&mut self) -> Vec<CoreCycle> {
        self.skip_log.take().unwrap_or_default()
    }

    /// Whether every warp retired and the memory system is drained.
    pub fn is_done(&mut self) -> bool {
        self.sms.iter_mut().all(Sm::is_done)
            && self.pipes.iter().all(MemoryPipe::is_empty)
            && self.mcs.iter().all(MemoryController::is_idle)
    }

    /// Compares final DRAM contents against the golden model; returns
    /// `(matches, mismatches)` over all output stripes of all channels.
    #[must_use]
    pub fn verify(&self) -> (u64, u64) {
        let mapping = &self.exp.system.mapping;
        let mut matches = 0;
        let mut mismatches = 0;
        for ch in 0..self.mcs.len() {
            let channel = ChannelId(ch as u8);
            let golden = match self.exp.mode {
                ExecMode::Gpu => self.instance.golden_host(channel),
                ExecMode::Pim(_) => self.instance.golden_pim(channel),
            };
            for &addr in golden.written() {
                let loc = mapping.decode(orderlight::types::Addr(addr));
                let actual = self.mcs[ch].channel().store().read(loc.bank, loc.row, loc.col);
                if actual == golden.read(orderlight::types::Addr(addr)) {
                    matches += 1;
                } else {
                    mismatches += 1;
                }
            }
        }
        (matches, mismatches)
    }

    /// Runs to completion (at most `max_core_cycles`) on the core
    /// selected by [`resolve_core`] (the `ORDERLIGHT_CORE` environment
    /// variable or process override; the event core by default), then
    /// verifies and aggregates statistics.
    ///
    /// # Errors
    /// Returns [`SimError`] if the system has not drained within the
    /// budget — a deadlock or a budget that is simply too small.
    pub fn run(&mut self, max_core_cycles: u64) -> Result<RunStats, SimError> {
        self.run_with(max_core_cycles, resolve_core(None))
    }

    /// The budget-exhaustion error, fired at the same cycle by both
    /// cores.
    fn budget_error(&self) -> SimError {
        SimError::new(format!(
            "not drained after {} core cycles (workload {}, mode {})",
            self.now, self.exp.workload, self.exp.mode
        ))
    }

    /// Runs to completion on an explicitly chosen core. The two cores
    /// are bit-identical (enforced by `tests/core_equivalence.rs` and
    /// `tests/horizon_fuzz.rs`), including the trace stream a live sink
    /// observes: windows the event core skips synthesize their periodic
    /// events closed-form (see `tests/profile_core_equivalence.rs`), so
    /// traced and profiled runs use whichever core is selected. The run
    /// stops at the exact drain cycle — completion is checked every
    /// step, so `RunStats::core_cycles` never overshoots.
    ///
    /// # Errors
    /// Returns [`SimError`] if the system has not drained within the
    /// budget — a deadlock or a budget that is simply too small.
    pub fn run_with(&mut self, max_core_cycles: u64, core: SimCore) -> Result<RunStats, SimError> {
        match core {
            SimCore::Cycle => {
                while !self.is_done() {
                    if self.now >= max_core_cycles {
                        return Err(self.budget_error());
                    }
                    self.step_cycle();
                }
            }
            SimCore::Event => self.run_event(max_core_cycles)?,
        }
        // Close every SM's open stall runs so a stall-attribution
        // consumer sees each charged cycle exactly once (no-op without
        // a live sink).
        for sm in &mut self.sms {
            sm.flush_stall_runs();
        }
        Ok(self.collect())
    }

    /// Aggregates statistics after a completed run.
    fn collect(&self) -> RunStats {
        let mut sm = SmStats::default();
        for s in &self.sms {
            let x = s.stats();
            sm.issued += x.issued;
            sm.pim_issued += x.pim_issued;
            sm.loads += x.loads;
            sm.stores += x.stores;
            sm.computes += x.computes;
            sm.fences += x.fences;
            sm.orderlights += x.orderlights;
            sm.fence_stall_cycles += x.fence_stall_cycles;
            sm.ol_wait_cycles += x.ol_wait_cycles;
            sm.reg_wait_cycles += x.reg_wait_cycles;
            sm.structural_stall_cycles += x.structural_stall_cycles;
            sm.credit_wait_cycles += x.credit_wait_cycles;
        }
        let mut mc = McStats::default();
        let mut pim_data_bytes = 0;
        for m in &self.mcs {
            let x = m.stats();
            mc.pim_commands += x.pim_commands;
            mc.activates += x.activates;
            mc.precharges += x.precharges;
            mc.col_reads += x.col_reads;
            mc.col_writes += x.col_writes;
            mc.exec_commands += x.exec_commands;
            mc.host_reads += x.host_reads;
            mc.host_writes += x.host_writes;
            mc.fence_acks += x.fence_acks;
            mc.ol_packets += x.ol_packets;
            mc.sanity_violations += x.sanity_violations;
            mc.last_issue_cycle = mc.last_issue_cycle.max(x.last_issue_cycle);
            mc.host_read_latency_sum += x.host_read_latency_sum;
            pim_data_bytes += m.pim().stats().data_bytes;
        }
        let core_hz = self.exp.system.core_freq_hz;
        let seconds = self.now as f64 / core_hz;
        let (verified_matches, verified_mismatches) = self.verify();
        RunStats {
            core_cycles: self.now,
            exec_time_ms: seconds * 1e3,
            command_bandwidth_gcs: mc.pim_commands as f64 / seconds / 1e9,
            data_bandwidth_gbs: pim_data_bytes as f64 / seconds / 1e9,
            primitives_per_pim_instr: if sm.pim_issued == 0 {
                0.0
            } else {
                (sm.fences + sm.orderlights) as f64 / sm.pim_issued as f64
            },
            sm,
            mc,
            pim_data_bytes,
            verified_matches,
            verified_mismatches,
        }
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("workload", &self.exp.workload)
            .field("mode", &self.exp.mode)
            .field("now", &self.now)
            .field("mem_now", &self.mem_now)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight_pim::TsSize;
    use orderlight_workloads::{OrderingMode, WorkloadId};

    fn small_exp(workload: WorkloadId, mode: ExecMode) -> ExperimentConfig {
        let mut e = ExperimentConfig::new(workload, mode);
        // 16 KiB per structure per channel keeps unit tests fast.
        e.data_bytes_per_channel = 16 * 1024;
        e.ts_size = TsSize::Eighth;
        e
    }

    #[test]
    fn add_orderlight_runs_and_verifies() {
        let mut sys =
            System::build(small_exp(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight)))
                .unwrap();
        let stats = sys.run(20_000_000).unwrap();
        assert!(stats.is_correct(), "mismatches: {}", stats.verified_mismatches);
        assert!(stats.command_bandwidth_gcs > 0.0);
        assert!(stats.sm.orderlights > 0);
        assert_eq!(stats.sm.fences, 0);
        assert_eq!(stats.mc.sanity_violations, 0);
    }

    #[test]
    fn add_fence_runs_and_verifies_but_stalls() {
        let mut sys =
            System::build(small_exp(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence))).unwrap();
        let stats = sys.run(50_000_000).unwrap();
        assert!(stats.is_correct());
        assert!(stats.sm.fences > 0);
        assert!(
            stats.wait_cycles_per_fence() > 100.0,
            "fences must pay a round trip, got {}",
            stats.wait_cycles_per_fence()
        );
    }

    #[test]
    fn add_without_ordering_is_functionally_incorrect() {
        let mut sys =
            System::build(small_exp(WorkloadId::Add, ExecMode::Pim(OrderingMode::None))).unwrap();
        let stats = sys.run(20_000_000).unwrap();
        assert!(
            stats.verified_mismatches > 0,
            "FR-FCFS reordering must corrupt the unordered kernel (Figure 5)"
        );
    }

    #[test]
    fn orderlight_is_faster_than_fence() {
        let run = |mode| {
            let mut sys = System::build(small_exp(WorkloadId::Add, ExecMode::Pim(mode))).unwrap();
            sys.run(50_000_000).unwrap()
        };
        let ol = run(OrderingMode::OrderLight);
        let fence = run(OrderingMode::Fence);
        assert!(
            fence.exec_time_ms > 1.5 * ol.exec_time_ms,
            "fence {} ms vs orderlight {} ms",
            fence.exec_time_ms,
            ol.exec_time_ms
        );
    }

    #[test]
    fn gpu_baseline_runs_and_verifies() {
        let mut e = small_exp(WorkloadId::Add, ExecMode::Gpu);
        e.data_bytes_per_channel = 4 * 1024;
        let mut sys = System::build(e).unwrap();
        let stats = sys.run(50_000_000).unwrap();
        assert!(stats.is_correct());
        assert!(stats.sm.loads > 0);
        assert_eq!(stats.mc.pim_commands, 0);
    }

    #[test]
    fn channels_are_load_balanced() {
        let mut sys =
            System::build(small_exp(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight)))
                .unwrap();
        let _ = sys.run(50_000_000).unwrap();
        let per = sys.channel_stats();
        assert_eq!(per.len(), 16);
        let first = per[0].pim_commands;
        assert!(first > 0);
        assert!(
            per.iter().all(|s| s.pim_commands == first),
            "uniform kernels must spread PIM commands evenly"
        );
    }

    #[test]
    fn clock_domains_keep_the_850_to_1200_ratio() {
        let mut sys =
            System::build(small_exp(WorkloadId::Scale, ExecMode::Pim(OrderingMode::OrderLight)))
                .unwrap();
        for _ in 0..120_000 {
            sys.step_cycle();
        }
        let expected = sys.now() as f64 * 850.0 / 1200.0;
        let got = sys.mem_now() as f64;
        assert!((got - expected).abs() <= 1.0, "memory clock drifted: {got} vs {expected}");
    }

    #[test]
    fn custom_instances_run_through_build_custom() {
        use orderlight_workloads::{KernelBuilder, WorkloadInstance};
        let spec = KernelBuilder::new("doctest_custom")
            .load(0)
            .fetch(orderlight::AluOp::Add, 1)
            .store(2)
            .build()
            .unwrap();
        let mut exp = small_exp(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        exp.data_bytes_per_channel = 8 * 1024;
        let instance = WorkloadInstance::custom(
            spec,
            exp.system.mapping.clone(),
            &exp.system.groups,
            exp.ts_stripes(),
            exp.stripes_per_channel(),
            OrderingMode::OrderLight,
        );
        let stats = System::build_custom(exp, instance).unwrap().run(50_000_000).unwrap();
        assert!(stats.is_correct());
    }

    #[test]
    fn build_custom_rejects_mode_mismatch() {
        use orderlight_workloads::{KernelBuilder, WorkloadInstance};
        let spec = KernelBuilder::new("mismatch").load(0).store(0).build().unwrap();
        let exp = small_exp(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight));
        let instance = WorkloadInstance::custom(
            spec,
            exp.system.mapping.clone(),
            &exp.system.groups,
            8,
            64,
            OrderingMode::Fence,
        );
        assert!(System::build_custom(exp, instance).is_err());
    }

    #[test]
    fn cycle_budget_is_enforced() {
        let mut sys =
            System::build(small_exp(WorkloadId::Add, ExecMode::Pim(OrderingMode::OrderLight)))
                .unwrap();
        let err = sys.run(128).unwrap_err();
        assert!(err.to_string().contains("not drained"));
    }
}
