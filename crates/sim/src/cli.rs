//! Shared command-line flags for every OrderLight entry point.
//!
//! The `orderlight` multitool, the figure-regeneration binaries and the
//! service client all accept the same execution flags. Historically
//! each binary re-assembled them from [`crate::pool::take_jobs_flag`] /
//! [`crate::core_select::take_core_flag`] plus hand-rolled `--seed`
//! loops, which drifted (some subcommands took `--seed`, others
//! silently ignored it). This module parses the whole common set once:
//!
//! * `--jobs N` / `-j N` — worker count (else `ORDERLIGHT_JOBS`, else
//!   the host's available parallelism).
//! * `--core cycle|event` — execution core (else the process override,
//!   else `ORDERLIGHT_CORE`, else the event core).
//! * `--seed N` — master fault seed (default 0).
//! * `--ordering NAME` — execution mode, any spelling accepted by
//!   [`crate::schema::parse_mode`] (`gpu`, `none`, `fence`,
//!   `orderlight`/`ol`, `seqnum`, `louvre`, `bulk`); `None` when the
//!   flag is absent so each subcommand keeps its own default.
//!
//! [`take_common_flags`] is pure (no process exit, no global writes) so
//! it is unit-testable; [`CommonFlags::install_core`] applies the core
//! choice process-wide exactly like the old per-binary helpers did.

use crate::config::ExecMode;
use crate::core_select::{resolve_core, set_core_override, SimCore};
use crate::pool::resolve_jobs;
use crate::schema::parse_mode;

/// The parsed common execution flags, shared by every subcommand.
#[derive(Debug, Clone, Copy)]
pub struct CommonFlags {
    /// Worker count for pools (sweep jobs, service workers).
    pub jobs: usize,
    /// Execution core.
    pub core: SimCore,
    /// Master fault seed for stressed runs.
    pub seed: u64,
    /// Execution mode from `--ordering`, when given.
    pub ordering: Option<ExecMode>,
}

impl Default for CommonFlags {
    fn default() -> Self {
        CommonFlags { jobs: resolve_jobs(None), core: resolve_core(None), seed: 0, ordering: None }
    }
}

impl CommonFlags {
    /// Installs the chosen core as the process-global override so every
    /// [`crate::System`] built afterwards uses it (the behaviour the
    /// per-binary `core_from_process_args` helper used to provide).
    pub fn install_core(&self) {
        set_core_override(Some(self.core));
    }
}

/// Extracts the shared `--jobs/-j`, `--core`, `--seed` and `--ordering`
/// flags from a raw argument list, returning the remaining arguments
/// and the resolved [`CommonFlags`]. Flags may appear anywhere —
/// before or after the subcommand name — and environment fallbacks
/// (`ORDERLIGHT_JOBS`, `ORDERLIGHT_CORE`) apply when a flag is absent.
///
/// # Errors
/// Returns a message naming the flag with a missing or invalid value.
pub fn take_common_flags(args: &[String]) -> Result<(Vec<String>, CommonFlags), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs = None;
    let mut core = None;
    let mut seed = 0u64;
    let mut ordering = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--jobs" | "-j" => {
                let v = value(a)?;
                jobs = Some(v.parse::<usize>().map_err(|_| invalid(a, &v))?);
            }
            "--core" => core = Some(SimCore::parse(&value(a)?)?),
            "--seed" => {
                let v = value(a)?;
                seed = v.parse::<u64>().map_err(|_| invalid(a, &v))?;
            }
            "--ordering" => {
                let v = value(a)?;
                ordering = Some(parse_mode(&v).ok_or_else(|| invalid(a, &v))?);
            }
            _ => rest.push(a.clone()),
        }
    }
    let flags = CommonFlags { jobs: resolve_jobs(jobs), core: resolve_core(core), seed, ordering };
    Ok((rest, flags))
}

fn invalid(flag: &str, value: &str) -> String {
    format!("invalid value '{value}' for {flag}")
}

/// Common flags for a standalone binary: parses the process arguments,
/// exiting with status 2 on a malformed flag (a usage error), and
/// installs the chosen core process-wide. Unknown arguments are
/// ignored, matching the report binaries' historical behaviour.
#[must_use]
pub fn common_from_process_args() -> CommonFlags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match take_common_flags(&args) {
        Ok((_, flags)) => {
            flags.install_core();
            flags
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight_workloads::OrderingMode;

    fn argv(raw: &[&str]) -> Vec<String> {
        raw.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn strips_all_common_flags_anywhere() {
        let (rest, flags) = take_common_flags(&argv(&[
            "sweep",
            "--jobs",
            "3",
            "fig05",
            "--core",
            "cycle",
            "--seed",
            "42",
            "--ordering",
            "louvre",
        ]))
        .unwrap();
        assert_eq!(rest, vec!["sweep", "fig05"]);
        assert_eq!(flags.jobs, 3);
        assert_eq!(flags.core, SimCore::Cycle);
        assert_eq!(flags.seed, 42);
        assert_eq!(flags.ordering, Some(ExecMode::Pim(OrderingMode::LouvreVersioned)));
    }

    #[test]
    fn short_jobs_flag_and_defaults() {
        let (rest, flags) = take_common_flags(&argv(&["-j", "2", "trace"])).unwrap();
        assert_eq!(rest, vec!["trace"]);
        assert_eq!(flags.jobs, 2);
        assert_eq!(flags.seed, 0);
        assert!(flags.ordering.is_none());
    }

    #[test]
    fn bad_values_are_named_errors() {
        for bad in [
            &["--jobs"][..],
            &["--jobs", "many"][..],
            &["--core", "dense"][..],
            &["--seed", "-1"][..],
            &["--ordering", "tso"][..],
        ] {
            let err = take_common_flags(&argv(bad)).unwrap_err();
            let flag_word = bad[0].trim_start_matches('-');
            assert!(err.contains(flag_word), "error '{err}' should name {flag_word}");
        }
    }
}
