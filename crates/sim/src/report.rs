//! Plain-text table formatting for the figure/table regeneration
//! binaries.

/// Formats rows as a monospace table with a header line.
///
/// # Panics
/// Panics if any row's width differs from the header's.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "row width must match headers");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let mut out = vec![fmt_row(&header), fmt_row(&rule)];
    out.extend(rows.iter().map(|r| fmt_row(r)));
    out.join("\n")
}

/// Renders labelled values as a horizontal ASCII bar chart, scaled to
/// `width` characters for the largest value — the textual analogue of
/// the paper's bar figures.
///
/// # Example
///
/// ```
/// use orderlight_sim::report::bar_chart;
/// let chart = bar_chart(
///     &[("fence".to_string(), 4.0), ("orderlight".to_string(), 1.0)],
///     20,
/// );
/// assert!(chart.lines().next().unwrap().contains("####################"));
/// ```
///
/// Non-finite values (NaN, ±inf) render as zero-width bars instead of
/// poisoning the scale: the maximum is taken over finite values only,
/// and every bar is clamped to `width`.
///
/// # Panics
/// Panics if `width` is zero.
#[must_use]
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let max = rows.iter().map(|(_, v)| *v).filter(|v| v.is_finite()).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let value_w = rows.iter().map(|(_, v)| format!("{v:.3}").len()).max().unwrap_or(0);
    rows.iter()
        .map(|(label, v)| {
            let n = if max > 0.0 && v.is_finite() && *v > 0.0 {
                (((v / max) * width as f64).round() as usize).min(width)
            } else {
                0
            };
            format!("{label:<label_w$}  {:>value_w$}  {}", format!("{v:.3}"), "#".repeat(n))
                .trim_end()
                .to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Formats a float with three significant decimals.
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a speedup as `N.NNx`.
#[must_use]
pub fn speedup(base: f64, improved: f64) -> String {
    if improved <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}x", base / improved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["kernel", "time"],
            &[vec!["Add".into(), "1.5".into()], vec!["KMeans".into(), "12.25".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("kernel"));
        assert!(lines[2].starts_with("Add"));
        assert!(lines[3].starts_with("KMeans"));
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let c = bar_chart(
            &[("a".to_string(), 10.0), ("bb".to_string(), 5.0), ("c".to_string(), 0.0)],
            10,
        );
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[0].ends_with("#".repeat(10).as_str()));
        assert!(lines[1].ends_with("#".repeat(5).as_str()));
        assert!(!lines[2].contains('#'));
        // Labels align.
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn bar_chart_handles_all_zero() {
        let c = bar_chart(&[("x".to_string(), 0.0)], 8);
        assert!(!c.contains('#'));
    }

    #[test]
    fn bar_chart_survives_non_finite_values() {
        // NaN / inf must not poison the scale or explode a bar's width;
        // the finite value still gets its full-width bar.
        let c = bar_chart(
            &[
                ("nan".to_string(), f64::NAN),
                ("inf".to_string(), f64::INFINITY),
                ("neg".to_string(), f64::NEG_INFINITY),
                ("ok".to_string(), 2.0),
            ],
            10,
        );
        let lines: Vec<&str> = c.lines().collect();
        assert!(!lines[0].contains('#'), "NaN draws no bar: {}", lines[0]);
        assert!(!lines[1].contains('#'), "inf draws no bar: {}", lines[1]);
        assert!(!lines[2].contains('#'), "-inf draws no bar: {}", lines[2]);
        assert!(lines[3].ends_with("#".repeat(10).as_str()), "finite max fills: {}", lines[3]);
    }

    #[test]
    fn bar_chart_all_nan_is_flat() {
        let c = bar_chart(&[("a".to_string(), f64::NAN), ("b".to_string(), f64::NAN)], 8);
        assert!(!c.contains('#'));
    }

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(10.0, 2.0), "5.00x");
        assert_eq!(speedup(1.0, 0.0), "-");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let _ = format_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
