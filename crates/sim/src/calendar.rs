//! Hierarchical calendar (bucket) queue for the event core.
//!
//! [`Calendar`] holds one pending wake-up cycle per component and
//! answers "which components act next, and when?" in O(1) amortized —
//! replacing the event core's former global min-scan over every SM,
//! pipe and controller per hop.
//!
//! Layout: a 4096-slot bucket ring indexed by `cycle & 4095`, covering
//! the window `[base, base + 4096)`, with a two-level u64 bitmap over
//! the ring (one top word whose bit `w` says "leaf word `w` has a set
//! bit"; 64 leaf words, one bit per slot) so the nearest occupied slot
//! is a handful of trailing-zero scans away. Entries beyond the window
//! land in an unsorted `far` overflow list whose cached minimum is
//! migrated into the ring as soon as the window slides over it (each
//! entry migrates at most `distance / 4096` times — amortized O(1) for
//! horizons bounded by a cycle budget).
//!
//! Rescheduling is *earliest-wins with lazy invalidation*: the
//! authoritative wake-up cycle lives in `scheduled[comp]`; ring and
//! `far` entries are `(cycle, comp)` hints. A hint is live only if
//! `scheduled[comp] == cycle` at pop time — a component woken to an
//! earlier cycle simply leaves its old hint behind to be dropped when
//! its slot is next drained. All window arithmetic uses `wrapping_sub`
//! distances, so schedules that cross `u64::MAX` order correctly as
//! long as every live horizon is within 2^63 cycles of the current
//! base — vastly beyond any cycle budget.

/// Slot count of the bucket ring; one page of cycles per rotation.
const RING: usize = 4096;
/// Leaf bitmap words covering the ring (64 slots per word).
const WORDS: usize = RING / 64;

/// Sentinel in `scheduled`: the component has no pending wake-up.
const NONE: u64 = u64::MAX;

/// A calendar queue of per-component wake-up cycles.
#[derive(Debug)]
pub struct Calendar {
    /// Authoritative wake-up cycle per component (`NONE` = unscheduled).
    scheduled: Vec<u64>,
    /// Bucket ring: `(cycle, comp)` hints whose cycle maps to the slot.
    ring: Vec<Vec<(u64, u32)>>,
    /// Leaf bitmap: bit `b % 64` of word `b / 64` set ⇒ slot `b` may
    /// hold hints.
    leaf: [u64; WORDS],
    /// Top bitmap: bit `w` set ⇒ `leaf[w] != 0`.
    top: u64,
    /// Start of the ring window; slots cover `[base, base + RING)`.
    base: u64,
    /// Overflow hints at distance ≥ RING from `base` at insert time.
    /// Purged of dead hints on every pop, so it never outgrows the
    /// component count.
    far: Vec<(u64, u32)>,
}

impl Calendar {
    /// A calendar for `components` ids, with its window starting at
    /// `start` (no component may be scheduled before it).
    #[must_use]
    pub fn new(components: usize, start: u64) -> Calendar {
        Calendar {
            scheduled: vec![NONE; components],
            ring: vec![Vec::new(); RING],
            leaf: [0; WORDS],
            top: 0,
            base: start,
            far: Vec::new(),
        }
    }

    /// The component's current wake-up cycle, if any.
    #[must_use]
    pub fn scheduled_at(&self, comp: u32) -> Option<u64> {
        match self.scheduled[comp as usize] {
            NONE => None,
            at => Some(at),
        }
    }

    /// Schedules `comp` to wake at `at`, earliest-wins: a request later
    /// than the component's current wake-up is a no-op (the component
    /// re-evaluates its horizon when it wakes anyway).
    pub fn schedule(&mut self, comp: u32, at: u64) {
        debug_assert!(
            at.wrapping_sub(self.base) < u64::MAX / 2,
            "cannot schedule into the past: at={at} base={}",
            self.base
        );
        let cur = self.scheduled[comp as usize];
        if cur != NONE && cur.wrapping_sub(self.base) <= at.wrapping_sub(self.base) {
            return;
        }
        self.scheduled[comp as usize] = at;
        self.insert_hint(comp, at);
    }

    /// Drops any pending wake-up for `comp` (its stale hints are
    /// dropped lazily).
    pub fn cancel(&mut self, comp: u32) {
        self.scheduled[comp as usize] = NONE;
    }

    /// Places a hint for `(comp, at)` in the ring or the `far` list.
    fn insert_hint(&mut self, comp: u32, at: u64) {
        if at.wrapping_sub(self.base) < RING as u64 {
            let slot = (at & (RING as u64 - 1)) as usize;
            self.ring[slot].push((at, comp));
            self.leaf[slot / 64] |= 1 << (slot % 64);
            self.top |= 1 << (slot / 64);
        } else {
            self.far.push((at, comp));
        }
    }

    /// Pops the earliest scheduled cycle and appends its due components
    /// to `due` (cleared first; ids in arbitrary order — sort if a
    /// deterministic visit order matters). Returns `None` when nothing
    /// is scheduled at all. Popped components become unscheduled.
    ///
    /// Advances the window to the returned cycle, so subsequent
    /// schedules must target that cycle or later.
    pub fn pop_next(&mut self, due: &mut Vec<u32>) -> Option<u64> {
        due.clear();
        loop {
            // Pull overflow hints the window has slid onto (or, with an
            // empty ring, rebase straight onto the far minimum) before
            // trusting the ring scan.
            if !self.far.is_empty() {
                self.sync_far();
            }
            let (t, slot) = self.nearest_slot()?;
            self.base = t;
            self.leaf[slot / 64] &= !(1 << (slot % 64));
            if self.leaf[slot / 64] == 0 {
                self.top &= !(1 << (slot / 64));
            }
            for (cycle, comp) in self.ring[slot].drain(..) {
                // Live iff the hint matches the authoritative schedule;
                // duplicates die because the first hit clears it. Hints
                // from previous window rotations (cycle != t) are dead
                // by construction: the window never slides past a live
                // schedule.
                if cycle == t && self.scheduled[comp as usize] == t {
                    self.scheduled[comp as usize] = NONE;
                    due.push(comp);
                }
            }
            if !due.is_empty() {
                return Some(t);
            }
        }
    }

    /// The nearest occupied ring slot from `base` and the cycle its
    /// in-window hints correspond to.
    fn nearest_slot(&self) -> Option<(u64, usize)> {
        if self.top == 0 {
            return None;
        }
        let start = (self.base & (RING as u64 - 1)) as usize;
        let mut best: Option<(u64, usize)> = None;
        let mut top = self.top;
        while top != 0 {
            let w = top.trailing_zeros() as usize;
            top &= top - 1;
            let mut word = self.leaf[w];
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                word &= word - 1;
                let slot = w * 64 + b;
                // Distance of this slot's in-window cycle from base.
                let dist = ((slot + RING - start) % RING) as u64;
                if best.is_none_or(|(c, _)| dist < c.wrapping_sub(self.base)) {
                    best = Some((self.base.wrapping_add(dist), slot));
                }
            }
        }
        best
    }

    /// Purges dead overflow hints, rebases an empty ring onto the far
    /// minimum, and migrates every in-window hint into the ring. Live
    /// hints are never behind `base` (the window never slides past a
    /// live schedule), so the purged minimum is a safe rebase target.
    fn sync_far(&mut self) {
        let mut min: Option<u64> = None;
        let mut i = 0;
        while i < self.far.len() {
            let (at, comp) = self.far[i];
            if self.scheduled[comp as usize] != at {
                self.far.swap_remove(i);
                continue;
            }
            if min.is_none_or(|m| at.wrapping_sub(self.base) < m.wrapping_sub(self.base)) {
                min = Some(at);
            }
            i += 1;
        }
        let Some(m) = min else { return };
        if self.top == 0 {
            self.base = m;
        }
        if m.wrapping_sub(self.base) >= RING as u64 {
            return;
        }
        let mut i = 0;
        while i < self.far.len() {
            let (at, comp) = self.far[i];
            if at.wrapping_sub(self.base) < RING as u64 {
                self.far.swap_remove(i);
                self.insert_hint(comp, at);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::rng::Rng;
    use std::collections::BTreeMap;

    /// Reference model: a plain map from component to wake-up cycle,
    /// popped by exhaustive min-scan (the thing the calendar replaces).
    #[derive(Default)]
    struct Naive {
        scheduled: BTreeMap<u32, u64>,
        base: u64,
    }

    impl Naive {
        fn schedule(&mut self, comp: u32, at: u64) {
            let e = self.scheduled.entry(comp).or_insert(at);
            if at.wrapping_sub(self.base) < e.wrapping_sub(self.base) {
                *e = at;
            }
        }

        fn pop_next(&mut self) -> Option<(u64, Vec<u32>)> {
            let base = self.base;
            let t = self.scheduled.values().copied().min_by_key(|at| at.wrapping_sub(base))?;
            let due: Vec<u32> =
                self.scheduled.iter().filter(|&(_, &at)| at == t).map(|(&c, _)| c).collect();
            for c in &due {
                self.scheduled.remove(c);
            }
            self.base = t;
            Some((t, due))
        }
    }

    fn drain(cal: &mut Calendar) -> Vec<(u64, Vec<u32>)> {
        let mut out = Vec::new();
        let mut due = Vec::new();
        while let Some(t) = cal.pop_next(&mut due) {
            due.sort_unstable();
            out.push((t, due.clone()));
        }
        out
    }

    #[test]
    fn pops_in_cycle_order_with_batched_components() {
        let mut cal = Calendar::new(4, 0);
        cal.schedule(0, 100);
        cal.schedule(1, 5);
        cal.schedule(2, 100);
        cal.schedule(3, 6000); // beyond the 4096 window -> far list
        assert_eq!(drain(&mut cal), vec![(5, vec![1]), (100, vec![0, 2]), (6000, vec![3])]);
    }

    #[test]
    fn earliest_wins_and_later_requests_are_noops() {
        let mut cal = Calendar::new(2, 0);
        cal.schedule(0, 500);
        cal.schedule(0, 20); // pull earlier: wins
        cal.schedule(0, 300); // later than current 20: no-op
        assert_eq!(cal.scheduled_at(0), Some(20));
        let mut due = Vec::new();
        assert_eq!(cal.pop_next(&mut due), Some(20));
        assert_eq!(due, vec![0]);
        // The stale 500-hint must not resurrect component 0.
        assert_eq!(cal.pop_next(&mut due), None);
        assert_eq!(cal.scheduled_at(0), None);
    }

    #[test]
    fn reschedule_onto_a_stale_hint_cycle_pops_once() {
        let mut cal = Calendar::new(1, 0);
        cal.schedule(0, 64); // hint A at 64
        cal.schedule(0, 10); // hint B at 10; A is now stale
        let mut due = Vec::new();
        assert_eq!(cal.pop_next(&mut due), Some(10));
        cal.schedule(0, 64); // hint C joins stale A in slot 64
        assert_eq!(cal.pop_next(&mut due), Some(64));
        assert_eq!(due, vec![0], "duplicate hints must collapse to one pop");
        assert_eq!(cal.pop_next(&mut due), None);
    }

    #[test]
    fn cancel_drops_the_pending_wakeup() {
        let mut cal = Calendar::new(2, 0);
        cal.schedule(0, 7);
        cal.schedule(1, 9);
        cal.cancel(0);
        let mut due = Vec::new();
        assert_eq!(cal.pop_next(&mut due), Some(9));
        assert_eq!(due, vec![1]);
        assert_eq!(cal.pop_next(&mut due), None);
    }

    #[test]
    fn window_rollover_migrates_far_entries() {
        let mut cal = Calendar::new(3, 0);
        // Spread across several full ring rotations.
        cal.schedule(0, 3 * 4096 + 17);
        cal.schedule(1, 10 * 4096 + 1);
        cal.schedule(2, 1);
        assert_eq!(
            drain(&mut cal),
            vec![(1, vec![2]), (3 * 4096 + 17, vec![0]), (10 * 4096 + 1, vec![1])]
        );
    }

    /// A far entry must not be shadowed by a later in-window hint once
    /// the window slides over it (refresh horizons sit just past the
    /// 4096 window in the real system, so this path is hot).
    #[test]
    fn far_entry_entering_the_window_beats_a_later_ring_hint() {
        let mut cal = Calendar::new(3, 0);
        cal.schedule(0, 10);
        cal.schedule(1, 5000); // far at insert time
        let mut due = Vec::new();
        assert_eq!(cal.pop_next(&mut due), Some(10));
        // Window is now based at 10: 5000 is in [10, 10+4096).
        cal.schedule(2, 5500); // ring hint, later than the far entry
        assert_eq!(cal.pop_next(&mut due), Some(5000));
        assert_eq!(due, vec![1]);
        assert_eq!(cal.pop_next(&mut due), Some(5500));
        assert_eq!(due, vec![2]);
    }

    #[test]
    fn u64_wraparound_orders_across_the_boundary() {
        // A component parked just before u64::MAX and one just after the
        // wrap: the pre-wrap cycle must pop first, and scheduling past
        // the wrap from a pre-wrap base must work.
        let base = u64::MAX - 100;
        let mut cal = Calendar::new(3, base);
        cal.schedule(0, u64::MAX - 2);
        cal.schedule(1, 3); // wrapped: 105 cycles after base
        cal.schedule(2, u64::MAX.wrapping_add(5000)); // wrapped far entry
        assert_eq!(drain(&mut cal), vec![(u64::MAX - 2, vec![0]), (3, vec![1]), (4999, vec![2])]);
    }

    /// Differential fuzz against the min-scan reference: random
    /// interleavings of schedules (near, far, duplicate, re-pull) and
    /// pops, including bases near the u64 wrap, must pop identical
    /// (cycle, component-set) sequences. This is the never-skip-past-
    /// the-nearest-event invariant: the calendar may never report a
    /// cycle later than the true minimum.
    #[test]
    fn differential_fuzz_against_min_scan_reference() {
        for seed in 0..32u64 {
            let start = if seed % 4 == 3 { u64::MAX - 5000 } else { seed * 977 };
            let mut rng = Rng::new(0xca1e_da55 ^ seed);
            let mut cal = Calendar::new(24, start);
            let mut naive = Naive { base: start, ..Naive::default() };
            let mut now = start;
            let mut due = Vec::new();
            for _ in 0..600 {
                if !rng.next_u64().is_multiple_of(3) {
                    let comp = (rng.next_u64() % 24) as u32;
                    // Mix in-window, boundary and multi-rotation-far
                    // offsets, including 0 (schedule at `now`).
                    let at = now.wrapping_add(match rng.next_u64() % 5 {
                        0 => 0,
                        1 => rng.next_u64() % 8,
                        2 => rng.next_u64() % 4096,
                        3 => 4095 + rng.next_u64() % 3,
                        _ => rng.next_u64() % 50_000,
                    });
                    cal.schedule(comp, at);
                    naive.schedule(comp, at);
                } else {
                    let got = cal.pop_next(&mut due).map(|t| {
                        due.sort_unstable();
                        (t, due.clone())
                    });
                    let want = naive.pop_next();
                    assert_eq!(got, want, "seed {seed} diverged at now {now}");
                    if let Some((t, _)) = got {
                        now = t;
                    }
                }
            }
            // Drain both to the end.
            loop {
                let got = cal.pop_next(&mut due).map(|t| {
                    due.sort_unstable();
                    (t, due.clone())
                });
                let want = naive.pop_next();
                assert_eq!(got, want, "seed {seed} diverged draining");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
