//! Simulation-as-a-service: the `orderlight serve` daemon.
//!
//! A dependency-free, thread-per-connection TCP server over
//! [`std::net::TcpListener`] that accepts scenario requests on a
//! newline-delimited JSON protocol, batches independent runs onto a
//! persistent worker pool (the run-level parallelism unit from
//! [`crate::pool`]), streams progress and final [`RunStats`] back to
//! many concurrent clients, and memoizes completed runs in a bounded
//! LRU cache keyed by [`crate::Scenario::canonical_hash`].
//!
//! ## Wire protocol
//!
//! One JSON object per line, both directions. A request is either an
//! `orderlight/scenario/v1` document ([`crate::schema`]) with an
//! optional extra `"id"` field echoed back verbatim, or an admin
//! command:
//!
//! | request | terminal reply |
//! |---|---|
//! | scenario document | `{"reply":"result",...}` (below) |
//! | `{"cmd":"stats"}` | [`SERVICE_STATS_SCHEMA_V1`]: cache size / hits / misses / hit ratio / insertions / evictions / SLO |
//! | `{"cmd":"metrics"}` | [`SERVICE_METRICS_SCHEMA_V1`]: canonical-JSON registry snapshot (`"format":"text"` for exposition lines) |
//! | `{"cmd":"flightrec"}` | [`FLIGHTREC_SCHEMA_V1`]: recent request records + last error payloads |
//! | `{"cmd":"shutdown"}` | `{"reply":"bye"}` and the daemon exits |
//!
//! A scenario request answers with up to three lines:
//!
//! ```text
//! {"id":7,"reply":"accepted","scenario_hash":"0x..."}   (cache miss only)
//! {"id":7,"reply":"running"}                            (cache miss only)
//! {"id":7,"reply":"result","cached":false,"latency_us":...,"slo":{...},"span":{...},"stats":{...}}
//! ```
//!
//! Every failure is a typed single-line reply, never a dropped
//! connection: `{"reply":"error","kind":K,"message":...}` with `kind`
//! one of `parse` (malformed JSON), `schema` (versioning / unknown
//! field / bad value, see [`crate::schema::SchemaError`]), `config`
//! (fields valid but
//! inconsistent), `sim` (the run itself failed) or `proto` (bad admin
//! command).
//!
//! ## The telemetry plane
//!
//! The daemon carries a live [`MetricsRegistry`]: per-state request
//! counters, cache hit/miss/insertion/eviction counters and a size
//! gauge, queue depth, per-worker busy/idle time, bytes in/out, and
//! sharded latency histograms. Every request is measured as a
//! [`SpanPhases`] (parse → queue-wait → run → serialize → write) that
//! rides the result reply under `"span"` and lands — with the scenario
//! hash and outcome — in a bounded flight recorder
//! ([`FLIGHT_RECORDER_REQUESTS`] recent requests,
//! [`FLIGHT_RECORDER_ERRORS`] recent error payloads).
//!
//! Telemetry is **observe-only**: every counter, span and flight
//! record for a request commits *before* its terminal reply bytes are
//! written (so a client that has read its reply always sees the
//! request reflected in the very next metrics snapshot), and disabling
//! telemetry ([`Server::with_telemetry`]) changes no result `stats`
//! payload — the contract the serve smoke gate `cmp`s. Snapshot
//! semantics: metric groups `requests`, `cache` and `queue` are exact
//! and deterministic under a serialized session; `io`, `workers` and
//! `timing` are wall-clock and only monotonicity is guaranteed.
//!
//! ## Why the cache is exact
//!
//! [`crate::System::run`] is a pure function of its config — the
//! parallel-equivalence and core-equivalence suites prove bit-identical
//! results at any worker count and under either execution core. A
//! request's canonical hash therefore fully determines its reply bytes,
//! so a cached reply *is* the true reply, not an approximation; the
//! `ci.sh` smoke gate `cmp`s served replies against a direct in-process
//! run. Results enter the cache before the socket write, so a client
//! disconnecting mid-run never loses the work — and because the cache
//! is exact, LRU eviction ([`Server::with_cache_max`]) is purely a
//! memory/latency trade: an evicted scenario recomputes bit-identically.
//!
//! The bench suite's `point_latency_us` percentiles become the service
//! SLO: every result reply carries the p50/p95/p99 of request latency
//! so far, and `{"cmd":"stats"}` exposes hit/miss counters.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use orderlight_trace::json::{self, Value};
use orderlight_trace::{Counter, Gauge, Histogram, MetricsRegistry, ShardedHistogram, SpanPhases};

use crate::schema::{stats_to_value, ScenarioSpec};

/// Schema tag of the `{"cmd":"stats"}` reply.
pub const SERVICE_STATS_SCHEMA_V1: &str = "orderlight/service-stats/v1";
/// Schema tag of the `{"cmd":"metrics"}` reply.
pub const SERVICE_METRICS_SCHEMA_V1: &str = "orderlight/service-metrics/v1";
/// Schema tag of the `{"cmd":"flightrec"}` reply.
pub const FLIGHTREC_SCHEMA_V1: &str = "orderlight/flightrec/v1";

/// How many recent request records the flight recorder retains.
pub const FLIGHT_RECORDER_REQUESTS: usize = 256;
/// How many recent error payloads the flight recorder retains.
pub const FLIGHT_RECORDER_ERRORS: usize = 32;

/// How often a blocked connection reader wakes up to check for
/// shutdown, so `run` can join handler threads even when a client
/// holds an idle connection open.
const READ_POLL: Duration = Duration::from_millis(100);

/// What a worker reports back to the connection handler that enqueued
/// the job.
enum JobEvent {
    /// The run left the queue and started executing.
    Started,
    /// The run finished: the canonical stats JSON, or a message.
    Finished(Result<String, String>),
}

/// One queued simulation.
struct Job {
    spec: ScenarioSpec,
    hash: u64,
    events: mpsc::Sender<JobEvent>,
}

/// The scenario cache: canonical hash → canonical stats JSON, bounded
/// by LRU eviction when `max > 0`. Recency is a logical tick stamped on
/// every hit and insert; eviction removes the smallest stamp. The map
/// stays small (eviction bounds it), so the O(len) stamp scan on insert
/// is cheaper than maintaining an intrusive list.
struct LruCache {
    map: HashMap<u64, (String, u64)>,
    tick: u64,
    max: usize,
    insertions: u64,
    evictions: u64,
}

impl LruCache {
    /// `max == 0` means unbounded.
    fn new(max: usize) -> Self {
        LruCache { map: HashMap::new(), tick: 0, max, insertions: 0, evictions: 0 }
    }

    /// Looks up a result, refreshing its recency on a hit.
    fn get(&mut self, hash: u64) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&hash).map(|(json, stamp)| {
            *stamp = tick;
            json.clone()
        })
    }

    /// Inserts a result, evicting least-recently-used entries while the
    /// bound is exceeded. Returns `(newly inserted, entries evicted)`.
    fn insert(&mut self, hash: u64, json: String) -> (bool, usize) {
        self.tick += 1;
        let fresh = self.map.insert(hash, (json, self.tick)).is_none();
        if fresh {
            self.insertions += 1;
        }
        let mut evicted = 0;
        while self.max > 0 && self.map.len() > self.max {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&h, _)| h)
                .expect("non-empty cache");
            self.map.remove(&oldest);
            evicted += 1;
        }
        self.evictions += evicted as u64;
        (fresh, evicted)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// One flight-recorder entry: what happened to a recent request.
struct FlightRecord {
    seq: u64,
    hash: Option<u64>,
    outcome: String,
    span: SpanPhases,
    latency_us: u64,
}

/// Bounded ring of recent request records plus the last N error
/// payloads — the "what just happened" surface behind
/// `{"cmd":"flightrec"}`.
#[derive(Default)]
struct FlightRecorder {
    next_seq: u64,
    requests: VecDeque<FlightRecord>,
    errors: VecDeque<String>,
}

impl FlightRecorder {
    fn record(&mut self, hash: Option<u64>, outcome: String, span: SpanPhases, latency_us: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.requests.push_back(FlightRecord { seq, hash, outcome, span, latency_us });
        while self.requests.len() > FLIGHT_RECORDER_REQUESTS {
            self.requests.pop_front();
        }
    }

    fn record_error(&mut self, payload: String) {
        self.errors.push_back(payload);
        while self.errors.len() > FLIGHT_RECORDER_ERRORS {
            self.errors.pop_front();
        }
    }

    #[allow(clippy::cast_precision_loss)]
    fn to_value(&self) -> (Value, Value) {
        let requests: Vec<Value> = self
            .requests
            .iter()
            .map(|r| {
                let mut map = BTreeMap::new();
                map.insert("seq".to_string(), Value::Num(r.seq as f64));
                if let Some(hash) = r.hash {
                    map.insert("scenario_hash".to_string(), Value::Str(format!("{hash:#018x}")));
                }
                map.insert("outcome".to_string(), Value::Str(r.outcome.clone()));
                map.insert("latency_us".to_string(), Value::Num(r.latency_us as f64));
                map.insert("phases".to_string(), r.span.to_value());
                Value::Obj(map)
            })
            .collect();
        let errors: Vec<Value> = self.errors.iter().map(|e| Value::Str(e.clone())).collect();
        (Value::Arr(requests), Value::Arr(errors))
    }
}

/// The registered metric handles plus the flight recorder — present
/// only when telemetry is enabled. Handles are registered once at
/// server start; the hot path touches only relaxed atomics and sharded
/// histogram mutexes.
struct Telemetry {
    registry: MetricsRegistry,
    requests_received: Arc<Counter>,
    requests_accepted: Arc<Counter>,
    requests_running: Arc<Counter>,
    requests_result: Arc<Counter>,
    requests_error: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_insertions: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_size: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    workers_busy: Arc<Gauge>,
    workers_jobs: Arc<Counter>,
    workers_busy_us: Arc<Counter>,
    workers_idle_us: Arc<Counter>,
    io_bytes_in: Arc<Counter>,
    io_bytes_out: Arc<Counter>,
    timing_latency_us: Arc<ShardedHistogram>,
    timing_queue_wait_us: Arc<ShardedHistogram>,
    timing_run_us: Arc<ShardedHistogram>,
    flightrec: Mutex<FlightRecorder>,
}

impl Telemetry {
    fn new(workers: usize) -> Self {
        let registry = MetricsRegistry::new();
        let shards = workers.max(2);
        Telemetry {
            requests_received: registry.counter("requests.received"),
            requests_accepted: registry.counter("requests.accepted"),
            requests_running: registry.counter("requests.running"),
            requests_result: registry.counter("requests.result"),
            requests_error: registry.counter("requests.error"),
            cache_hits: registry.counter("cache.hits"),
            cache_misses: registry.counter("cache.misses"),
            cache_insertions: registry.counter("cache.insertions"),
            cache_evictions: registry.counter("cache.evictions"),
            cache_size: registry.gauge("cache.size"),
            queue_depth: registry.gauge("queue.depth"),
            workers_busy: registry.gauge("workers.busy"),
            workers_jobs: registry.counter("workers.jobs"),
            workers_busy_us: registry.counter("workers.busy_us"),
            workers_idle_us: registry.counter("workers.idle_us"),
            io_bytes_in: registry.counter("io.bytes_in"),
            io_bytes_out: registry.counter("io.bytes_out"),
            timing_latency_us: registry.histogram("timing.latency_us", shards, 1, 40),
            timing_queue_wait_us: registry.histogram("timing.queue_wait_us", shards, 1, 40),
            timing_run_us: registry.histogram("timing.run_us", shards, 1, 40),
            flightrec: Mutex::new(FlightRecorder::default()),
            registry,
        }
    }
}

/// State shared between the acceptor, connection handlers and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    cache: Mutex<LruCache>,
    /// Request latency in µs (queue wait + run, or cache lookup).
    latency_us: Mutex<Histogram>,
    hits: AtomicU64,
    misses: AtomicU64,
    slow_us: Option<u64>,
    telemetry: Option<Telemetry>,
    shutdown: AtomicBool,
}

impl Shared {
    fn new(workers: usize, cache_max: usize, slow_ms: Option<u64>, telemetry: bool) -> Self {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            cache: Mutex::new(LruCache::new(cache_max)),
            latency_us: Mutex::new(Histogram::exponential(1, 40)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            slow_us: slow_ms.map(|ms| ms.saturating_mul(1000)),
            telemetry: telemetry.then(|| Telemetry::new(workers)),
            shutdown: AtomicBool::new(false),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Records one request latency and returns the SLO percentiles
    /// including it.
    fn record_latency(&self, us: u64) -> Value {
        let mut hist = self.latency_us.lock().expect("latency lock");
        hist.record(us);
        slo_value(&hist)
    }

    /// Inserts a finished run into the cache, applying the LRU bound
    /// and mirroring size/insertion/eviction telemetry under the cache
    /// lock (so gauge and map never disagree).
    fn cache_insert(&self, hash: u64, stats_json: String) {
        let mut cache = self.cache.lock().expect("cache lock");
        let (fresh, evicted) = cache.insert(hash, stats_json);
        if let Some(t) = &self.telemetry {
            if fresh {
                t.cache_insertions.inc();
            }
            t.cache_evictions.add(evicted as u64);
            t.cache_size.set(i64::try_from(cache.len()).unwrap_or(i64::MAX));
        }
    }

    /// Commits a terminal `result` for a request: per-state counters,
    /// hit/miss attribution, timing histograms and the flight record —
    /// all *before* the reply bytes leave the socket.
    fn commit_result(&self, hash: u64, cached: bool, span: SpanPhases, latency_us: u64) {
        if let Some(t) = &self.telemetry {
            t.requests_result.inc();
            if cached {
                t.cache_hits.inc();
            } else {
                t.cache_misses.inc();
                t.timing_queue_wait_us.record(span.queue_us);
                t.timing_run_us.record(span.run_us);
            }
            t.timing_latency_us.record(latency_us);
            let outcome = if cached { "result-hit" } else { "result-miss" };
            t.flightrec.lock().expect("flightrec lock").record(
                Some(hash),
                outcome.to_string(),
                span,
                latency_us,
            );
        }
    }

    /// Commits a terminal `error` reply: the error counter, the flight
    /// record and the error-payload ring.
    fn commit_error(&self, hash: Option<u64>, span: SpanPhases, latency_us: u64, reply: &Value) {
        if let Some(t) = &self.telemetry {
            t.requests_error.inc();
            let kind = reply.get("kind").and_then(Value::as_str).unwrap_or("unknown");
            let mut rec = t.flightrec.lock().expect("flightrec lock");
            rec.record(hash, format!("error:{kind}"), span, latency_us);
            rec.record_error(reply.to_json());
        }
    }
}

/// `{"p50":..,"p95":..,"p99":..}` from a latency histogram.
fn slo_value(hist: &Histogram) -> Value {
    let mut slo = BTreeMap::new();
    for (name, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        #[allow(clippy::cast_precision_loss)]
        let v = hist.percentile(p).unwrap_or(0) as f64;
        slo.insert(name.to_string(), Value::Num(v));
    }
    Value::Obj(slo)
}

/// The `orderlight serve` daemon. [`Server::bind`] it, read
/// [`Server::local_addr`], then [`Server::run`] — which blocks until a
/// client sends `{"cmd": "shutdown"}`.
pub struct Server {
    listener: TcpListener,
    workers: usize,
    cache_max: usize,
    slow_ms: Option<u64>,
    telemetry: bool,
}

impl Server {
    /// Binds the listener. `workers` is clamped to at least 1.
    /// Telemetry defaults to enabled, the cache to unbounded, the slow
    /// log to off.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: &str, workers: usize) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            workers: workers.max(1),
            cache_max: 0,
            slow_ms: None,
            telemetry: true,
        })
    }

    /// Bounds the scenario cache to `max` entries with LRU eviction
    /// (`0` = unbounded, the default).
    #[must_use]
    pub fn with_cache_max(mut self, max: usize) -> Server {
        self.cache_max = max;
        self
    }

    /// Enables the slow-request log: a request whose run phase exceeds
    /// `ms` milliseconds emits one canonical-JSON line to stderr.
    #[must_use]
    pub fn with_slow_ms(mut self, ms: Option<u64>) -> Server {
        self.slow_ms = ms;
        self
    }

    /// Enables or disables the telemetry plane (metrics registry,
    /// spans, flight recorder). Disabling it changes no result `stats`
    /// payload — telemetry only observes.
    #[must_use]
    pub fn with_telemetry(mut self, on: bool) -> Server {
        self.telemetry = on;
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown: spawns the worker pool, then accepts
    /// connections and handles each on its own thread. Returns once
    /// every worker and handler has joined.
    ///
    /// # Errors
    /// Propagates accept failures other than shutdown.
    pub fn run(self) -> std::io::Result<()> {
        let shared = Shared::new(self.workers, self.cache_max, self.slow_ms, self.telemetry);
        let addr = self.local_addr()?;
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| worker_loop(&shared));
            }
            for stream in self.listener.incoming() {
                if shared.shutting_down() {
                    break;
                }
                let stream = stream?;
                let shared = &shared;
                scope.spawn(move || handle_connection(stream, shared, addr));
            }
            // Unblock the workers so the scope can join them.
            shared.available.notify_all();
            Ok(())
        })
    }
}

/// Pops jobs until shutdown. Runs each scenario with panics contained,
/// inserts the canonical result into the cache *before* reporting back
/// (a disconnected client must not lose the work), then wakes the
/// handler. Time blocked on the queue is idle, time in the run busy.
fn worker_loop(shared: &Shared) {
    loop {
        let idle_start = Instant::now();
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutting_down() {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        if let Some(t) = &shared.telemetry {
            t.workers_idle_us.add(elapsed_us(idle_start));
            t.queue_depth.dec();
            t.workers_busy.inc();
        }
        let _ = job.events.send(JobEvent::Started);
        let busy_start = Instant::now();
        let outcome = run_job(&job.spec);
        if let Ok(stats_json) = &outcome {
            shared.cache_insert(job.hash, stats_json.clone());
        }
        if let Some(t) = &shared.telemetry {
            t.workers_busy_us.add(elapsed_us(busy_start));
            t.workers_jobs.inc();
            t.workers_busy.dec();
        }
        let _ = job.events.send(JobEvent::Finished(outcome));
    }
}

/// Builds and runs one scenario, mapping panics and simulation errors
/// to messages. Returns the canonical stats JSON on success.
fn run_job(spec: &ScenarioSpec) -> Result<String, String> {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let scenario = spec.build().map_err(|e| e.to_string())?;
        let stats = scenario.run().map_err(|e| e.to_string())?;
        Ok(stats_to_value(&stats).to_json())
    }));
    run.unwrap_or_else(|_| Err("simulation panicked".to_string()))
}

/// Serves one client connection: a loop of request lines, each
/// answered with typed reply lines. Returns (dropping the connection)
/// on EOF, socket error or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared, self_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(n) => {
                if let Some(t) = &shared.telemetry {
                    t.io_bytes_in.add(n as u64);
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        if !handle_request(line.trim(), &mut writer, shared, self_addr) {
            return;
        }
    }
}

/// Writes an error reply, committing its telemetry first.
fn fail(
    writer: &mut TcpStream,
    shared: &Shared,
    start: Instant,
    mut span: SpanPhases,
    reply: &Value,
) -> bool {
    span.parse_us = span.parse_us.max(elapsed_us(start));
    shared.commit_error(None, span, elapsed_us(start), reply);
    write_reply(writer, reply, shared)
}

/// Handles one request line. Returns `false` when the connection
/// should close (write failure or shutdown).
fn handle_request(line: &str, writer: &mut TcpStream, shared: &Shared, addr: SocketAddr) -> bool {
    let start = Instant::now();
    if let Some(t) = &shared.telemetry {
        t.requests_received.inc();
    }
    let mut span = SpanPhases::default();
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            let reply = error_reply(None, "parse", &e.to_string());
            return fail(writer, shared, start, span, &reply);
        }
    };
    // Envelope: an optional "id" echoed on every reply for this
    // request; "cmd" marks an admin request.
    let (doc, id) = split_id(doc);
    if let Value::Obj(map) = &doc {
        if let Some(cmd) = map.get("cmd") {
            return handle_admin(cmd, &doc, id.as_ref(), writer, shared, addr);
        }
    }
    let spec = match ScenarioSpec::from_value(&doc) {
        Ok(spec) => spec,
        Err(e) => {
            let reply = error_reply(id.as_ref(), "schema", &e.to_string());
            return fail(writer, shared, start, span, &reply);
        }
    };
    let scenario = match spec.build() {
        Ok(s) => s,
        Err(e) => {
            let reply = error_reply(id.as_ref(), "config", &e.to_string());
            return fail(writer, shared, start, span, &reply);
        }
    };
    let hash = scenario.canonical_hash();
    span.parse_us = elapsed_us(start);

    if let Some(stats_json) = shared.cache.lock().expect("cache lock").get(hash) {
        shared.hits.fetch_add(1, Ordering::Relaxed);
        let us = elapsed_us(start);
        let slo = shared.record_latency(us);
        let serialize_start = Instant::now();
        let mut reply = result_reply(id.as_ref(), true, us, slo, &stats_json);
        span.serialize_us = elapsed_us(serialize_start);
        if shared.telemetry.is_some() {
            reply.insert("span".to_string(), span.to_value());
        }
        shared.commit_result(hash, true, span, us);
        return write_reply(writer, &Value::Obj(reply), shared);
    }

    shared.misses.fetch_add(1, Ordering::Relaxed);
    let mut accepted = reply_base(id.as_ref(), "accepted");
    accepted.insert("scenario_hash".to_string(), Value::Str(format!("{hash:#018x}")));
    if let Some(t) = &shared.telemetry {
        t.requests_accepted.inc();
    }
    let write_start = Instant::now();
    if !write_reply(writer, &Value::Obj(accepted), shared) {
        return false;
    }
    span.write_us += elapsed_us(write_start);

    let (tx, rx) = mpsc::channel();
    let enqueued = Instant::now();
    shared.queue.lock().expect("queue lock").push_back(Job { spec, hash, events: tx });
    if let Some(t) = &shared.telemetry {
        t.queue_depth.inc();
    }
    shared.available.notify_one();

    // The worker owns the run; this handler only relays events, so a
    // dead client can break the relay without wedging the worker.
    let mut client_alive = true;
    let mut run_started = enqueued;
    loop {
        match rx.recv() {
            Ok(JobEvent::Started) => {
                run_started = Instant::now();
                span.queue_us = elapsed_us(enqueued);
                if let Some(t) = &shared.telemetry {
                    t.requests_running.inc();
                }
                if client_alive {
                    let write_start = Instant::now();
                    client_alive = write_reply(
                        writer,
                        &Value::Obj(reply_base(id.as_ref(), "running")),
                        shared,
                    );
                    span.write_us += elapsed_us(write_start);
                }
            }
            Ok(JobEvent::Finished(Ok(stats_json))) => {
                span.run_us = elapsed_us(run_started);
                let us = elapsed_us(start);
                let slo = shared.record_latency(us);
                let serialize_start = Instant::now();
                let mut reply = result_reply(id.as_ref(), false, us, slo, &stats_json);
                span.serialize_us = elapsed_us(serialize_start);
                if shared.telemetry.is_some() {
                    reply.insert("span".to_string(), span.to_value());
                }
                shared.commit_result(hash, false, span, us);
                slow_log(shared, hash, &span);
                if client_alive {
                    client_alive = write_reply(writer, &Value::Obj(reply), shared);
                }
                return client_alive;
            }
            Ok(JobEvent::Finished(Err(message))) => {
                span.run_us = elapsed_us(run_started);
                let reply = error_reply(id.as_ref(), "sim", &message);
                shared.commit_error(Some(hash), span, elapsed_us(start), &reply);
                if client_alive {
                    client_alive = write_reply(writer, &reply, shared);
                }
                return client_alive;
            }
            Err(_) => return false,
        }
    }
}

/// Emits the slow-request log line when the run phase exceeded the
/// configured threshold: one canonical-JSON record on stderr with the
/// scenario hash and the full phase breakdown.
fn slow_log(shared: &Shared, hash: u64, span: &SpanPhases) {
    let Some(threshold_us) = shared.slow_us else { return };
    if span.run_us <= threshold_us {
        return;
    }
    let mut map = BTreeMap::new();
    map.insert("event".to_string(), Value::Str("slow_request".to_string()));
    map.insert("scenario_hash".to_string(), Value::Str(format!("{hash:#018x}")));
    #[allow(clippy::cast_precision_loss)]
    map.insert("run_us".to_string(), Value::Num(span.run_us as f64));
    #[allow(clippy::cast_precision_loss)]
    map.insert("threshold_us".to_string(), Value::Num(threshold_us as f64));
    map.insert("phases".to_string(), span.to_value());
    eprintln!("{}", Value::Obj(map).to_json());
}

/// Handles `{"cmd": ...}`. Returns `false` to close the connection.
fn handle_admin(
    cmd: &Value,
    doc: &Value,
    id: Option<&Value>,
    writer: &mut TcpStream,
    shared: &Shared,
    addr: SocketAddr,
) -> bool {
    let num = |v: u64| {
        #[allow(clippy::cast_precision_loss)]
        Value::Num(v as f64)
    };
    match cmd.as_str() {
        Some("shutdown") => {
            shared.shutdown.store(true, Ordering::Relaxed);
            shared.available.notify_all();
            // Poke the acceptor loop so it observes the flag.
            let _ = TcpStream::connect(addr);
            write_reply(writer, &Value::Obj(reply_base(id, "bye")), shared);
            false
        }
        Some("stats") => {
            let mut reply = reply_base(id, "stats");
            reply.insert("schema".to_string(), Value::Str(SERVICE_STATS_SCHEMA_V1.to_string()));
            let hits = shared.hits.load(Ordering::Relaxed);
            let misses = shared.misses.load(Ordering::Relaxed);
            reply.insert("hits".to_string(), num(hits));
            reply.insert("misses".to_string(), num(misses));
            let ratio = if hits + misses == 0 {
                0.0
            } else {
                #[allow(clippy::cast_precision_loss)]
                {
                    hits as f64 / (hits + misses) as f64
                }
            };
            reply.insert("hit_ratio".to_string(), Value::Num(ratio));
            {
                let cache = shared.cache.lock().expect("cache lock");
                let size = num(cache.len() as u64);
                reply.insert("cached_scenarios".to_string(), size.clone());
                reply.insert("cache_size".to_string(), size);
                reply.insert("cache_max".to_string(), num(cache.max as u64));
                reply.insert("insertions".to_string(), num(cache.insertions));
                reply.insert("evictions".to_string(), num(cache.evictions));
            }
            reply.insert("slo".to_string(), slo_value(&shared.latency_us.lock().expect("latency")));
            write_reply(writer, &Value::Obj(reply), shared)
        }
        Some("metrics") => {
            let Some(t) = &shared.telemetry else {
                let reply = error_reply(id, "proto", "telemetry is disabled on this server");
                return write_reply(writer, &reply, shared);
            };
            let mut reply = reply_base(id, "metrics");
            reply.insert("schema".to_string(), Value::Str(SERVICE_METRICS_SCHEMA_V1.to_string()));
            if doc.get("format").and_then(Value::as_str) == Some("text") {
                reply.insert("text".to_string(), Value::Str(t.registry.to_text()));
            } else {
                reply.insert("snapshot".to_string(), t.registry.snapshot_value());
            }
            write_reply(writer, &Value::Obj(reply), shared)
        }
        Some("flightrec") => {
            let Some(t) = &shared.telemetry else {
                let reply = error_reply(id, "proto", "telemetry is disabled on this server");
                return write_reply(writer, &reply, shared);
            };
            let mut reply = reply_base(id, "flightrec");
            reply.insert("schema".to_string(), Value::Str(FLIGHTREC_SCHEMA_V1.to_string()));
            reply.insert("capacity".to_string(), num(FLIGHT_RECORDER_REQUESTS as u64));
            let (requests, errors) = t.flightrec.lock().expect("flightrec lock").to_value();
            reply.insert("requests".to_string(), requests);
            reply.insert("errors".to_string(), errors);
            write_reply(writer, &Value::Obj(reply), shared)
        }
        _ => {
            let reply = error_reply(id, "proto", &format!("unknown cmd {cmd:?}"));
            shared.commit_error(None, SpanPhases::default(), 0, &reply);
            write_reply(writer, &reply, shared)
        }
    }
}

/// Pulls the optional `"id"` envelope field out of a request object so
/// the remainder is a pure schema document.
fn split_id(doc: Value) -> (Value, Option<Value>) {
    match doc {
        Value::Obj(mut map) => {
            let id = map.remove("id");
            (Value::Obj(map), id)
        }
        other => (other, None),
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn reply_base(id: Option<&Value>, reply: &str) -> BTreeMap<String, Value> {
    let mut map = BTreeMap::new();
    if let Some(id) = id {
        map.insert("id".to_string(), id.clone());
    }
    map.insert("reply".to_string(), Value::Str(reply.to_string()));
    map
}

fn error_reply(id: Option<&Value>, kind: &str, message: &str) -> Value {
    let mut map = reply_base(id, "error");
    map.insert("kind".to_string(), Value::Str(kind.to_string()));
    map.insert("message".to_string(), Value::Str(message.to_string()));
    Value::Obj(map)
}

fn result_reply(
    id: Option<&Value>,
    cached: bool,
    latency_us: u64,
    slo: Value,
    stats_json: &str,
) -> BTreeMap<String, Value> {
    let mut map = reply_base(id, "result");
    map.insert("cached".to_string(), Value::Bool(cached));
    #[allow(clippy::cast_precision_loss)]
    map.insert("latency_us".to_string(), Value::Num(latency_us as f64));
    map.insert("slo".to_string(), slo);
    let stats = json::parse(stats_json).unwrap_or(Value::Null);
    map.insert("stats".to_string(), stats);
    map
}

/// Serialises one reply and writes it as a line, counting the bytes
/// out. Returns `false` on a write failure (client gone).
fn write_reply(writer: &mut TcpStream, reply: &Value, shared: &Shared) -> bool {
    let mut line = reply.to_json();
    line.push('\n');
    if let Some(t) = &shared.telemetry {
        t.io_bytes_out.add(line.len() as u64);
    }
    writer.write_all(line.as_bytes()).is_ok()
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// Sends one request line to a server and collects reply lines until
/// the terminal `result` / `error` / `stats` / `metrics` / `flightrec`
/// / `bye` reply (or EOF).
///
/// # Errors
/// Propagates connection and write failures.
pub fn request(addr: &str, line: &str) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    let mut replies = Vec::new();
    for reply in BufReader::new(stream).lines() {
        let reply = reply?;
        let terminal = reply_kind(&reply).is_none_or(|k| {
            matches!(k.as_str(), "result" | "error" | "stats" | "metrics" | "flightrec" | "bye")
        });
        replies.push(reply);
        if terminal {
            break;
        }
    }
    Ok(replies)
}

/// The `"reply"` discriminator of a reply line, when it parses.
#[must_use]
pub fn reply_kind(line: &str) -> Option<String> {
    let doc = json::parse(line).ok()?;
    doc.get("reply")?.as_str().map(ToString::to_string)
}

/// Extracts the embedded `stats` object of a `result` reply and
/// re-serialises it canonically — byte-identical to what
/// [`stats_to_value`] produces for the same run, which is what lets
/// clients `cmp` a served reply against a local run.
#[must_use]
pub fn extract_stats(result_line: &str) -> Option<String> {
    let doc = json::parse(result_line).ok()?;
    if doc.get("reply")?.as_str()? != "result" {
        return None;
    }
    Some(doc.get("stats")?.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_builders_echo_the_id() {
        let id = Value::Num(7.0);
        let err = error_reply(Some(&id), "parse", "nope").to_json();
        assert_eq!(err, r#"{"id":7,"kind":"parse","message":"nope","reply":"error"}"#);
        let (doc, id) = split_id(json::parse(r#"{"id": 3, "cmd": "stats"}"#).unwrap());
        assert_eq!(id, Some(Value::Num(3.0)));
        assert!(doc.get("id").is_none());
        assert!(doc.get("cmd").is_some());
    }

    #[test]
    fn reply_kind_and_stats_extraction() {
        let slo = slo_value(&Histogram::exponential(1, 4));
        let line = Value::Obj(result_reply(None, true, 12, slo, r#"{"b":2,"a":1}"#)).to_json();
        assert_eq!(reply_kind(&line).as_deref(), Some("result"));
        // Canonical re-serialisation sorts the embedded keys.
        assert_eq!(extract_stats(&line).as_deref(), Some(r#"{"a":1,"b":2}"#));
        assert_eq!(extract_stats(r#"{"reply":"running"}"#), None);
    }

    #[test]
    fn lru_cache_evicts_the_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        assert_eq!(cache.insert(1, "a".into()), (true, 0));
        assert_eq!(cache.insert(2, "b".into()), (true, 0));
        // Touch 1 so 2 becomes the eviction victim.
        assert_eq!(cache.get(1).as_deref(), Some("a"));
        assert_eq!(cache.insert(3, "c".into()), (true, 1));
        assert_eq!(cache.get(2), None, "least-recently-used entry evicted");
        assert_eq!(cache.get(1).as_deref(), Some("a"));
        assert_eq!(cache.get(3).as_deref(), Some("c"));
        assert_eq!(cache.len(), 2);
        assert_eq!((cache.insertions, cache.evictions), (3, 1));
        // Re-inserting an existing key is not a new insertion.
        assert_eq!(cache.insert(1, "a2".into()), (false, 0));
        assert_eq!(cache.insertions, 3);
    }

    #[test]
    fn lru_cache_unbounded_never_evicts() {
        let mut cache = LruCache::new(0);
        for k in 0..100 {
            assert_eq!(cache.insert(k, format!("{k}")), (true, 0));
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.evictions, 0);
    }

    #[test]
    fn flight_recorder_rings_are_bounded() {
        let mut fr = FlightRecorder::default();
        for i in 0..(FLIGHT_RECORDER_REQUESTS as u64 + 10) {
            fr.record(Some(i), "result-miss".to_string(), SpanPhases::default(), i);
        }
        for i in 0..(FLIGHT_RECORDER_ERRORS + 5) {
            fr.record_error(format!("e{i}"));
        }
        assert_eq!(fr.requests.len(), FLIGHT_RECORDER_REQUESTS);
        assert_eq!(fr.errors.len(), FLIGHT_RECORDER_ERRORS);
        // Oldest entries dropped: the first surviving seq is 10.
        assert_eq!(fr.requests.front().map(|r| r.seq), Some(10));
        let (requests, errors) = fr.to_value();
        assert_eq!(requests.as_array().unwrap().len(), FLIGHT_RECORDER_REQUESTS);
        assert_eq!(errors.as_array().unwrap().len(), FLIGHT_RECORDER_ERRORS);
        assert_eq!(errors.as_array().unwrap()[0].as_str(), Some("e5"));
    }
}
