//! Simulation-as-a-service: the `orderlight serve` daemon.
//!
//! A dependency-free, thread-per-connection TCP server over
//! [`std::net::TcpListener`] that accepts scenario requests on a
//! newline-delimited JSON protocol, batches independent runs onto a
//! persistent worker pool (the run-level parallelism unit from
//! [`crate::pool`]), streams progress and final [`RunStats`] back to
//! many concurrent clients, and memoizes completed runs keyed by
//! [`crate::Scenario::canonical_hash`].
//!
//! ## Wire protocol
//!
//! One JSON object per line, both directions. A request is either an
//! `orderlight/scenario/v1` document ([`crate::schema`]) with an
//! optional extra `"id"` field echoed back verbatim, or an admin
//! command `{"cmd": "stats"}` / `{"cmd": "shutdown"}`. A scenario
//! request answers with up to three lines:
//!
//! ```text
//! {"id":7,"reply":"accepted","scenario_hash":"0x..."}   (cache miss only)
//! {"id":7,"reply":"running"}                            (cache miss only)
//! {"id":7,"reply":"result","cached":false,"latency_us":...,"slo":{...},"stats":{...}}
//! ```
//!
//! Every failure is a typed single-line reply, never a dropped
//! connection: `{"reply":"error","kind":K,"message":...}` with `kind`
//! one of `parse` (malformed JSON), `schema` (versioning / unknown
//! field / bad value, see [`crate::schema::SchemaError`]), `config`
//! (fields valid but
//! inconsistent), `sim` (the run itself failed) or `proto` (bad admin
//! command).
//!
//! ## Why the cache is exact
//!
//! [`crate::System::run`] is a pure function of its config — the
//! parallel-equivalence and core-equivalence suites prove bit-identical
//! results at any worker count and under either execution core. A
//! request's canonical hash therefore fully determines its reply bytes,
//! so a cached reply *is* the true reply, not an approximation; the
//! `ci.sh` smoke gate `cmp`s served replies against a direct in-process
//! run. Results enter the cache before the socket write, so a client
//! disconnecting mid-run never loses the work.
//!
//! The bench suite's `point_latency_us` percentiles become the service
//! SLO: every result reply carries the p50/p95/p99 of request latency
//! so far, and `{"cmd":"stats"}` exposes hit/miss counters.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

use orderlight_trace::json::{self, Value};
use orderlight_trace::Histogram;

use crate::schema::{stats_to_value, ScenarioSpec};

/// How often a blocked connection reader wakes up to check for
/// shutdown, so `run` can join handler threads even when a client
/// holds an idle connection open.
const READ_POLL: Duration = Duration::from_millis(100);

/// What a worker reports back to the connection handler that enqueued
/// the job.
enum JobEvent {
    /// The run left the queue and started executing.
    Started,
    /// The run finished: the canonical stats JSON, or a message.
    Finished(Result<String, String>),
}

/// One queued simulation.
struct Job {
    spec: ScenarioSpec,
    hash: u64,
    events: mpsc::Sender<JobEvent>,
}

/// State shared between the acceptor, connection handlers and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// canonical hash → canonical stats JSON.
    cache: Mutex<HashMap<u64, String>>,
    /// Request latency in µs (queue wait + run, or cache lookup).
    latency_us: Mutex<Histogram>,
    hits: AtomicU64,
    misses: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn new() -> Self {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            latency_us: Mutex::new(Histogram::exponential(1, 40)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Records one request latency and returns the SLO percentiles
    /// including it.
    fn record_latency(&self, us: u64) -> Value {
        let mut hist = self.latency_us.lock().expect("latency lock");
        hist.record(us);
        slo_value(&hist)
    }
}

/// `{"p50":..,"p95":..,"p99":..}` from a latency histogram.
fn slo_value(hist: &Histogram) -> Value {
    let mut slo = BTreeMap::new();
    for (name, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        #[allow(clippy::cast_precision_loss)]
        let v = hist.percentile(p).unwrap_or(0) as f64;
        slo.insert(name.to_string(), Value::Num(v));
    }
    Value::Obj(slo)
}

/// The `orderlight serve` daemon. [`Server::bind`] it, read
/// [`Server::local_addr`], then [`Server::run`] — which blocks until a
/// client sends `{"cmd": "shutdown"}`.
pub struct Server {
    listener: TcpListener,
    workers: usize,
}

impl Server {
    /// Binds the listener. `workers` is clamped to at least 1.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: &str, workers: usize) -> std::io::Result<Server> {
        Ok(Server { listener: TcpListener::bind(addr)?, workers: workers.max(1) })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown: spawns the worker pool, then accepts
    /// connections and handles each on its own thread. Returns once
    /// every worker and handler has joined.
    ///
    /// # Errors
    /// Propagates accept failures other than shutdown.
    pub fn run(self) -> std::io::Result<()> {
        let shared = Shared::new();
        let addr = self.local_addr()?;
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| worker_loop(&shared));
            }
            for stream in self.listener.incoming() {
                if shared.shutting_down() {
                    break;
                }
                let stream = stream?;
                let shared = &shared;
                scope.spawn(move || handle_connection(stream, shared, addr));
            }
            // Unblock the workers so the scope can join them.
            shared.available.notify_all();
            Ok(())
        })
    }
}

/// Pops jobs until shutdown. Runs each scenario with panics contained,
/// inserts the canonical result into the cache *before* reporting back
/// (a disconnected client must not lose the work), then wakes the
/// handler.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutting_down() {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        let _ = job.events.send(JobEvent::Started);
        let outcome = run_job(&job.spec);
        if let Ok(stats_json) = &outcome {
            shared.cache.lock().expect("cache lock").insert(job.hash, stats_json.clone());
        }
        let _ = job.events.send(JobEvent::Finished(outcome));
    }
}

/// Builds and runs one scenario, mapping panics and simulation errors
/// to messages. Returns the canonical stats JSON on success.
fn run_job(spec: &ScenarioSpec) -> Result<String, String> {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let scenario = spec.build().map_err(|e| e.to_string())?;
        let stats = scenario.run().map_err(|e| e.to_string())?;
        Ok(stats_to_value(&stats).to_json())
    }));
    run.unwrap_or_else(|_| Err("simulation panicked".to_string()))
}

/// Serves one client connection: a loop of request lines, each
/// answered with typed reply lines. Returns (dropping the connection)
/// on EOF, socket error or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared, self_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        if !handle_request(line.trim(), &mut writer, shared, self_addr) {
            return;
        }
    }
}

/// Handles one request line. Returns `false` when the connection
/// should close (write failure or shutdown).
fn handle_request(line: &str, writer: &mut TcpStream, shared: &Shared, addr: SocketAddr) -> bool {
    let start = Instant::now();
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return write_reply(writer, &error_reply(None, "parse", &e.to_string())),
    };
    // Envelope: an optional "id" echoed on every reply for this
    // request; "cmd" marks an admin request.
    let (doc, id) = split_id(doc);
    if let Value::Obj(map) = &doc {
        if let Some(cmd) = map.get("cmd") {
            return handle_admin(cmd, id.as_ref(), writer, shared, addr);
        }
    }
    let spec = match ScenarioSpec::from_value(&doc) {
        Ok(spec) => spec,
        Err(e) => return write_reply(writer, &error_reply(id.as_ref(), "schema", &e.to_string())),
    };
    let scenario = match spec.build() {
        Ok(s) => s,
        Err(e) => return write_reply(writer, &error_reply(id.as_ref(), "config", &e.to_string())),
    };
    let hash = scenario.canonical_hash();

    if let Some(stats_json) = shared.cache.lock().expect("cache lock").get(&hash).cloned() {
        shared.hits.fetch_add(1, Ordering::Relaxed);
        let slo = shared.record_latency(elapsed_us(start));
        let reply = result_reply(id.as_ref(), true, elapsed_us(start), slo, &stats_json);
        return write_reply(writer, &reply);
    }

    shared.misses.fetch_add(1, Ordering::Relaxed);
    let mut accepted = reply_base(id.as_ref(), "accepted");
    accepted.insert("scenario_hash".to_string(), Value::Str(format!("{hash:#018x}")));
    if !write_reply(writer, &Value::Obj(accepted)) {
        return false;
    }

    let (tx, rx) = mpsc::channel();
    shared.queue.lock().expect("queue lock").push_back(Job { spec, hash, events: tx });
    shared.available.notify_one();

    // The worker owns the run; this handler only relays events, so a
    // dead client can break the relay without wedging the worker.
    let mut client_alive = true;
    loop {
        match rx.recv() {
            Ok(JobEvent::Started) => {
                if client_alive {
                    client_alive =
                        write_reply(writer, &Value::Obj(reply_base(id.as_ref(), "running")));
                }
            }
            Ok(JobEvent::Finished(Ok(stats_json))) => {
                let us = elapsed_us(start);
                let slo = shared.record_latency(us);
                if client_alive {
                    client_alive = write_reply(
                        writer,
                        &result_reply(id.as_ref(), false, us, slo, &stats_json),
                    );
                }
                return client_alive;
            }
            Ok(JobEvent::Finished(Err(message))) => {
                if client_alive {
                    client_alive = write_reply(writer, &error_reply(id.as_ref(), "sim", &message));
                }
                return client_alive;
            }
            Err(_) => return false,
        }
    }
}

/// Handles `{"cmd": ...}`. Returns `false` to close the connection.
fn handle_admin(
    cmd: &Value,
    id: Option<&Value>,
    writer: &mut TcpStream,
    shared: &Shared,
    addr: SocketAddr,
) -> bool {
    match cmd.as_str() {
        Some("shutdown") => {
            shared.shutdown.store(true, Ordering::Relaxed);
            shared.available.notify_all();
            // Poke the acceptor loop so it observes the flag.
            let _ = TcpStream::connect(addr);
            write_reply(writer, &Value::Obj(reply_base(id, "bye")));
            false
        }
        Some("stats") => {
            let mut reply = reply_base(id, "stats");
            let num = |v: u64| {
                #[allow(clippy::cast_precision_loss)]
                Value::Num(v as f64)
            };
            reply.insert("hits".to_string(), num(shared.hits.load(Ordering::Relaxed)));
            reply.insert("misses".to_string(), num(shared.misses.load(Ordering::Relaxed)));
            reply.insert(
                "cached_scenarios".to_string(),
                num(shared.cache.lock().expect("cache lock").len() as u64),
            );
            reply.insert("slo".to_string(), slo_value(&shared.latency_us.lock().expect("latency")));
            write_reply(writer, &Value::Obj(reply))
        }
        _ => write_reply(writer, &error_reply(id, "proto", &format!("unknown cmd {cmd:?}"))),
    }
}

/// Pulls the optional `"id"` envelope field out of a request object so
/// the remainder is a pure schema document.
fn split_id(doc: Value) -> (Value, Option<Value>) {
    match doc {
        Value::Obj(mut map) => {
            let id = map.remove("id");
            (Value::Obj(map), id)
        }
        other => (other, None),
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn reply_base(id: Option<&Value>, reply: &str) -> BTreeMap<String, Value> {
    let mut map = BTreeMap::new();
    if let Some(id) = id {
        map.insert("id".to_string(), id.clone());
    }
    map.insert("reply".to_string(), Value::Str(reply.to_string()));
    map
}

fn error_reply(id: Option<&Value>, kind: &str, message: &str) -> Value {
    let mut map = reply_base(id, "error");
    map.insert("kind".to_string(), Value::Str(kind.to_string()));
    map.insert("message".to_string(), Value::Str(message.to_string()));
    Value::Obj(map)
}

fn result_reply(
    id: Option<&Value>,
    cached: bool,
    latency_us: u64,
    slo: Value,
    stats_json: &str,
) -> Value {
    let mut map = reply_base(id, "result");
    map.insert("cached".to_string(), Value::Bool(cached));
    #[allow(clippy::cast_precision_loss)]
    map.insert("latency_us".to_string(), Value::Num(latency_us as f64));
    map.insert("slo".to_string(), slo);
    let stats = json::parse(stats_json).unwrap_or(Value::Null);
    map.insert("stats".to_string(), stats);
    Value::Obj(map)
}

/// Serialises one reply and writes it as a line. Returns `false` on a
/// write failure (client gone).
fn write_reply(writer: &mut TcpStream, reply: &Value) -> bool {
    let mut line = reply.to_json();
    line.push('\n');
    writer.write_all(line.as_bytes()).is_ok()
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// Sends one request line to a server and collects reply lines until
/// the terminal `result` / `error` / `stats` / `bye` reply (or EOF).
///
/// # Errors
/// Propagates connection and write failures.
pub fn request(addr: &str, line: &str) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    let mut replies = Vec::new();
    for reply in BufReader::new(stream).lines() {
        let reply = reply?;
        let terminal = reply_kind(&reply)
            .is_none_or(|k| matches!(k.as_str(), "result" | "error" | "stats" | "bye"));
        replies.push(reply);
        if terminal {
            break;
        }
    }
    Ok(replies)
}

/// The `"reply"` discriminator of a reply line, when it parses.
#[must_use]
pub fn reply_kind(line: &str) -> Option<String> {
    let doc = json::parse(line).ok()?;
    doc.get("reply")?.as_str().map(ToString::to_string)
}

/// Extracts the embedded `stats` object of a `result` reply and
/// re-serialises it canonically — byte-identical to what
/// [`stats_to_value`] produces for the same run, which is what lets
/// clients `cmp` a served reply against a local run.
#[must_use]
pub fn extract_stats(result_line: &str) -> Option<String> {
    let doc = json::parse(result_line).ok()?;
    if doc.get("reply")?.as_str()? != "result" {
        return None;
    }
    Some(doc.get("stats")?.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_builders_echo_the_id() {
        let id = Value::Num(7.0);
        let err = error_reply(Some(&id), "parse", "nope").to_json();
        assert_eq!(err, r#"{"id":7,"kind":"parse","message":"nope","reply":"error"}"#);
        let (doc, id) = split_id(json::parse(r#"{"id": 3, "cmd": "stats"}"#).unwrap());
        assert_eq!(id, Some(Value::Num(3.0)));
        assert!(doc.get("id").is_none());
        assert!(doc.get("cmd").is_some());
    }

    #[test]
    fn reply_kind_and_stats_extraction() {
        let slo = slo_value(&Histogram::exponential(1, 4));
        let line = result_reply(None, true, 12, slo, r#"{"b":2,"a":1}"#).to_json();
        assert_eq!(reply_kind(&line).as_deref(), Some("result"));
        // Canonical re-serialisation sorts the embedded keys.
        assert_eq!(extract_stats(&line).as_deref(), Some(r#"{"a":1,"b":2}"#));
        assert_eq!(extract_stats(r#"{"reply":"running"}"#), None);
    }
}
