//! Scoped-thread job pool with deterministic, input-order results.
//!
//! Every design-space sweep in [`crate::experiments`] is a list of
//! *independent* full-system runs, so the natural unit of parallelism
//! is the run, not the cycle loop (the coarse run-level parallelism
//! GPGPU-Sim-class simulators use for their sweeps). [`Pool`] executes
//! a vector of jobs across N OS threads via [`std::thread::scope`] —
//! no external dependencies, no detached threads — while guaranteeing:
//!
//! * **Input-order results.** Job `i`'s result lands in slot `i` of the
//!   output vector no matter which worker ran it or when it finished.
//! * **Bit-identical results.** A job must be a pure function of its
//!   spec (asserted for the sweep layer by
//!   `tests/parallel_equivalence.rs`): nothing in the pool leaks worker
//!   identity, scheduling order, or wall-clock into a job.
//! * **Serial fallback.** A one-worker pool runs jobs inline on the
//!   caller's thread, in input order — byte-for-byte the classic serial
//!   loop.
//!
//! The determinism contract is test-enforced: serial execution and any
//! worker count produce the same `Vec<T>`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of jobs to use when the caller does not say: the host's
/// available parallelism (1 if it cannot be determined).
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves a `--jobs` setting: `Some(n)` from a flag, else the
/// `ORDERLIGHT_JOBS` environment variable, else [`available_jobs`].
/// Zero is clamped to 1.
#[must_use]
pub fn resolve_jobs(flag: Option<usize>) -> usize {
    flag.or_else(|| std::env::var("ORDERLIGHT_JOBS").ok().and_then(|v| v.parse().ok()))
        .unwrap_or_else(available_jobs)
        .max(1)
}

/// Extracts `--jobs N` (or `-j N`) from a raw argument list, returning
/// the remaining arguments and the parsed worker count, or an error
/// message naming the bad value. Shared by the figure-regeneration
/// binaries, `sweep_csv` and the `orderlight` CLI.
///
/// # Errors
/// Returns a message when the flag has a missing or non-numeric value.
pub fn take_jobs_flag(args: &[String]) -> Result<(Vec<String>, usize), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut flag = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" || a == "-j" {
            let Some(v) = it.next() else {
                return Err(format!("missing value for {a}"));
            };
            match v.parse::<usize>() {
                Ok(n) => flag = Some(n),
                Err(_) => return Err(format!("invalid value '{v}' for {a}")),
            }
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, resolve_jobs(flag)))
}

/// Worker count for a standalone sweep binary: parses `--jobs N` /
/// `-j N` from the process arguments (exiting with status 2 on a
/// malformed flag, like a usage error), falling back to
/// `ORDERLIGHT_JOBS`, then to the host's available parallelism.
#[must_use]
pub fn jobs_from_process_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match take_jobs_flag(&args) {
        Ok((_, jobs)) => jobs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// A fixed-width scoped-thread job pool. Cheap to construct; spawns
/// threads only for the duration of one [`Pool::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool of `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Pool {
        Pool { workers: workers.max(1) }
    }

    /// A pool sized to the host's available parallelism.
    #[must_use]
    pub fn with_available() -> Pool {
        Pool::new(available_jobs())
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `jobs` and returns their results **in input order**.
    ///
    /// With one worker (or at most one job) the jobs run inline on the
    /// calling thread — the exact serial loop. Otherwise workers pull
    /// the next unclaimed index from a shared atomic counter and write
    /// the result into that index's slot, so the output order never
    /// depends on scheduling. If a job panics, the panic is propagated
    /// to the caller once every worker has stopped (the scope joins all
    /// threads first).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        if self.workers == 1 || jobs.len() <= 1 {
            return jobs.into_iter().map(|f| f()).collect();
        }
        let n = jobs.len();
        let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i].lock().expect("job mutex").take().expect("job claimed once");
                    let out = job();
                    *slots[i].lock().expect("slot mutex") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot mutex").expect("every job ran"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        // Jobs deliberately finish out of order (later jobs are
        // cheaper); the output must still be 0..n.
        let jobs: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..(64 - i) * 1000 {
                        acc = acc.wrapping_add(k);
                    }
                    // `acc` depends only on `i`; return the pair so the
                    // busy-work cannot be optimised away.
                    (i, acc)
                }
            })
            .collect();
        let out = Pool::new(8).run(jobs);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx as u64, *i);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let job_set =
            || (0..40u64).map(|i| move || i.wrapping_mul(0x9E37_79B9).rotate_left(7)).collect();
        let serial: Vec<u64> = Pool::new(1).run(job_set());
        for workers in [2usize, 3, 8, 64] {
            assert_eq!(Pool::new(workers).run(job_set()), serial, "workers={workers}");
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
        let out = Pool::new(0).run(vec![|| 42]);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn empty_and_single_job_lists() {
        let empty: Vec<fn() -> i32> = Vec::new();
        assert!(Pool::new(4).run(empty).is_empty());
        assert_eq!(Pool::new(4).run(vec![|| 7]), vec![7]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let out = Pool::new(32).run((0..3).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    fn take_jobs_flag_parses_and_strips() {
        let args: Vec<String> =
            ["--data-kb", "8", "--jobs", "3", "x"].iter().map(ToString::to_string).collect();
        let (rest, jobs) = take_jobs_flag(&args).unwrap();
        assert_eq!(jobs, 3);
        assert_eq!(rest, vec!["--data-kb", "8", "x"]);
        let (rest, jobs) = take_jobs_flag(&["-j".into(), "0".into()]).unwrap();
        assert_eq!(jobs, 1, "zero clamps to one");
        assert!(rest.is_empty());
        assert!(take_jobs_flag(&["--jobs".into()]).is_err(), "missing value");
        assert!(take_jobs_flag(&["--jobs".into(), "lots".into()]).is_err(), "bad value");
    }

    #[test]
    fn resolve_jobs_prefers_explicit_flag() {
        assert_eq!(resolve_jobs(Some(5)), 5);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }
}
