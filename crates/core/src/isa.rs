//! The fine-grained PIM instruction set and host kernel instruction stream.
//!
//! A *PIM kernel* (paper Figure 4) is a host-executed stream of
//! [`KernelInstr`]s. PIM memory instructions issued by the host are
//! translated into fine-grained PIM commands at the memory controller; all
//! functional semantics are defined here so that the PIM unit, the host ALU
//! and the golden-model verifier compute bit-identical results.
//!
//! Every instruction operates on one 32 B [`Stripe`] (8 x `u32` SIMD
//! lanes); arithmetic is wrapping so replay is exact.

use crate::types::{Addr, MemGroupId, Stripe, TsSlot};
use std::fmt;

/// A SIMD ALU operation performed lane-wise on `u32` values.
///
/// Binary operations combine the accumulator (a TS slot for PIM, a register
/// for the host) with a memory operand; immediate operations use a constant
/// baked into the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `acc = mem` (pure data movement; used by the Copy kernel).
    Mov,
    /// `acc = acc + mem` (feature-map addition, histogram bin update, ...).
    Add,
    /// `acc = acc - mem`.
    Sub,
    /// `acc = acc * mem`.
    Mul,
    /// `acc = min(acc, mem)` (KMeans nearest-centre reduction).
    Min,
    /// `acc = max(acc, mem)` (SVM hinge clamp).
    Max,
    /// `acc = acc ^ mem`.
    Xor,
    /// `acc = acc + imm * mem` (Daxpy / Triad / fully-connected MAC).
    AxpyImm(u32),
    /// `acc = acc * imm` (Scale; batch-norm gamma).
    ScaleImm(u32),
    /// `acc = acc + imm` (batch-norm beta / bias).
    AddImm(u32),
    /// `acc = acc + popcount(acc ^ mem)` — Hamming-distance accumulation
    /// used by the genomic sequence filter (GRIM-style).
    Hamming,
}

impl AluOp {
    /// Whether this operation reads a memory operand (versus an immediate).
    ///
    /// Operations without a memory operand become *execute-only* PIM
    /// commands: they occupy command bandwidth but perform no DRAM column
    /// access.
    #[must_use]
    pub fn reads_memory(self) -> bool {
        !matches!(self, AluOp::ScaleImm(_) | AluOp::AddImm(_))
    }

    /// Number of scalar arithmetic operations the op performs per lane
    /// (an AXPY is a multiply plus an add; a move is pure data
    /// movement). Used for Table 2's compute:memory accounting.
    #[must_use]
    pub fn scalar_ops(self) -> u32 {
        match self {
            AluOp::Mov => 0,
            AluOp::AxpyImm(_) => 2,
            _ => 1,
        }
    }

    /// Applies the operation to one lane.
    #[must_use]
    pub fn apply_lane(self, acc: u32, mem: u32) -> u32 {
        match self {
            AluOp::Mov => mem,
            AluOp::Add => acc.wrapping_add(mem),
            AluOp::Sub => acc.wrapping_sub(mem),
            AluOp::Mul => acc.wrapping_mul(mem),
            AluOp::Min => acc.min(mem),
            AluOp::Max => acc.max(mem),
            AluOp::Xor => acc ^ mem,
            AluOp::AxpyImm(k) => acc.wrapping_add(k.wrapping_mul(mem)),
            AluOp::ScaleImm(k) => acc.wrapping_mul(k),
            AluOp::AddImm(k) => acc.wrapping_add(k),
            AluOp::Hamming => acc.wrapping_add((acc ^ mem).count_ones()),
        }
    }

    /// Applies the operation stripe-wide.
    ///
    /// For immediate operations `mem` is ignored.
    #[must_use]
    pub fn apply(self, acc: Stripe, mem: Stripe) -> Stripe {
        acc.zip_map(mem, |a, m| self.apply_lane(a, m))
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AluOp::AxpyImm(k) => write!(f, "axpy[{k}]"),
            AluOp::ScaleImm(k) => write!(f, "scale[{k}]"),
            AluOp::AddImm(k) => write!(f, "addi[{k}]"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

/// The opcode of a fine-grained PIM command (paper Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimOp {
    /// `TS[slot] = DRAM[addr]` — move one stripe from an activated row into
    /// temporary storage ("PIM_Load").
    Load,
    /// `TS[slot] = op(TS[slot], DRAM[addr])` — fetch a memory operand and
    /// combine it into temporary storage ("PIM_Add b to a" / fetch-and-op).
    Compute(AluOp),
    /// `TS[slot] = op(TS[slot], imm)` — execute-only command with no DRAM
    /// column access (used to model high compute:memory-ratio kernels such
    /// as KMeans' distance arithmetic).
    Execute(AluOp),
    /// `DRAM[addr] = TS[slot]` — store a result stripe back ("PIM_Store").
    Store,
}

impl PimOp {
    /// Whether the command performs a DRAM column access.
    #[must_use]
    pub fn accesses_dram(self) -> bool {
        match self {
            PimOp::Load | PimOp::Store => true,
            PimOp::Compute(op) => op.reads_memory(),
            PimOp::Execute(_) => false,
        }
    }

    /// Whether the DRAM access (if any) is a write.
    #[must_use]
    pub fn is_dram_write(self) -> bool {
        matches!(self, PimOp::Store)
    }
}

/// One fine-grained PIM instruction as issued by the host.
///
/// The host's LDST unit sends these down the memory pipe like non-temporal
/// loads/stores; the memory controller translates them into DRAM commands
/// and forwards them to the PIM unit of the target channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PimInstruction {
    /// What the PIM unit should do.
    pub op: PimOp,
    /// Target stripe address. For [`PimOp::Execute`] the address still
    /// routes the command to the right channel/group but is not accessed.
    pub addr: Addr,
    /// Temporary-storage slot operated on.
    pub slot: TsSlot,
    /// Memory group the instruction belongs to (determines which OrderLight
    /// flag constrains it at the controller).
    pub group: MemGroupId,
}

impl fmt::Display for PimInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            PimOp::Load => write!(f, "pim_load {} -> ts{}", self.addr, self.slot.0),
            PimOp::Compute(op) => {
                write!(f, "pim_{op} ts{}, {}", self.slot.0, self.addr)
            }
            PimOp::Execute(op) => write!(f, "pim_exec_{op} ts{}", self.slot.0),
            PimOp::Store => write!(f, "pim_store ts{} -> {}", self.slot.0, self.addr),
        }
    }
}

/// A host register index (used only by the conventional-GPU baseline path).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An ordering primitive in the host instruction stream (paper Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingInstr {
    /// A traditional core-centric fence: the warp stalls until the memory
    /// controller acknowledges that every prior PIM request has been issued
    /// to the DRAM command queues.
    Fence,
    /// The OrderLight primitive: inject an OrderLight packet for `group`
    /// down the memory pipe and continue issuing without stalling (the
    /// packet is released once the operand collector's PIM counter drains).
    OrderLight {
        /// Memory group whose requests must not be reordered across the
        /// packet.
        group: MemGroupId,
    },
    /// A Louvre-style versioned release (Kumar et al.): inject a release
    /// marker stamped with the warp's per-group version counter and keep
    /// issuing. The controller holds the marker at its scheduler stage
    /// until every older-version request of the group has been issued —
    /// no per-group flag is ever broadcast.
    Release {
        /// Memory group whose older-version requests must drain before
        /// anything behind the marker is scheduled.
        group: MemGroupId,
    },
}

/// One instruction of a host kernel.
///
/// PIM kernels are streams of [`KernelInstr::Pim`] and
/// [`KernelInstr::Ordering`]; the conventional-GPU baseline uses the
/// `Load`/`Compute`/`Store` forms whose ordering is enforced by register
/// dependences at the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelInstr {
    /// Issue a fine-grained PIM instruction down the memory pipe.
    Pim(PimInstruction),
    /// Enforce ordering among previously issued PIM instructions.
    Ordering(OrderingInstr),
    /// Conventional load: `reg = DRAM[addr]`, data returns to the core.
    Load {
        /// Target stripe address.
        addr: Addr,
        /// Destination register.
        reg: Reg,
    },
    /// Conventional in-core SIMD compute: `dst = op(a, mem=b)`.
    Compute {
        /// ALU operation (memory operand taken from register `b`).
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Accumulator source register.
        a: Reg,
        /// Memory-operand source register (ignored for immediate ops).
        b: Reg,
    },
    /// Conventional store: `DRAM[addr] = reg`.
    Store {
        /// Target stripe address.
        addr: Addr,
        /// Source register.
        reg: Reg,
    },
}

impl KernelInstr {
    /// Whether this instruction is a PIM memory instruction (counted for
    /// the PIM-command-bandwidth metric).
    #[must_use]
    pub fn is_pim(&self) -> bool {
        matches!(self, KernelInstr::Pim(_))
    }

    /// Whether this instruction is an ordering primitive (fence or
    /// OrderLight).
    #[must_use]
    pub fn is_ordering(&self) -> bool {
        matches!(self, KernelInstr::Ordering(_))
    }
}

/// A lazily generated kernel instruction stream.
///
/// Real workloads issue millions of fine-grained PIM instructions per
/// channel; materialising them would dominate memory, so warps pull
/// instructions from a generator. Generators must be deterministic —
/// the golden-model verifier replays a fresh instance of the same stream
/// with sequential semantics.
pub trait InstrStream {
    /// Produces the next instruction, or `None` when the kernel is done.
    fn next_instr(&mut self) -> Option<KernelInstr>;
}

/// The trivial stream over a pre-built instruction vector.
#[derive(Debug, Clone)]
pub struct VecStream {
    instrs: std::vec::IntoIter<KernelInstr>,
}

impl VecStream {
    /// Wraps a vector of instructions.
    #[must_use]
    pub fn new(instrs: Vec<KernelInstr>) -> Self {
        VecStream { instrs: instrs.into_iter() }
    }
}

impl InstrStream for VecStream {
    fn next_instr(&mut self) -> Option<KernelInstr> {
        self.instrs.next()
    }
}

impl<S: InstrStream + ?Sized> InstrStream for Box<S> {
    fn next_instr(&mut self) -> Option<KernelInstr> {
        (**self).next_instr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Mov.apply_lane(7, 3), 3);
        assert_eq!(AluOp::Add.apply_lane(7, 3), 10);
        assert_eq!(AluOp::Sub.apply_lane(7, 3), 4);
        assert_eq!(AluOp::Mul.apply_lane(7, 3), 21);
        assert_eq!(AluOp::Min.apply_lane(7, 3), 3);
        assert_eq!(AluOp::Max.apply_lane(7, 3), 7);
        assert_eq!(AluOp::Xor.apply_lane(0b101, 0b011), 0b110);
        assert_eq!(AluOp::AxpyImm(2).apply_lane(7, 3), 13);
        assert_eq!(AluOp::ScaleImm(5).apply_lane(7, 999), 35);
        assert_eq!(AluOp::AddImm(5).apply_lane(7, 999), 12);
        // 7 ^ 3 = 0b100 -> one set bit
        assert_eq!(AluOp::Hamming.apply_lane(7, 3), 8);
    }

    #[test]
    fn alu_wrapping() {
        assert_eq!(AluOp::Add.apply_lane(u32::MAX, 1), 0);
        assert_eq!(AluOp::Mul.apply_lane(u32::MAX, 2), u32::MAX.wrapping_mul(2));
    }

    #[test]
    fn immediate_ops_do_not_read_memory() {
        assert!(!AluOp::ScaleImm(2).reads_memory());
        assert!(!AluOp::AddImm(2).reads_memory());
        assert!(AluOp::Add.reads_memory());
        assert!(AluOp::Hamming.reads_memory());
    }

    #[test]
    fn pim_op_dram_access() {
        assert!(PimOp::Load.accesses_dram());
        assert!(PimOp::Store.accesses_dram());
        assert!(PimOp::Store.is_dram_write());
        assert!(!PimOp::Load.is_dram_write());
        assert!(PimOp::Compute(AluOp::Add).accesses_dram());
        assert!(!PimOp::Compute(AluOp::ScaleImm(3)).accesses_dram());
        assert!(!PimOp::Execute(AluOp::Add).accesses_dram());
    }

    #[test]
    fn stripe_apply_matches_lane_apply() {
        let acc = Stripe([1, 2, 3, 4, 5, 6, 7, 8]);
        let mem = Stripe::splat(10);
        let out = AluOp::AxpyImm(3).apply(acc, mem);
        for (i, lane) in out.0.iter().enumerate() {
            assert_eq!(*lane, AluOp::AxpyImm(3).apply_lane(acc.0[i], 10));
        }
    }

    #[test]
    fn display_forms() {
        let instr = PimInstruction {
            op: PimOp::Load,
            addr: Addr(0x40),
            slot: TsSlot(2),
            group: MemGroupId(0),
        };
        assert_eq!(instr.to_string(), "pim_load 0x40 -> ts2");
        let instr = PimInstruction { op: PimOp::Compute(AluOp::Add), ..instr };
        assert_eq!(instr.to_string(), "pim_add ts2, 0x40");
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(AluOp::AxpyImm(7).to_string(), "axpy[7]");
    }

    #[test]
    fn kernel_instr_classification() {
        let pim = KernelInstr::Pim(PimInstruction {
            op: PimOp::Store,
            addr: Addr(0),
            slot: TsSlot(0),
            group: MemGroupId(0),
        });
        assert!(pim.is_pim());
        assert!(!pim.is_ordering());
        let ol = KernelInstr::Ordering(OrderingInstr::OrderLight { group: MemGroupId(0) });
        assert!(ol.is_ordering());
        assert!(!ol.is_pim());
        let ld = KernelInstr::Load { addr: Addr(0), reg: Reg(0) };
        assert!(!ld.is_pim() && !ld.is_ordering());
    }
}
