//! Physical address interleaving.
//!
//! Physical memory is interleaved at chunk granularity (256 B) across
//! memory channels (paper Section 2.2). Within a channel, consecutive
//! chunks fill 2 KB rows, and each bank owns a contiguous *region* of
//! rows. The paper's evaluation assumes the GPU driver allocates large
//! pages and aligns all operands of a PIM computation within the memory
//! region of each PIM unit (Section 6); placing the operand streams of a
//! kernel in one bank region reproduces the serialised row open/close
//! behaviour that Figure 11 analyses, while host (non-PIM) data can be
//! placed in the banks of a different memory group.

use crate::error::ConfigError;
use crate::types::{Addr, BankId, ChannelId, MemGroupId, BUS_BYTES};

/// Decoded physical location of a stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Memory channel.
    pub channel: ChannelId,
    /// Bank within the channel.
    pub bank: BankId,
    /// Row within the bank.
    pub row: u32,
    /// Column (stripe index) within the row.
    pub col: u16,
}

/// The address-interleaving scheme.
///
/// # Example
///
/// ```
/// use orderlight::mapping::AddressMapping;
/// use orderlight::types::{Addr, ChannelId};
///
/// let map = AddressMapping::hbm_default();
/// // The next 256 B chunk lives on the next channel.
/// assert_eq!(map.decode(Addr(0)).channel.0, 0);
/// assert_eq!(map.decode(Addr(256)).channel.0, 1);
/// // compose() is the inverse of the within-channel flattening.
/// let addr = map.compose(ChannelId(3), 4096);
/// let loc = map.decode(addr);
/// assert_eq!(loc.channel.0, 3);
/// assert_eq!(loc.row, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapping {
    channels: usize,
    banks: usize,
    chunk_bytes: u64,
    row_bytes: u64,
    rows_per_bank: u64,
}

impl AddressMapping {
    /// Creates a mapping.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if any dimension is zero, if `chunk_bytes`
    /// or `row_bytes` is not a multiple of the 32 B bus width, or if a
    /// row does not hold a whole number of chunks.
    pub fn new(
        channels: usize,
        banks: usize,
        chunk_bytes: u64,
        row_bytes: u64,
        rows_per_bank: u64,
    ) -> Result<Self, ConfigError> {
        if channels == 0 || banks == 0 || rows_per_bank == 0 {
            return Err(ConfigError::new("channels, banks, rows_per_bank must be non-zero"));
        }
        if channels > 16 {
            return Err(ConfigError::new("channel id is a 4-bit field; at most 16 channels"));
        }
        if chunk_bytes == 0 || !chunk_bytes.is_multiple_of(BUS_BYTES as u64) {
            return Err(ConfigError::new("chunk_bytes must be a non-zero multiple of 32"));
        }
        if row_bytes == 0 || !row_bytes.is_multiple_of(chunk_bytes) {
            return Err(ConfigError::new("row_bytes must be a non-zero multiple of chunk_bytes"));
        }
        Ok(AddressMapping { channels, banks, chunk_bytes, row_bytes, rows_per_bank })
    }

    /// The paper's configuration: 16 channels, 16 banks per channel,
    /// 256 B chunk interleave, 2 KB row buffer, 2^16 rows per bank
    /// (128 MiB of modelled capacity per bank per channel).
    #[must_use]
    pub fn hbm_default() -> Self {
        AddressMapping::new(16, 16, 256, 2048, 1 << 16).expect("default mapping is valid")
    }

    /// Number of memory channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of banks per channel.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Bytes per interleave chunk.
    #[must_use]
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Bytes per DRAM row (row-buffer size).
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Stripes (32 B column accesses) per row.
    #[must_use]
    pub fn stripes_per_row(&self) -> u64 {
        self.row_bytes / BUS_BYTES as u64
    }

    /// Within-channel bytes owned by one bank (its contiguous row
    /// region).
    #[must_use]
    pub fn bank_span_bytes(&self) -> u64 {
        self.row_bytes * self.rows_per_bank
    }

    /// Flattens an address to its within-channel byte offset.
    #[must_use]
    pub fn channel_offset(&self, addr: Addr) -> u64 {
        let chunk = addr.0 / self.chunk_bytes;
        (chunk / self.channels as u64) * self.chunk_bytes + addr.0 % self.chunk_bytes
    }

    /// Builds the global address of within-channel byte `offset` on
    /// `channel` — the inverse of [`channel_offset`](Self::channel_offset).
    #[must_use]
    pub fn compose(&self, channel: ChannelId, offset: u64) -> Addr {
        let chunk = offset / self.chunk_bytes;
        Addr(
            (chunk * self.channels as u64 + channel.0 as u64) * self.chunk_bytes
                + offset % self.chunk_bytes,
        )
    }

    /// Decodes an address into its physical location. Offsets beyond the
    /// modelled capacity wrap around the banks.
    #[must_use]
    pub fn decode(&self, addr: Addr) -> Location {
        let chunk = addr.0 / self.chunk_bytes;
        let channel = ChannelId((chunk % self.channels as u64) as u8);
        let o = self.channel_offset(addr);
        let span = self.bank_span_bytes();
        let bank = BankId(((o / span) % self.banks as u64) as u8);
        let within = o % span;
        let row = (within / self.row_bytes) as u32;
        let col = ((o % self.row_bytes) / BUS_BYTES as u64) as u16;
        Location { channel, bank, row, col }
    }

    /// The channel an address maps to (cheaper than a full decode).
    #[must_use]
    pub fn channel_of(&self, addr: Addr) -> ChannelId {
        ChannelId(((addr.0 / self.chunk_bytes) % self.channels as u64) as u8)
    }

    /// The within-channel offset of the start of `bank`'s row region —
    /// where a workload places data that must live in that bank (and
    /// therefore in that bank's memory group).
    ///
    /// # Panics
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_base_offset(&self, bank: BankId) -> u64 {
        assert!(bank.index() < self.banks, "bank {bank} out of range");
        bank.index() as u64 * self.bank_span_bytes()
    }
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::hbm_default()
    }
}

/// Maps banks to memory groups: group `g` owns a contiguous run of banks.
///
/// PIM data structures live in one group and non-PIM data in another so
/// that OrderLight packets never constrain host traffic (paper
/// Section 5.3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMap {
    banks: usize,
    groups: usize,
}

impl GroupMap {
    /// Creates a map dividing `banks` banks evenly into `groups` groups.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if either count is zero, `groups` exceeds
    /// `banks` or the 4-bit group-ID space (16), or `banks` is not a
    /// multiple of `groups`.
    pub fn new(banks: usize, groups: usize) -> Result<Self, ConfigError> {
        if banks == 0 || groups == 0 {
            return Err(ConfigError::new("banks and groups must be non-zero"));
        }
        if groups > banks {
            return Err(ConfigError::new("more groups than banks"));
        }
        if groups > 16 {
            return Err(ConfigError::new("group id is a 4-bit field; at most 16 groups"));
        }
        if !banks.is_multiple_of(groups) {
            return Err(ConfigError::new("banks must divide evenly into groups"));
        }
        Ok(GroupMap { banks, groups })
    }

    /// Number of groups.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Banks per group.
    #[must_use]
    pub fn banks_per_group(&self) -> usize {
        self.banks / self.groups
    }

    /// The group a bank belongs to.
    ///
    /// # Panics
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn group_of(&self, bank: BankId) -> MemGroupId {
        assert!(bank.index() < self.banks, "bank {bank} out of range");
        MemGroupId((bank.index() / self.banks_per_group()) as u8)
    }

    /// The first bank of `group` — where a workload places that group's
    /// data.
    ///
    /// # Panics
    /// Panics if `group` is out of range.
    #[must_use]
    pub fn first_bank_of(&self, group: MemGroupId) -> BankId {
        assert!(group.index() < self.groups, "group {group} out of range");
        BankId((group.index() * self.banks_per_group()) as u8)
    }
}

impl Default for GroupMap {
    fn default() -> Self {
        // 16 banks, 2 groups: group 0 for PIM structures, group 1 for host.
        GroupMap::new(16, 2).expect("default group map is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_interleave_across_channels() {
        let map = AddressMapping::hbm_default();
        for ch in 0..16u64 {
            assert_eq!(map.decode(Addr(ch * 256)).channel, ChannelId(ch as u8));
        }
        // Chunk 16 wraps back to channel 0, next row region of the channel.
        assert_eq!(map.decode(Addr(16 * 256)).channel, ChannelId(0));
    }

    #[test]
    fn within_channel_columns_advance() {
        let map = AddressMapping::hbm_default();
        let a = map.decode(Addr(0));
        let b = map.decode(Addr(32));
        assert_eq!(a.col, 0);
        assert_eq!(b.col, 1);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn consecutive_rows_stay_in_one_bank() {
        let map = AddressMapping::hbm_default();
        // One full row of channel 0 = 2048 B = 8 chunks spaced 16
        // channels apart; the next row is in the same bank region.
        let row0 = map.decode(map.compose(ChannelId(0), 0));
        let row1 = map.decode(map.compose(ChannelId(0), 2048));
        assert_eq!(row0.bank, BankId(0));
        assert_eq!(row1.bank, BankId(0));
        assert_eq!(row1.row, 1);
    }

    #[test]
    fn bank_regions_partition_the_channel() {
        let map = AddressMapping::hbm_default();
        let span = map.bank_span_bytes();
        for b in 0..16u8 {
            let loc = map.decode(map.compose(ChannelId(2), u64::from(b) * span));
            assert_eq!(loc.bank, BankId(b));
            assert_eq!(loc.row, 0);
            assert_eq!(loc.channel, ChannelId(2));
        }
        assert_eq!(map.bank_base_offset(BankId(3)), 3 * span);
    }

    #[test]
    fn compose_inverts_channel_offset() {
        let map = AddressMapping::hbm_default();
        for offset in (0..1u64 << 16).step_by(4096 + 32) {
            for ch in [0u8, 5, 15] {
                let addr = map.compose(ChannelId(ch), offset);
                assert_eq!(map.channel_of(addr), ChannelId(ch));
                assert_eq!(map.channel_offset(addr), offset);
            }
        }
    }

    #[test]
    fn channel_of_matches_decode() {
        let map = AddressMapping::hbm_default();
        for addr in (0..1 << 16).step_by(32) {
            assert_eq!(map.channel_of(Addr(addr)), map.decode(Addr(addr)).channel);
        }
    }

    #[test]
    fn invalid_mappings_rejected() {
        assert!(AddressMapping::new(0, 16, 256, 2048, 16).is_err());
        assert!(AddressMapping::new(16, 0, 256, 2048, 16).is_err());
        assert!(AddressMapping::new(17, 16, 256, 2048, 16).is_err());
        assert!(AddressMapping::new(16, 16, 100, 2048, 16).is_err());
        assert!(AddressMapping::new(16, 16, 256, 1000, 16).is_err());
        assert!(AddressMapping::new(16, 16, 256, 2048, 0).is_err());
    }

    #[test]
    fn group_map_partitions_banks() {
        let gm = GroupMap::new(16, 2).unwrap();
        assert_eq!(gm.group_of(BankId(0)), MemGroupId(0));
        assert_eq!(gm.group_of(BankId(7)), MemGroupId(0));
        assert_eq!(gm.group_of(BankId(8)), MemGroupId(1));
        assert_eq!(gm.group_of(BankId(15)), MemGroupId(1));
        assert_eq!(gm.banks_per_group(), 8);
        assert_eq!(gm.first_bank_of(MemGroupId(1)), BankId(8));
    }

    #[test]
    fn group_map_rejects_bad_shapes() {
        assert!(GroupMap::new(16, 0).is_err());
        assert!(GroupMap::new(16, 3).is_err());
        assert!(GroupMap::new(4, 8).is_err());
        assert!(GroupMap::new(32, 32).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_map_out_of_range_bank_panics() {
        let gm = GroupMap::default();
        let _ = gm.group_of(BankId(16));
    }

    #[test]
    fn stripes_per_row_default() {
        assert_eq!(AddressMapping::hbm_default().stripes_per_row(), 64);
    }
}
