//! # The quiescence contract (event-driven time skipping)
//!
//! Dense per-cycle ticking wastes work on the long idle windows the
//! paper's workloads are full of: a fence-stalled warp waiting out a
//! ~440-core-cycle round trip, a bank sitting in the middle of `tRAS`,
//! a refresh countdown. The event core replaces those windows with one
//! jump, and [`NextEvent`] is the contract that makes the jump safe.
//!
//! Every component advertises the earliest future cycle at which it
//! *could* change observable state. The simulator takes the global
//! minimum across all components (and both clock domains) and advances
//! time straight to it, charging per-cycle stall counters for the span
//! in closed form so the statistics stay bit-identical to dense
//! ticking.
//!
//! ## Trait laws
//!
//! For `next_event(now)` evaluated between steps (i.e. with the
//! component in the settled state dense ticking would leave at `now`):
//!
//! 1. **No early action.** The component must not change observable
//!    state — outputs, statistics, accepted inputs, FSM transitions —
//!    at any cycle strictly before the advertised horizon. Skipping
//!    from `now` to `horizon` must therefore be indistinguishable from
//!    ticking every intermediate cycle.
//! 2. **Conservative is safe, late is incorrect.** Advertising a cycle
//!    *earlier* than the true next state change (even `Some(now)`,
//!    meaning "tick me densely") costs only speed. Advertising a cycle
//!    *later* than a real state change breaks bit-identity.
//! 3. **`None` means drained.** The component will never change state
//!    again without new external input. A component that is merely
//!    blocked on a peer must still return `None` only if the *peer's*
//!    unblocking is itself advertised by some component's horizon.
//! 4. **Purity.** `next_event` takes `&self` and must not mutate; the
//!    simulator may call it any number of times per step.
//!
//! The time unit is whatever clock domain the component lives in (core
//! cycles for SMs and the memory pipe, memory cycles for controllers
//! and DRAM); the `sim::System` horizon computation converts between
//! domains exactly via the `clock_acc` accumulator.

/// Earliest-future-activity contract for event-driven simulation.
///
/// See the [module documentation](self) for the four trait laws.
pub trait NextEvent {
    /// Returns the earliest cycle `>= now` at which this component can
    /// change observable state, or `None` if it is fully drained.
    ///
    /// `Some(now)` means "active right now — tick me densely".
    fn next_event(&self, now: u64) -> Option<u64>;
}

/// Folds two optional horizons into their minimum (`None` = drained).
#[must_use]
pub fn min_horizon(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_horizon_folds_like_option_min() {
        assert_eq!(min_horizon(None, None), None);
        assert_eq!(min_horizon(Some(5), None), Some(5));
        assert_eq!(min_horizon(None, Some(7)), Some(7));
        assert_eq!(min_horizon(Some(5), Some(7)), Some(5));
        assert_eq!(min_horizon(Some(7), Some(5)), Some(5));
    }

    #[test]
    fn trait_is_object_safe() {
        struct Drained;
        impl NextEvent for Drained {
            fn next_event(&self, _now: u64) -> Option<u64> {
                None
            }
        }
        let c: &dyn NextEvent = &Drained;
        assert_eq!(c.next_event(0), None);
    }
}
