//! A small deterministic PRNG for randomized tests and workload
//! generation.
//!
//! The simulator is fully deterministic; the only randomness in the
//! repository is test-input generation, which must be reproducible and
//! dependency-free (the build environment has no registry access, so
//! `rand`/`proptest` are unavailable). This is Steele & Vigna's
//! SplitMix64: 64 bits of state, full period 2^64, passes BigCrush —
//! far more than input shuffling needs.

/// A SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use orderlight::rng::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// assert!(a.gen_range(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from `seed`. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Multiply-shift reduction (Lemire); the slight modulo bias of
        // the naive approach is irrelevant here but this is just as
        // cheap.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// A coin flip with probability `num / den` of `true`.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn gen_bool(&mut self, num: u64, den: u64) -> bool {
        self.gen_range(den) < num
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.gen_range(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "1000 draws cover 0..8");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle is virtually never identity");
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut r = Rng::new(11);
        let hits = (0..1000).filter(|_| r.gen_bool(1, 4)).count();
        assert!((150..350).contains(&hits), "~25% expected, got {hits}");
    }
}
