//! # OrderLight: memory-centric ordering for fine-grained PIM
//!
//! This crate is the foundation of a from-scratch reproduction of
//! *OrderLight: Lightweight Memory-Ordering Primitive for Efficient
//! Fine-Grained PIM Computations* (Nag & Balasubramonian, MICRO 2021).
//!
//! It defines everything the rest of the workspace shares:
//!
//! * [`types`] — identifiers ([`ChannelId`], [`BankId`], [`MemGroupId`], …),
//!   addresses and clock-domain aliases used across the simulator.
//! * [`isa`] — the fine-grained PIM instruction set ([`PimInstruction`],
//!   [`AluOp`]) plus the host-visible kernel instruction stream
//!   ([`KernelInstr`]) with both PIM and conventional load/store forms.
//! * [`packet`] — the [`OrderLightPacket`] wire format (2-bit packet ID,
//!   4-bit channel ID, 4-bit memory-group ID, 32-bit packet number; paper
//!   Figure 8) with bit-exact encode/decode.
//! * [`message`] — the request/response messages that flow through the
//!   memory pipe, including in-band [`Marker`]s (OrderLight packets and
//!   fence probes).
//! * [`fsm`] — the copy-and-merge finite state machines used wherever the
//!   memory pipe diverges (L2 sub-partitions, read/write queues; paper
//!   Figure 9).
//! * [`mapping`] — physical address interleaving (256 B chunks across
//!   channels, 2 KB rows, bank rotation) mirroring the paper's Section 6
//!   assumptions.
//! * [`taxonomy`] — the CGO/FGO x CGA/FGA design-space taxonomy of paper
//!   Figures 1 and 2, with the literature classification reproduced.
//!
//! # Example
//!
//! ```
//! use orderlight::packet::OrderLightPacket;
//! use orderlight::types::{ChannelId, MemGroupId};
//!
//! # fn main() -> Result<(), orderlight::error::PacketError> {
//! let pkt = OrderLightPacket::new(ChannelId(3), MemGroupId(1), 42);
//! let bits = pkt.encode();
//! assert_eq!(OrderLightPacket::decode(bits)?, pkt);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod event;
pub mod fault;
pub mod fsm;
pub mod isa;
pub mod mapping;
pub mod message;
pub mod packet;
pub mod rng;
pub mod slab;
pub mod taxonomy;
pub mod types;

pub use error::{ConfigError, PacketError};
pub use event::{min_horizon, NextEvent};
pub use fault::{DropEdge, FaultLayer, FaultPlan, NocJitter, RefreshStorm};
pub use isa::{
    AluOp, InstrStream, KernelInstr, OrderingInstr, PimInstruction, PimOp, Reg, VecStream,
};
pub use mapping::{AddressMapping, GroupMap, Location};
pub use message::{Marker, MarkerCopy, MemReq, MemResp, ReqMeta};
pub use packet::OrderLightPacket;
pub use slab::{Slab, SlabRef};
pub use types::{
    Addr, BankId, ChannelId, CoreCycle, GlobalWarpId, MemCycle, MemGroupId, Stripe, TsSlot,
    BUS_BYTES, LANES, LANE_BYTES,
};
