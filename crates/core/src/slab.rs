//! A generation-indexed slab allocator for hot-path message arenas.
//!
//! The memory pipe and controller move packets through several bounded
//! queues; storing the packet bodies once in a [`Slab`] and threading
//! 8-byte [`SlabRef`] handles through the queues turns every hop into a
//! small copy and keeps the bodies in a dense, reused allocation — no
//! per-packet heap churn.
//!
//! Handles are *generation-indexed*: each slot carries a generation
//! counter bumped on every [`Slab::remove`], and a handle is only valid
//! while its generation matches the slot's. A stale handle (the ABA
//! case: slot freed and reused by a different packet) is therefore a
//! detectable logic error — `get`/`remove` panic instead of silently
//! returning the wrong packet.

/// A generation-indexed handle into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabRef {
    idx: u32,
    gen: u32,
}

/// One slot: the live generation plus the value, if occupied.
#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A slab allocator handing out [`SlabRef`] handles.
///
/// Freed slots go on a free list and are reused LIFO, so a steady-state
/// pipeline touches the same few cache lines forever. Insertion order
/// and reuse order are fully deterministic — two runs performing the
/// same operations produce the same handles.
///
/// # Example
///
/// ```
/// use orderlight::slab::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), &"alpha");
/// assert_eq!(slab.remove(b), "beta");
/// assert_eq!(slab.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Creates an empty slab with room for `cap` values before growing.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Slab { slots: Vec::with_capacity(cap), free: Vec::new(), len: 0 }
    }

    /// Number of live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `val`, returning its handle.
    ///
    /// # Panics
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, val: T) -> SlabRef {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none(), "free-listed slot was occupied");
            slot.val = Some(val);
            SlabRef { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeded u32::MAX slots");
            self.slots.push(Slot { gen: 0, val: Some(val) });
            SlabRef { idx, gen: 0 }
        }
    }

    /// The slot a live handle points at, or a panic message for a stale
    /// or foreign one.
    fn slot(&self, r: SlabRef) -> &Slot<T> {
        let slot = &self.slots[r.idx as usize];
        assert!(slot.gen == r.gen && slot.val.is_some(), "stale slab handle {r:?}");
        slot
    }

    /// Borrows the value behind `r`.
    ///
    /// # Panics
    /// Panics if `r` is stale (its value was removed, even if the slot
    /// was since reused — the generation check catches ABA reuse).
    #[must_use]
    pub fn get(&self, r: SlabRef) -> &T {
        self.slot(r).val.as_ref().expect("checked occupied")
    }

    /// Mutably borrows the value behind `r`.
    ///
    /// # Panics
    /// Panics if `r` is stale.
    pub fn get_mut(&mut self, r: SlabRef) -> &mut T {
        let slot = &mut self.slots[r.idx as usize];
        assert!(slot.gen == r.gen && slot.val.is_some(), "stale slab handle {r:?}");
        slot.val.as_mut().expect("checked occupied")
    }

    /// Removes and returns the value behind `r`, bumping the slot's
    /// generation so every outstanding copy of `r` becomes stale.
    ///
    /// # Panics
    /// Panics if `r` is stale.
    pub fn remove(&mut self, r: SlabRef) -> T {
        let slot = &mut self.slots[r.idx as usize];
        assert!(slot.gen == r.gen && slot.val.is_some(), "stale slab handle {r:?}");
        let val = slot.val.take().expect("checked occupied");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.len -= 1;
        val
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        let b = slab.insert(2u32);
        assert_eq!(slab.len(), 2);
        assert_eq!(*slab.get(a), 1);
        assert_eq!(*slab.get(b), 2);
        *slab.get_mut(a) = 10;
        assert_eq!(slab.remove(a), 10);
        assert_eq!(slab.remove(b), 2);
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_reused_lifo_and_deterministically() {
        let mut slab = Slab::new();
        let a = slab.insert('a');
        let b = slab.insert('b');
        slab.remove(a);
        slab.remove(b);
        // LIFO reuse: the most recently freed slot comes back first.
        let c = slab.insert('c');
        let d = slab.insert('d');
        assert_eq!(c.idx, b.idx);
        assert_eq!(d.idx, a.idx);
        assert_eq!(*slab.get(c), 'c');
        assert_eq!(*slab.get(d), 'd');
    }

    #[test]
    #[should_panic(expected = "stale slab handle")]
    fn stale_handle_detected_after_remove() {
        let mut slab = Slab::new();
        let a = slab.insert(7);
        slab.remove(a);
        let _ = slab.get(a);
    }

    #[test]
    #[should_panic(expected = "stale slab handle")]
    fn aba_reuse_is_caught_by_the_generation() {
        let mut slab = Slab::new();
        let a = slab.insert(7);
        slab.remove(a);
        // The slot is reused by a different value; the old handle must
        // NOT alias it.
        let b = slab.insert(8);
        assert_eq!(b.idx, a.idx, "precondition: same slot reused");
        let _ = slab.get(a);
    }
}
