//! Copy-and-merge finite state machines for memory-pipe divergence points
//! (paper Figure 9, Section 5.3.2).
//!
//! When an ordering marker reaches a point where the memory pipe diverges
//! (L2 sub-partitions; the memory controller's separate read/write
//! queues), the *divergence FSM* replicates it onto every relevant
//! sub-path. Requests that follow the marker on any sub-path must not
//! proceed past the paired convergence point until every copy has arrived
//! there; the *convergence FSM* collects copies and re-emits the merged
//! marker exactly once.

use crate::message::{Marker, MarkerCopy, MarkerKey};
use std::collections::HashMap;

/// Replicates a marker onto `n_paths` sub-paths.
///
/// Returns one [`MarkerCopy`] per sub-path, each annotated with the total
/// copy count the downstream [`MergeFsm`] must collect.
///
/// # Panics
/// Panics if `n_paths` is zero or exceeds `u8::MAX`.
#[must_use]
pub fn diverge(marker: Marker, n_paths: usize) -> Vec<MarkerCopy> {
    assert!(n_paths > 0, "divergence requires at least one sub-path");
    let total = u8::try_from(n_paths).expect("at most 255 sub-paths");
    (0..n_paths).map(|_| MarkerCopy { marker: marker.clone(), total_copies: total }).collect()
}

/// The convergence-point state machine.
///
/// Tracks, per marker identity, how many copies have arrived; once the
/// count reaches the copy total, the merged marker is released. The FSM is
/// agnostic to which sub-path each copy arrived on.
///
/// # Example
///
/// ```
/// use orderlight::fsm::{diverge, MergeFsm};
/// use orderlight::message::Marker;
/// use orderlight::packet::OrderLightPacket;
/// use orderlight::types::{ChannelId, MemGroupId};
///
/// let marker = Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), 1));
/// let copies = diverge(marker.clone(), 2);
/// let mut fsm = MergeFsm::new();
/// assert_eq!(fsm.on_copy(&copies[0]), None);
/// assert_eq!(fsm.on_copy(&copies[1]), Some(marker));
/// ```
#[derive(Debug, Default, Clone)]
pub struct MergeFsm {
    arrived: HashMap<MarkerKey, u8>,
    merges: u64,
}

impl MergeFsm {
    /// Creates an empty convergence FSM.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the arrival of one marker copy.
    ///
    /// Returns `Some(marker)` exactly once per marker — when the final
    /// copy arrives — and `None` otherwise. A single-copy marker (no real
    /// divergence) merges immediately.
    pub fn on_copy(&mut self, copy: &MarkerCopy) -> Option<Marker> {
        let key = copy.marker.key();
        let count = self.arrived.entry(key).or_insert(0);
        *count += 1;
        if *count >= copy.total_copies {
            self.arrived.remove(&key);
            self.merges += 1;
            Some(copy.marker.clone())
        } else {
            None
        }
    }

    /// Number of marker identities still awaiting copies.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.arrived.len()
    }

    /// Total number of completed merges (statistics).
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::OrderLightPacket;
    use crate::types::{ChannelId, GlobalWarpId, MemGroupId};

    fn ol(number: u32) -> Marker {
        Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), number))
    }

    #[test]
    fn diverge_produces_annotated_copies() {
        let copies = diverge(ol(1), 4);
        assert_eq!(copies.len(), 4);
        assert!(copies.iter().all(|c| c.total_copies == 4));
    }

    #[test]
    #[should_panic(expected = "at least one sub-path")]
    fn diverge_zero_paths_panics() {
        let _ = diverge(ol(1), 0);
    }

    #[test]
    fn merge_fires_exactly_once_on_last_copy() {
        let mut fsm = MergeFsm::new();
        let copies = diverge(ol(7), 3);
        assert_eq!(fsm.on_copy(&copies[0]), None);
        assert_eq!(fsm.on_copy(&copies[1]), None);
        assert_eq!(fsm.pending(), 1);
        assert_eq!(fsm.on_copy(&copies[2]), Some(ol(7)));
        assert_eq!(fsm.pending(), 0);
        assert_eq!(fsm.merges(), 1);
    }

    #[test]
    fn single_copy_merges_immediately() {
        let mut fsm = MergeFsm::new();
        let copies = diverge(ol(1), 1);
        assert_eq!(fsm.on_copy(&copies[0]), Some(ol(1)));
    }

    #[test]
    fn interleaved_markers_do_not_cross_talk() {
        let mut fsm = MergeFsm::new();
        let a = diverge(ol(1), 2);
        let b = diverge(ol(2), 2);
        assert_eq!(fsm.on_copy(&a[0]), None);
        assert_eq!(fsm.on_copy(&b[0]), None);
        assert_eq!(fsm.pending(), 2);
        assert_eq!(fsm.on_copy(&b[1]), Some(ol(2)));
        assert_eq!(fsm.on_copy(&a[1]), Some(ol(1)));
    }

    #[test]
    fn fence_probes_merge_too() {
        let mut fsm = MergeFsm::new();
        let probe = Marker::FenceProbe {
            warp: GlobalWarpId::new(0, 0),
            fence_id: 42,
            channel: ChannelId(3),
        };
        let copies = diverge(probe.clone(), 2);
        assert_eq!(fsm.on_copy(&copies[0]), None);
        assert_eq!(fsm.on_copy(&copies[1]), Some(probe));
    }
}
