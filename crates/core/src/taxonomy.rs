//! The PIM design-space taxonomy of paper Section 3 (Figures 1 and 2).
//!
//! PIM designs are classified along two *temporal* axes:
//!
//! * **Offload granularity** — how much time one offloaded PIM computation
//!   consumes: coarse (the host ships an entire computation to memory-side
//!   orchestration logic) versus fine (each offload is temporally
//!   equivalent to an individual load/store).
//! * **Arbitration granularity** — how host and PIM memory accesses share
//!   the memory: coarse (the host is locked out while PIM runs) versus
//!   fine (the memory controller interleaves PIM commands with normal
//!   loads/stores).
//!
//! OrderLight targets the FGO/FGA quadrant, which keeps memory-side logic
//! simple, stays compatible with mainstream memory interfaces (DDR, HBM,
//! GDDR, LPDDR) and lets host and PIM run concurrently.

use std::fmt;

/// Temporal granularity of offloaded PIM computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadGranularity {
    /// Entire computations shipped to memory-side orchestration logic.
    Coarse,
    /// Individual commands, temporally equivalent to loads/stores.
    Fine,
}

/// Temporal granularity of arbitration between host and PIM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbitrationGranularity {
    /// Host memory accesses are disallowed while PIM computes.
    Coarse,
    /// PIM commands interleave with normal host loads/stores.
    Fine,
}

/// A quadrant of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PimClass {
    /// Offload-granularity axis.
    pub offload: OffloadGranularity,
    /// Arbitration-granularity axis.
    pub arbitration: ArbitrationGranularity,
}

impl PimClass {
    /// Coarse-grain offload, fine-grain arbitration (Section 3.1).
    pub const CGO_FGA: PimClass =
        PimClass { offload: OffloadGranularity::Coarse, arbitration: ArbitrationGranularity::Fine };
    /// Coarse-grain offload, coarse-grain arbitration (Section 3.2).
    pub const CGO_CGA: PimClass = PimClass {
        offload: OffloadGranularity::Coarse,
        arbitration: ArbitrationGranularity::Coarse,
    };
    /// Fine-grain offload, coarse-grain arbitration (Section 3.3).
    pub const FGO_CGA: PimClass =
        PimClass { offload: OffloadGranularity::Fine, arbitration: ArbitrationGranularity::Coarse };
    /// Fine-grain offload, fine-grain arbitration (Section 3.4) — the
    /// quadrant OrderLight serves.
    pub const FGO_FGA: PimClass =
        PimClass { offload: OffloadGranularity::Fine, arbitration: ArbitrationGranularity::Fine };

    /// Whether this class needs memory-side orchestration logic.
    #[must_use]
    pub fn needs_memory_side_orchestration(self) -> bool {
        self.offload == OffloadGranularity::Coarse
    }

    /// Whether this class allows concurrent host memory accesses during
    /// PIM computation.
    #[must_use]
    pub fn allows_concurrent_host_access(self) -> bool {
        self.arbitration == ArbitrationGranularity::Fine
    }

    /// Whether this class is compatible with mainstream (non-transactional)
    /// memory interfaces such as DDR/HBM/GDDR/LPDDR. Fine-grained
    /// arbitration with *coarse* offload requires moving the memory
    /// controller into the module (transactional interfaces such as HMC).
    #[must_use]
    pub fn mainstream_interface_compatible(self) -> bool {
        !(self.offload == OffloadGranularity::Coarse
            && self.arbitration == ArbitrationGranularity::Fine)
    }
}

impl fmt::Display for PimClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = match self.offload {
            OffloadGranularity::Coarse => "CGO",
            OffloadGranularity::Fine => "FGO",
        };
        let a = match self.arbitration {
            ArbitrationGranularity::Coarse => "CGA",
            ArbitrationGranularity::Fine => "FGA",
        };
        write!(f, "{o}/{a}")
    }
}

/// A published PIM design and its quadrant (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiteratureDesign {
    /// Design name as it appears in Figure 1.
    pub name: &'static str,
    /// Taxonomy quadrant.
    pub class: PimClass,
}

/// The Figure 1 classification of prior PIM designs.
#[must_use]
pub fn literature() -> Vec<LiteratureDesign> {
    use PimClass as C;
    let mut v = Vec::new();
    let mut push = |name, class| v.push(LiteratureDesign { name, class });
    // CGO/FGA (Section 3.1)
    for name in
        ["Tesseract", "LazyPIM", "Tetris", "Neurocube", "TOM", "Cho et al.", "NDP", "GraphPIM-HMC"]
    {
        push(name, C::CGO_FGA);
    }
    // CGO/CGA (Section 3.2)
    for name in ["Upmem", "DIVA", "Execube", "FlexRAM", "Active Pages", "NDA", "DRISA"] {
        push(name, C::CGO_CGA);
    }
    // FGO/CGA (Section 3.3)
    for name in ["Terasys", "GRIM", "McDRAM", "AC-DIMM", "IMPICA"] {
        push(name, C::FGO_CGA);
    }
    // FGO/FGA (Section 3.4) — the emerging class OrderLight supports.
    for name in ["PEI", "FIMDRAM", "Lee et al.", "ComputeDRAM", "GraphPIM"] {
        push(name, C::FGO_FGA);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_display() {
        assert_eq!(PimClass::FGO_FGA.to_string(), "FGO/FGA");
        assert_eq!(PimClass::CGO_CGA.to_string(), "CGO/CGA");
        assert_eq!(PimClass::CGO_FGA.to_string(), "CGO/FGA");
        assert_eq!(PimClass::FGO_CGA.to_string(), "FGO/CGA");
    }

    #[test]
    fn fgo_fga_has_all_desirable_characteristics() {
        let c = PimClass::FGO_FGA;
        assert!(!c.needs_memory_side_orchestration());
        assert!(c.allows_concurrent_host_access());
        assert!(c.mainstream_interface_compatible());
    }

    #[test]
    fn cgo_fga_needs_transactional_interface() {
        assert!(!PimClass::CGO_FGA.mainstream_interface_compatible());
        assert!(PimClass::CGO_CGA.mainstream_interface_compatible());
    }

    #[test]
    fn cga_blocks_host() {
        assert!(!PimClass::CGO_CGA.allows_concurrent_host_access());
        assert!(!PimClass::FGO_CGA.allows_concurrent_host_access());
    }

    #[test]
    fn literature_covers_all_quadrants() {
        let designs = literature();
        for class in [PimClass::CGO_FGA, PimClass::CGO_CGA, PimClass::FGO_CGA, PimClass::FGO_FGA] {
            assert!(designs.iter().any(|d| d.class == class), "no design classified as {class}");
        }
        // Spot checks from Figure 1.
        let find = |n: &str| designs.iter().find(|d| d.name == n).unwrap().class;
        assert_eq!(find("Upmem"), PimClass::CGO_CGA);
        assert_eq!(find("FIMDRAM"), PimClass::FGO_FGA);
        assert_eq!(find("Tesseract"), PimClass::CGO_FGA);
        assert_eq!(find("GRIM"), PimClass::FGO_CGA);
    }
}
