//! Messages that flow through the simulated memory pipe.
//!
//! Requests travel *down* the pipe (SM → interconnect → L2 slice →
//! memory controller); responses travel *up* it. Ordering markers —
//! OrderLight packets and fence probes — travel in-band with the requests
//! so their relative order with respect to PIM requests is maintained at
//! every step (paper Section 5.2).

use crate::isa::{PimInstruction, Reg};
use crate::packet::OrderLightPacket;
use crate::types::{Addr, ChannelId, GlobalWarpId, Stripe};
use std::fmt;

/// Per-request metadata used for fence tracking and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqMeta {
    /// Issuing warp.
    pub warp: GlobalWarpId,
    /// Per-warp monotonically increasing sequence number.
    pub seq: u64,
}

/// An in-band ordering marker.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Marker {
    /// An OrderLight packet: enforced at the memory controller, never
    /// stalls the core.
    OrderLight(OrderLightPacket),
    /// A Louvre-style versioned release marker. It reuses the OrderLight
    /// packet encoding (channel, group set, 32-bit number) but the number
    /// is a per-group *version* stamped at the core; the controller holds
    /// the marker at its scheduler stage until every older-version
    /// request of its groups has issued, instead of broadcasting a
    /// per-group flag.
    Release(OrderLightPacket),
    /// A fence probe: the baseline core-centric fence. The memory
    /// controller acknowledges it once every prior PIM request from the
    /// same warp has been issued to the DRAM; the warp stalls until the
    /// acknowledgement returns.
    FenceProbe {
        /// The stalled warp awaiting the acknowledgement.
        warp: GlobalWarpId,
        /// Identifier echoed back in the [`MemResp::FenceAck`].
        fence_id: u64,
        /// Channel whose controller must acknowledge.
        channel: ChannelId,
    },
}

impl Marker {
    /// A stable identity for matching divergence copies back together.
    #[must_use]
    pub fn key(&self) -> MarkerKey {
        match self {
            Marker::OrderLight(p) => MarkerKey::OrderLight {
                channel: p.channel(),
                group_bits: p.groups().fold(0u16, |acc, g| acc | 1 << g.0),
                number: p.number(),
            },
            Marker::Release(p) => MarkerKey::Release {
                channel: p.channel(),
                group_bits: p.groups().fold(0u16, |acc, g| acc | 1 << g.0),
                number: p.number(),
            },
            Marker::FenceProbe { warp, fence_id, .. } => {
                MarkerKey::Fence { warp: *warp, fence_id: *fence_id }
            }
        }
    }

    /// The channel this marker is routed to.
    #[must_use]
    pub fn channel(&self) -> ChannelId {
        match self {
            Marker::OrderLight(p) | Marker::Release(p) => p.channel(),
            Marker::FenceProbe { channel, .. } => *channel,
        }
    }
}

impl fmt::Display for Marker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Marker::OrderLight(p) => write!(f, "{p}"),
            Marker::Release(p) => write!(f, "release[{p}]"),
            Marker::FenceProbe { warp, fence_id, channel } => {
                write!(f, "fence[{warp} #{fence_id} ch{}]", channel.0)
            }
        }
    }
}

/// Identity used to match marker copies at convergence points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkerKey {
    /// Identity of an OrderLight packet.
    OrderLight {
        /// Target channel.
        channel: ChannelId,
        /// Bitmask of constrained memory groups.
        group_bits: u16,
        /// Packet number.
        number: u32,
    },
    /// Identity of a Louvre-style versioned release marker.
    Release {
        /// Target channel.
        channel: ChannelId,
        /// Bitmask of constrained memory groups.
        group_bits: u16,
        /// Release version.
        number: u32,
    },
    /// Identity of a fence probe.
    Fence {
        /// Stalled warp.
        warp: GlobalWarpId,
        /// Fence identifier.
        fence_id: u64,
    },
}

/// A marker copy produced at a divergence point, carrying how many sibling
/// copies the downstream convergence FSM must collect before merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerCopy {
    /// The marker being replicated.
    pub marker: Marker,
    /// Total number of copies emitted at the divergence point.
    pub total_copies: u8,
}

/// A request travelling down the memory pipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemReq {
    /// A fine-grained PIM instruction (bypasses the caches like a
    /// non-temporal access).
    Pim {
        /// The PIM instruction.
        instr: PimInstruction,
        /// Issue metadata.
        meta: ReqMeta,
    },
    /// A conventional host read returning a stripe to the core.
    HostRead {
        /// Stripe address.
        addr: Addr,
        /// Destination register at the core.
        reg: Reg,
        /// Issue metadata.
        meta: ReqMeta,
    },
    /// A conventional host write.
    HostWrite {
        /// Stripe address.
        addr: Addr,
        /// Data to write.
        data: Stripe,
        /// Issue metadata.
        meta: ReqMeta,
    },
    /// An in-band ordering marker (possibly one of several copies).
    Marker(MarkerCopy),
}

impl MemReq {
    /// The request's target address, if it accesses memory.
    #[must_use]
    pub fn addr(&self) -> Option<Addr> {
        match self {
            MemReq::Pim { instr, .. } => Some(instr.addr),
            MemReq::HostRead { addr, .. } | MemReq::HostWrite { addr, .. } => Some(*addr),
            MemReq::Marker(_) => None,
        }
    }

    /// Whether the request is write-like for queue routing purposes:
    /// host writes and PIM stores go to the write queue, everything else
    /// (including PIM loads/computes, which are read-like) to the read
    /// queue.
    #[must_use]
    pub fn is_write_like(&self) -> bool {
        match self {
            MemReq::Pim { instr, .. } => instr.op.is_dram_write(),
            MemReq::HostWrite { .. } => true,
            MemReq::HostRead { .. } | MemReq::Marker(_) => false,
        }
    }

    /// The issuing warp, if the request is not a marker.
    #[must_use]
    pub fn meta(&self) -> Option<ReqMeta> {
        match self {
            MemReq::Pim { meta, .. }
            | MemReq::HostRead { meta, .. }
            | MemReq::HostWrite { meta, .. } => Some(*meta),
            MemReq::Marker(_) => None,
        }
    }

    /// Whether this is a PIM request (for bandwidth accounting).
    #[must_use]
    pub fn is_pim(&self) -> bool {
        matches!(self, MemReq::Pim { .. })
    }
}

/// A response travelling back up the memory pipe to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResp {
    /// Data for a conventional host read.
    LoadData {
        /// Requesting warp.
        warp: GlobalWarpId,
        /// Destination register.
        reg: Reg,
        /// The stripe read.
        data: Stripe,
    },
    /// Acknowledgement that a fence's prior requests have been issued to
    /// DRAM; unblocks the stalled warp.
    FenceAck {
        /// The stalled warp.
        warp: GlobalWarpId,
        /// The fence identifier from the probe.
        fence_id: u64,
    },
    /// A buffer credit returned by the controller (only in the
    /// sequence-number baseline of Kim et al. (paper reference 27), reproduced for the
    /// paper's Related Work comparison): the warp may issue one more PIM
    /// request.
    Credit {
        /// The warp the credit belongs to.
        warp: GlobalWarpId,
    },
}

impl MemResp {
    /// The warp this response is delivered to.
    #[must_use]
    pub fn warp(&self) -> GlobalWarpId {
        match self {
            MemResp::LoadData { warp, .. }
            | MemResp::FenceAck { warp, .. }
            | MemResp::Credit { warp } => *warp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, PimOp};
    use crate::types::{MemGroupId, TsSlot};

    fn pim_req(op: PimOp) -> MemReq {
        MemReq::Pim {
            instr: PimInstruction { op, addr: Addr(0x80), slot: TsSlot(0), group: MemGroupId(0) },
            meta: ReqMeta { warp: GlobalWarpId::new(0, 1), seq: 5 },
        }
    }

    #[test]
    fn routing_write_like() {
        assert!(!pim_req(PimOp::Load).is_write_like());
        assert!(!pim_req(PimOp::Compute(AluOp::Add)).is_write_like());
        assert!(pim_req(PimOp::Store).is_write_like());
        let w = MemReq::HostWrite {
            addr: Addr(0),
            data: Stripe::default(),
            meta: ReqMeta { warp: GlobalWarpId(0), seq: 0 },
        };
        assert!(w.is_write_like());
    }

    #[test]
    fn addr_and_meta_accessors() {
        let r = pim_req(PimOp::Load);
        assert_eq!(r.addr(), Some(Addr(0x80)));
        assert_eq!(r.meta().unwrap().seq, 5);
        assert!(r.is_pim());
        let m = MemReq::Marker(MarkerCopy {
            marker: Marker::FenceProbe {
                warp: GlobalWarpId(1),
                fence_id: 2,
                channel: ChannelId(0),
            },
            total_copies: 2,
        });
        assert_eq!(m.addr(), None);
        assert_eq!(m.meta(), None);
        assert!(!m.is_pim());
    }

    #[test]
    fn marker_keys_distinguish_packets() {
        let a = Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), 1));
        let b = Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), 2));
        let c = Marker::OrderLight(OrderLightPacket::new(ChannelId(1), MemGroupId(0), 1));
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), a.key());
    }

    #[test]
    fn marker_channel_routing() {
        let f = Marker::FenceProbe { warp: GlobalWarpId(9), fence_id: 1, channel: ChannelId(7) };
        assert_eq!(f.channel(), ChannelId(7));
        let o = Marker::OrderLight(OrderLightPacket::new(ChannelId(3), MemGroupId(0), 0));
        assert_eq!(o.channel(), ChannelId(3));
    }

    #[test]
    fn resp_warp_accessor() {
        let r = MemResp::FenceAck { warp: GlobalWarpId::new(2, 3), fence_id: 1 };
        assert_eq!(r.warp(), GlobalWarpId::new(2, 3));
    }
}
