//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Error produced when decoding a raw [`crate::packet::OrderLightPacket`]
/// bit pattern fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The 2-bit packet-type field did not contain the OrderLight marker.
    BadPacketId {
        /// The packet-type bits that were found.
        found: u8,
    },
    /// More memory-group extensions than the wire format supports.
    TooManyGroups {
        /// Number of extra groups requested.
        requested: usize,
        /// Maximum number of extra groups supported.
        max: usize,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::BadPacketId { found } => {
                write!(f, "packet-type bits {found:#04b} are not an OrderLight packet")
            }
            PacketError::TooManyGroups { requested, max } => {
                write!(f, "{requested} extra memory-groups requested, at most {max} supported")
            }
        }
    }
}

impl Error for PacketError {}

/// Error produced when a configuration is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given explanation.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError { message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_error_messages() {
        let e = PacketError::BadPacketId { found: 0b01 };
        assert!(e.to_string().contains("not an OrderLight packet"));
        let e = PacketError::TooManyGroups { requested: 5, max: 2 };
        assert!(e.to_string().contains("at most 2"));
    }

    #[test]
    fn config_error_message() {
        let e = ConfigError::new("zero channels");
        assert_eq!(e.to_string(), "invalid configuration: zero channels");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PacketError>();
        assert_send_sync::<ConfigError>();
    }
}
