//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] describes *schedule-legal* perturbations applied to a
//! run so the ordering-violation oracle (`orderlight-check`) is exercised
//! under stress: extra NoC delay within the pipe's allowed windows,
//! adversarial (but constraint-respecting) scheduler tie-breaks at the
//! memory controller, and refresh storms at the HBM channels. None of
//! these may change *functional* results on a correct simulator — that is
//! exactly what the oracle checks.
//!
//! The plan also carries the one deliberately *illegal* knob,
//! [`DropEdge`]: elide a single ordering edge inside the controller's
//! group-ordering unit. This mutation exists to prove the oracle fires
//! (and is rejected by CI's mutation gate when it does not).
//!
//! All randomness is drawn from the in-tree SplitMix64 [`Rng`], with
//! per-layer, per-channel seeds derived from the plan's master seed via
//! [`FaultPlan::layer_seed`] — identical plans yield bit-identical
//! perturbed schedules regardless of core selection or job parallelism.

use crate::rng::Rng;

/// Extra, bounded delay added to NoC delay-queue traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocJitter {
    /// Maximum extra cycles added to an item's ready stamp (inclusive).
    /// Each push draws uniformly from `0..=max_extra`.
    pub max_extra: u64,
}

impl Default for NocJitter {
    fn default() -> Self {
        // Roughly a quarter of the interconnect latency: enough to shift
        // arrival interleavings without dwarfing the pipe itself.
        NocJitter { max_extra: 32 }
    }
}

/// Randomized refresh cadence at the HBM channels.
///
/// Instead of a fixed tREFI, each refresh re-arms the next one after a
/// uniform draw from `min_interval..=max_interval` memory cycles. Short
/// intervals force frequent all-bank refreshes that close rows and stall
/// the channel — a worst case for row-hit-friendly schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshStorm {
    /// Minimum cycles between refreshes (inclusive).
    pub min_interval: u64,
    /// Maximum cycles between refreshes (inclusive).
    pub max_interval: u64,
    /// Refresh occupancy (tRFC) in memory cycles.
    pub rfc: u64,
}

impl Default for RefreshStorm {
    fn default() -> Self {
        // ~2-8x more frequent than HBM2's tREFI of 3315 cycles, with the
        // real tRFC-scale occupancy shortened so storms stress scheduling
        // rather than simply serializing the run.
        RefreshStorm { min_interval: 400, max_interval: 1600, rfc: 120 }
    }
}

/// The deliberate mutation: drop one ordering edge at the controller.
///
/// The group-ordering unit on `channel` ignores `group`'s contribution
/// when it builds barriers from merged OrderLight packets, so requests
/// to that group enqueued *after* a packet may overtake requests
/// enqueued *before* it. This is a seeded bug, not a fault: the oracle
/// must report it and the DRAM bytes go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropEdge {
    /// Channel whose ordering unit is mutated.
    pub channel: u8,
    /// Memory group whose ordering edge is elided.
    pub group: u8,
}

/// The layers a fault plan can perturb (used for seed derivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLayer {
    /// NoC delay-queue jitter.
    Noc,
    /// Memory-controller scheduler tie-breaks.
    Sched,
    /// HBM refresh storms.
    Refresh,
}

impl FaultLayer {
    fn salt(self) -> u64 {
        match self {
            FaultLayer::Noc => 0x4e6f_435f_6a69_7474,     // "NoC_jitt"
            FaultLayer::Sched => 0x5363_6865_645f_7462,   // "Sched_tb"
            FaultLayer::Refresh => 0x5265_6672_5f73_746d, // "Refr_stm"
        }
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// # Example
///
/// ```
/// use orderlight::fault::{FaultLayer, FaultPlan};
///
/// let quiet = FaultPlan::none();
/// assert!(quiet.is_noop());
///
/// let a = FaultPlan::stress(7);
/// let b = FaultPlan::stress(7);
/// assert!(!a.is_noop());
/// assert_eq!(
///     a.layer_seed(FaultLayer::Noc, 3),
///     b.layer_seed(FaultLayer::Noc, 3),
///     "equal plans derive equal per-layer seeds",
/// );
/// assert_ne!(a.layer_seed(FaultLayer::Noc, 3), a.layer_seed(FaultLayer::Sched, 3));
/// assert_ne!(a.layer_seed(FaultLayer::Noc, 3), a.layer_seed(FaultLayer::Noc, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed all per-layer streams derive from.
    pub seed: u64,
    /// Extra NoC delay, if enabled.
    pub noc_jitter: Option<NocJitter>,
    /// Adversarial scheduler tie-breaks at the controllers.
    pub sched_adversary: bool,
    /// Refresh storms at the HBM channels, if enabled.
    pub refresh_storm: Option<RefreshStorm>,
    /// The deliberate ordering-edge mutation, if enabled.
    pub drop_edge: Option<DropEdge>,
}

impl FaultPlan {
    /// The empty plan: no perturbations, no mutation.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            noc_jitter: None,
            sched_adversary: false,
            refresh_storm: None,
            drop_edge: None,
        }
    }

    /// All three legal stress layers at their defaults, no mutation.
    #[must_use]
    pub fn stress(seed: u64) -> Self {
        FaultPlan {
            seed,
            noc_jitter: Some(NocJitter::default()),
            sched_adversary: true,
            refresh_storm: Some(RefreshStorm::default()),
            drop_edge: None,
        }
    }

    /// Whether the plan perturbs nothing (mutation included).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.noc_jitter.is_none()
            && !self.sched_adversary
            && self.refresh_storm.is_none()
            && self.drop_edge.is_none()
    }

    /// The seed for `layer`'s stream on `channel`, derived from the
    /// master seed with SplitMix64 so streams decorrelate across layers
    /// and channels even for small master seeds.
    #[must_use]
    pub fn layer_seed(&self, layer: FaultLayer, channel: u8) -> u64 {
        let mut r = Rng::new(self.seed ^ layer.salt().wrapping_add(u64::from(channel)));
        // Burn two outputs so adjacent (seed, salt) pairs diverge fully.
        r.next_u64();
        r.next_u64()
    }

    /// An [`Rng`] seeded for `layer` on `channel`.
    #[must_use]
    pub fn layer_rng(&self, layer: FaultLayer, channel: u8) -> Rng {
        Rng::new(self.layer_seed(layer, channel))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_detection() {
        assert!(FaultPlan::none().is_noop());
        assert!(!FaultPlan::stress(1).is_noop());
        let mutant =
            FaultPlan { drop_edge: Some(DropEdge { channel: 0, group: 0 }), ..FaultPlan::none() };
        assert!(!mutant.is_noop(), "the mutation is not a no-op");
    }

    #[test]
    fn layer_seeds_are_deterministic_and_distinct() {
        let p = FaultPlan::stress(42);
        let q = FaultPlan::stress(42);
        for ch in 0..16u8 {
            for layer in [FaultLayer::Noc, FaultLayer::Sched, FaultLayer::Refresh] {
                assert_eq!(p.layer_seed(layer, ch), q.layer_seed(layer, ch));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for ch in 0..16u8 {
            for layer in [FaultLayer::Noc, FaultLayer::Sched, FaultLayer::Refresh] {
                assert!(seen.insert(p.layer_seed(layer, ch)), "seed collision");
            }
        }
    }

    #[test]
    fn master_seed_changes_every_stream() {
        let a = FaultPlan::stress(1);
        let b = FaultPlan::stress(2);
        assert_ne!(a.layer_seed(FaultLayer::Sched, 0), b.layer_seed(FaultLayer::Sched, 0),);
    }
}
