//! Shared identifiers, clock-domain aliases, and the data stripe type.
//!
//! The simulator runs two clock domains — the GPU core at 1200 MHz and the
//! HBM memory at 850 MHz (paper Table 1). We keep both as plain `u64`
//! aliases ([`CoreCycle`], [`MemCycle`]); the dual-clock conversion lives in
//! `orderlight-sim`. Identifiers, on the other hand, are newtypes so that a
//! bank index can never be confused with a channel index.

use std::fmt;

/// A cycle count in the GPU core clock domain (1200 MHz by default).
pub type CoreCycle = u64;

/// A cycle count in the memory clock domain (850 MHz by default).
pub type MemCycle = u64;

/// Width of the memory data bus in bytes (one column access / one
/// fine-grained PIM command payload). Paper Table 1: "DRAM Bus Width: 32B".
pub const BUS_BYTES: usize = 32;

/// Bytes per SIMD lane. Data is modelled as vectors of little-endian `u32`.
pub const LANE_BYTES: usize = 4;

/// Number of `u32` SIMD lanes in one 32 B stripe.
pub const LANES: usize = BUS_BYTES / LANE_BYTES;

/// A physical byte address.
///
/// Addresses are plain byte offsets into the simulated physical memory;
/// [`crate::mapping::AddressMapping`] decodes them into
/// (channel, bank, row, column) coordinates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident($inner:ty)) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl $name {
            /// Returns the identifier as a `usize` index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_newtype!(
    /// A memory channel index (paper: 16 HBM channels).
    ChannelId(u8)
);
id_newtype!(
    /// A DRAM bank index within one channel (paper: 16 banks/channel).
    BankId(u8)
);
id_newtype!(
    /// A memory-group index: a subset of banks within a channel for which
    /// ordering is enforced independently (paper Section 5.3.1). PIM and
    /// non-PIM data structures are typically mapped to different groups so
    /// that non-PIM requests are never constrained by OrderLight packets.
    MemGroupId(u8)
);
id_newtype!(
    /// A slot index into a PIM unit's temporary storage (TS).
    TsSlot(u16)
);

/// A globally unique warp identifier: `(SM index, warp index within SM)`
/// flattened into one integer so it can travel in request messages.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalWarpId(pub u32);

impl GlobalWarpId {
    /// Builds a global warp id from an SM index and a warp index within it.
    #[must_use]
    pub fn new(sm: usize, warp: usize) -> Self {
        GlobalWarpId((sm as u32) << 16 | warp as u32)
    }

    /// The SM index this warp runs on.
    #[must_use]
    pub fn sm(self) -> usize {
        (self.0 >> 16) as usize
    }

    /// The warp index within its SM.
    #[must_use]
    pub fn warp(self) -> usize {
        (self.0 & 0xffff) as usize
    }
}

impl fmt::Display for GlobalWarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sm{}.w{}", self.sm(), self.warp())
    }
}

/// One 32 B data stripe: the payload of a single column access or
/// fine-grained PIM command, viewed as [`LANES`] SIMD lanes of `u32`.
///
/// All functional arithmetic in the suite is wrapping `u32` lane math so
/// that golden-model replay is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stripe(pub [u32; LANES]);

impl Default for Stripe {
    fn default() -> Self {
        Stripe([0; LANES])
    }
}

impl Stripe {
    /// A stripe with every lane set to `v`.
    #[must_use]
    pub fn splat(v: u32) -> Self {
        Stripe([v; LANES])
    }

    /// Builds a stripe from raw little-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() != BUS_BYTES`.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), BUS_BYTES, "stripe must be {BUS_BYTES} bytes");
        let mut lanes = [0u32; LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[i * LANE_BYTES..(i + 1) * LANE_BYTES]);
            *lane = u32::from_le_bytes(b);
        }
        Stripe(lanes)
    }

    /// Serialises the stripe to little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; BUS_BYTES] {
        let mut out = [0u8; BUS_BYTES];
        for (i, lane) in self.0.iter().enumerate() {
            out[i * LANE_BYTES..(i + 1) * LANE_BYTES].copy_from_slice(&lane.to_le_bytes());
        }
        out
    }

    /// Applies a binary lane-wise function against another stripe.
    #[must_use]
    pub fn zip_map(self, rhs: Stripe, f: impl Fn(u32, u32) -> u32) -> Stripe {
        let mut out = [0u32; LANES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = f(*a, *b);
        }
        Stripe(out)
    }

    /// Applies a unary lane-wise function.
    #[must_use]
    pub fn map(self, f: impl Fn(u32) -> u32) -> Stripe {
        let mut out = [0u32; LANES];
        for (o, a) in out.iter_mut().zip(self.0.iter()) {
            *o = f(*a);
        }
        Stripe(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset_and_display() {
        let a = Addr(0x100);
        assert_eq!(a.offset(0x20), Addr(0x120));
        assert_eq!(a.to_string(), "0x100");
        assert_eq!(format!("{a:x}"), "100");
    }

    #[test]
    fn id_newtypes_index_and_from() {
        assert_eq!(ChannelId::from(5).index(), 5);
        assert_eq!(BankId(3).index(), 3);
        assert_eq!(MemGroupId(1).to_string(), "MemGroupId1");
        assert_eq!(TsSlot(9).index(), 9);
    }

    #[test]
    fn global_warp_id_roundtrip() {
        let w = GlobalWarpId::new(7, 42);
        assert_eq!(w.sm(), 7);
        assert_eq!(w.warp(), 42);
        assert_eq!(w.to_string(), "sm7.w42");
    }

    #[test]
    fn stripe_byte_roundtrip() {
        let s = Stripe([1, 2, 3, 4, 5, 6, 7, 0xdead_beef]);
        assert_eq!(Stripe::from_bytes(&s.to_bytes()), s);
    }

    #[test]
    fn stripe_zip_map_adds() {
        let a = Stripe::splat(3);
        let b = Stripe::splat(4);
        assert_eq!(a.zip_map(b, u32::wrapping_add), Stripe::splat(7));
    }

    #[test]
    fn stripe_map_scales() {
        let a = Stripe::splat(3);
        assert_eq!(a.map(|x| x.wrapping_mul(2)), Stripe::splat(6));
    }

    #[test]
    #[should_panic(expected = "stripe must be")]
    fn stripe_from_bytes_wrong_len_panics() {
        let _ = Stripe::from_bytes(&[0u8; 16]);
    }

    #[test]
    fn default_stripe_is_zero() {
        assert_eq!(Stripe::default(), Stripe::splat(0));
    }
}
