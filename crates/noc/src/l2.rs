//! An L2 slice with sub-partitions — the memory pipe's first divergence
//! point (paper Section 5.3.2, "Diverging Paths in the Memory Pipe").
//!
//! Many GPU architectures split each L2 slice into sub-partitions with
//! separate input/output queues; requests routed to different
//! sub-partitions may merge later in the pipe out of order. OrderLight
//! packets (and fence probes) are therefore *copied* onto every
//! sub-partition and *merged* at the slice exit: a copy blocks its
//! sub-partition's head until every sibling copy has reached the exit,
//! then the merged packet moves forward exactly once.
//!
//! Packet bodies live in the owning pipe's [`Slab`] arena; the slice's
//! queues carry 8-byte [`SlabRef`] handles, so forwarding a request is
//! a handle move, not a [`MemReq`] copy. Only marker divergence and
//! convergence touch the arena (copies are inserted / merged bodies
//! removed there).

use crate::delay_queue::DelayQueue;
use orderlight::fsm::diverge;
use orderlight::message::{Marker, MarkerCopy, MemReq};
use orderlight::min_horizon;
use orderlight::slab::{Slab, SlabRef};
use orderlight::types::{CoreCycle, GlobalWarpId};

/// Number of sub-partitions per L2 slice.
pub const SUB_PARTITIONS: usize = 2;

/// One L2 slice (one memory channel's worth of L2).
#[derive(Debug, Clone)]
pub struct L2Slice {
    subs: [DelayQueue<SlabRef>; SUB_PARTITIONS],
    merges: u64,
    forwarded: u64,
    rr: usize,
    /// Acknowledge fence probes here — at the "global serialization
    /// point" — instead of forwarding them to the controller. This
    /// models the *insufficient* fence semantics of paper Section 4.3:
    /// faster, but with no guarantee that the controller will not
    /// reorder pre-fence stores against post-fence requests.
    fence_ack_here: bool,
    pending_acks: Vec<(GlobalWarpId, u64)>,
}

impl L2Slice {
    /// Creates a slice whose sub-partition queues add `sub_latency` and
    /// hold `sub_capacity` entries each.
    #[must_use]
    pub fn new(sub_latency: CoreCycle, sub_capacity: usize) -> Self {
        L2Slice::with_fence_ack(sub_latency, sub_capacity, false)
    }

    /// Creates a slice, optionally acknowledging fence probes at the
    /// slice exit (the insufficient "global serialization point" fence
    /// of paper Section 4.3; see the field documentation).
    #[must_use]
    pub fn with_fence_ack(
        sub_latency: CoreCycle,
        sub_capacity: usize,
        fence_ack_here: bool,
    ) -> Self {
        L2Slice {
            subs: [
                DelayQueue::new(sub_latency, sub_capacity),
                DelayQueue::new(sub_latency, sub_capacity),
            ],
            merges: 0,
            forwarded: 0,
            rr: 0,
            fence_ack_here,
            pending_acks: Vec::new(),
        }
    }

    /// Drains fence acknowledgements generated at this slice (only when
    /// constructed with `fence_ack_here`).
    pub fn take_acks(&mut self) -> Vec<(GlobalWarpId, u64)> {
        std::mem::take(&mut self.pending_acks)
    }

    /// Which sub-partition a request is routed to (stripe-parity hash;
    /// markers go to both).
    fn route(req: &MemReq) -> Option<usize> {
        match req {
            MemReq::Pim { instr, .. } => {
                if instr.op.accesses_dram() {
                    Some((instr.addr.0 / 32 % SUB_PARTITIONS as u64) as usize)
                } else {
                    Some(instr.slot.index() % SUB_PARTITIONS)
                }
            }
            MemReq::HostRead { addr, .. } | MemReq::HostWrite { addr, .. } => {
                Some((addr.0 / 32 % SUB_PARTITIONS as u64) as usize)
            }
            MemReq::Marker(_) => None,
        }
    }

    /// Whether `req` can be accepted this cycle.
    #[must_use]
    pub fn can_accept(&self, req: &MemReq) -> bool {
        match Self::route(req) {
            Some(i) => self.subs[i].has_space(),
            None => self.subs.iter().all(DelayQueue::has_space),
        }
    }

    /// Accepts the request behind `handle`, copying markers onto every
    /// sub-partition (the original marker body is replaced in the arena
    /// by one body per copy).
    ///
    /// # Panics
    /// Panics if called while [`can_accept`](Self::can_accept) is false.
    pub fn push(&mut self, handle: SlabRef, arena: &mut Slab<MemReq>, now: CoreCycle) {
        match Self::route(arena.get(handle)) {
            Some(i) => self.subs[i].push(handle, now),
            None => {
                let MemReq::Marker(copy) = arena.remove(handle) else {
                    unreachable!("markers have no route")
                };
                let copies = diverge(copy.marker, SUB_PARTITIONS);
                for (sub, c) in self.subs.iter_mut().zip(copies) {
                    sub.push(arena.insert(MemReq::Marker(c)), now);
                }
            }
        }
    }

    /// Drains ready sub-partition heads into `out` (the L2-to-DRAM
    /// queue), handling marker convergence.
    pub fn tick(
        &mut self,
        now: CoreCycle,
        out: &mut DelayQueue<SlabRef>,
        arena: &mut Slab<MemReq>,
    ) {
        // Marker convergence: when every sub-partition's ready head is a
        // copy of the same marker, merge them and forward one packet.
        let heads_are_copies = self
            .subs
            .iter()
            .map(|s| match s.peek_ready(now).map(|&r| arena.get(r)) {
                Some(MemReq::Marker(c)) => Some(c.marker.key()),
                _ => None,
            })
            .collect::<Vec<_>>();
        if heads_are_copies.iter().all(Option::is_some) {
            let first = heads_are_copies[0].expect("checked");
            assert!(
                heads_are_copies.iter().all(|k| k.as_ref() == Some(&first)),
                "FIFO sub-partitions must pair marker copies in order"
            );
            if out.has_space() {
                let mut marker = None;
                for sub in &mut self.subs {
                    let r = sub.pop_ready(now).expect("head was ready");
                    match arena.remove(r) {
                        MemReq::Marker(c) => marker = Some(c.marker),
                        _ => unreachable!("head was a ready marker"),
                    }
                }
                let marker = marker.expect("at least one sub-partition");
                self.merges += 1;
                if self.fence_ack_here {
                    if let Marker::FenceProbe { warp, fence_id, .. } = marker {
                        // The "global serialization point" fence: ack now,
                        // never tell the controller. Correctness is not
                        // guaranteed past this point (paper Section 4.3).
                        self.pending_acks.push((warp, fence_id));
                        return;
                    }
                }
                out.push(arena.insert(MemReq::Marker(MarkerCopy { marker, total_copies: 1 })), now);
            }
            return;
        }
        // Forward ready request heads, alternating priority for fairness.
        // A marker head blocks its own sub-partition until merged.
        for k in 0..SUB_PARTITIONS {
            let i = (self.rr + k) % SUB_PARTITIONS;
            match self.subs[i].peek_ready(now) {
                Some(&r) if !matches!(arena.get(r), MemReq::Marker(_)) && out.has_space() => {
                    let r = self.subs[i].pop_ready(now).expect("peeked ready");
                    out.push(r, now);
                    self.forwarded += 1;
                }
                _ => {}
            }
        }
        self.rr = (self.rr + 1) % SUB_PARTITIONS;
    }

    /// Whether the slice holds no traffic.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.subs.iter().all(DelayQueue::is_empty)
    }

    /// Requests resident across every sub-partition (occupancy for the
    /// NoC counter tracks; marker copies count once per copy).
    #[must_use]
    pub fn len(&self) -> usize {
        self.subs.iter().map(DelayQueue::len).sum()
    }

    /// Whether every sub-partition's ready head is a marker copy — the
    /// exact condition under which [`tick`](Self::tick) takes the merge
    /// branch and skips the round-robin pointer advance.
    fn merge_branch(&self, now: CoreCycle, arena: &Slab<MemReq>) -> bool {
        self.subs
            .iter()
            .all(|s| matches!(s.peek_ready(now).map(|&r| arena.get(r)), Some(MemReq::Marker(_))))
    }

    /// Quiescence horizon of the slice given its output queue: `now` if
    /// a merge or forward could happen this cycle, otherwise the
    /// earliest not-yet-ready sub-partition head deadline. A head that
    /// is ready but blocked (marker waiting for its sibling copy, or
    /// `out` full) contributes no event of its own — its unblocking is
    /// some *other* component's advertised event.
    #[must_use]
    pub fn next_event(
        &self,
        now: CoreCycle,
        out: &DelayQueue<SlabRef>,
        arena: &Slab<MemReq>,
    ) -> Option<CoreCycle> {
        if out.has_space() {
            if self.merge_branch(now, arena) {
                return Some(now);
            }
            if self.subs.iter().any(|s| {
                matches!(s.peek_ready(now).map(|&r| arena.get(r)),
                    Some(r) if !matches!(r, MemReq::Marker(_)))
            }) {
                return Some(now);
            }
        }
        let mut h = None;
        for s in &self.subs {
            if s.peek_ready(now).is_none() {
                h = min_horizon(h, s.next_ready());
            }
        }
        h
    }

    /// Advances the slice across a quiescent window of `span` cycles —
    /// one in which [`tick`](Self::tick) would not move any traffic.
    /// The only per-cycle state is the round-robin pointer: the dense
    /// loop advances it every tick *except* when the merge branch runs,
    /// and the branch condition is frozen across the window (head
    /// readiness transitions are themselves horizon events).
    pub fn skip_quiescent(&mut self, now: CoreCycle, span: u64, arena: &Slab<MemReq>) {
        if !self.merge_branch(now, arena) {
            self.rr = (self.rr + span as usize % SUB_PARTITIONS) % SUB_PARTITIONS;
        }
    }

    /// Completed marker merges.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Requests forwarded to the L2-to-DRAM queue.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::message::{Marker, ReqMeta};
    use orderlight::packet::OrderLightPacket;
    use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
    use orderlight::{PimInstruction, PimOp};

    fn pim(addr: u64, seq: u64) -> MemReq {
        MemReq::Pim {
            instr: PimInstruction {
                op: PimOp::Load,
                addr: Addr(addr),
                slot: TsSlot(0),
                group: MemGroupId(0),
            },
            meta: ReqMeta { warp: GlobalWarpId(0), seq },
        }
    }

    fn marker(number: u32) -> MemReq {
        MemReq::Marker(MarkerCopy {
            marker: Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), number)),
            total_copies: 1,
        })
    }

    fn push(l2: &mut L2Slice, arena: &mut Slab<MemReq>, req: MemReq, now: CoreCycle) {
        let handle = arena.insert(req);
        l2.push(handle, arena, now);
    }

    fn drain(
        l2: &mut L2Slice,
        arena: &mut Slab<MemReq>,
        out: &mut DelayQueue<SlabRef>,
        until: CoreCycle,
    ) -> Vec<MemReq> {
        let mut got = Vec::new();
        for now in 0..until {
            l2.tick(now, out, arena);
            while let Some(r) = out.pop_ready(now) {
                got.push(arena.remove(r));
            }
        }
        got
    }

    #[test]
    fn requests_route_by_stripe_parity() {
        let mut l2 = L2Slice::new(0, 8);
        let mut arena = Slab::new();
        push(&mut l2, &mut arena, pim(0, 0), 0); // stripe 0 -> sub 0
        push(&mut l2, &mut arena, pim(32, 1), 0); // stripe 1 -> sub 1
        assert!(!l2.is_empty());
        let mut out = DelayQueue::new(0, 8);
        let got = drain(&mut l2, &mut arena, &mut out, 3);
        assert_eq!(got.len(), 2);
        assert_eq!(l2.forwarded(), 2);
        assert!(arena.is_empty(), "drained packets leave the arena");
    }

    #[test]
    fn marker_copies_merge_and_forward_once() {
        let mut l2 = L2Slice::new(0, 8);
        let mut arena = Slab::new();
        push(&mut l2, &mut arena, marker(7), 0);
        assert_eq!(arena.len(), SUB_PARTITIONS, "one body per divergence copy");
        let mut out = DelayQueue::new(0, 8);
        let got = drain(&mut l2, &mut arena, &mut out, 3);
        assert_eq!(got.len(), 1);
        match &got[0] {
            MemReq::Marker(c) => {
                assert_eq!(c.total_copies, 1, "merged packet travels as one copy");
            }
            other => panic!("expected marker, got {other:?}"),
        }
        assert_eq!(l2.merges(), 1);
        assert!(arena.is_empty());
    }

    #[test]
    fn requests_behind_marker_wait_for_merge() {
        // Marker enters, then a request to sub 0. The marker copy in
        // sub 1 is held back by an earlier slow request, so the request
        // behind the copy in sub 0 must wait even though sub 0's head
        // (the copy) arrived.
        let mut l2 = L2Slice::new(0, 8);
        let mut arena = Slab::new();
        push(&mut l2, &mut arena, pim(32, 0), 0); // sub 1, ahead of the marker copy there
        push(&mut l2, &mut arena, marker(1), 0);
        push(&mut l2, &mut arena, pim(0, 1), 0); // sub 0, behind the marker copy there
        let mut out = DelayQueue::new(0, 8);

        // Tick 0: sub-1 head is the early request; sub-0 head is the
        // marker copy (blocks). Only the early request may come out.
        l2.tick(0, &mut out, &mut arena);
        let first = out.pop_ready(0).map(|r| arena.remove(r)).expect("early request forwarded");
        match &first {
            MemReq::Pim { meta, .. } => assert_eq!(meta.seq, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(out.pop_ready(0).is_none(), "request behind the copy must wait");

        // Tick 1: both copies at heads -> merge.
        l2.tick(1, &mut out, &mut arena);
        assert!(matches!(out.pop_ready(1).map(|r| arena.remove(r)), Some(MemReq::Marker(_))));
        // Tick 2: the blocked request flows.
        l2.tick(2, &mut out, &mut arena);
        assert!(matches!(
            out.pop_ready(2).map(|r| arena.remove(r)),
            Some(MemReq::Pim { meta, .. }) if meta.seq == 1
        ));
    }

    #[test]
    fn exec_commands_route_by_slot_parity() {
        let mut l2 = L2Slice::new(0, 1);
        let mut arena = Slab::new();
        let exec = |slot: u16| MemReq::Pim {
            instr: PimInstruction {
                op: PimOp::Execute(orderlight::AluOp::AddImm(1)),
                addr: Addr(0),
                slot: TsSlot(slot),
                group: MemGroupId(0),
            },
            meta: ReqMeta { warp: GlobalWarpId(0), seq: 0 },
        };
        assert!(l2.can_accept(&exec(0)));
        push(&mut l2, &mut arena, exec(0), 0);
        assert!(!l2.can_accept(&exec(2)), "sub 0 full");
        assert!(l2.can_accept(&exec(1)), "sub 1 free");
    }

    #[test]
    fn backpressure_on_full_out_queue() {
        let mut l2 = L2Slice::new(0, 8);
        let mut arena = Slab::new();
        push(&mut l2, &mut arena, pim(0, 0), 0);
        push(&mut l2, &mut arena, pim(64, 1), 0); // also sub 0
        let mut out = DelayQueue::new(0, 1);
        l2.tick(0, &mut out, &mut arena);
        l2.tick(1, &mut out, &mut arena); // out is full; nothing more forwards
        assert_eq!(out.len(), 1);
        assert!(!l2.is_empty());
    }
}
