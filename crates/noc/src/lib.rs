//! # The GPU memory pipe (paper Figure 6)
//!
//! Models the path from a streaming multiprocessor to one channel's
//! memory controller:
//!
//! ```text
//! SM → interconnect queue (120 core cycles)
//!    → L2 slice: 2 sub-partitions (divergence point #1, PIM bypasses)
//!    → L2-to-DRAM queue (100 core cycles)
//!    → memory controller
//! ```
//!
//! plus the response path back up (load data, fence acks). Ordering
//! markers are copied onto both L2 sub-partitions and merged at the
//! slice's exit with the copy-and-merge FSM of [`orderlight::fsm`];
//! requests that follow a marker copy in a sub-partition are not allowed
//! past the convergence point until all copies have merged.
//!
//! PIM requests behave like non-temporal accesses: they bypass the cache
//! arrays and only traverse the queues (paper Section 5.3.2, "Caches").
//! Host streaming traffic is modelled the same way — the evaluated
//! workloads are single-pass streams with no reuse, so an L2 data array
//! would only add a constant latency already folded into the queue
//! latencies.

pub mod delay_queue;
pub mod l2;
pub mod pipe;

pub use delay_queue::DelayQueue;
pub use l2::L2Slice;
pub use pipe::{MemoryPipe, PipeConfig};
