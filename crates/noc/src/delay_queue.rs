//! A bounded FIFO queue with a fixed traversal latency.

use orderlight::rng::Rng;
use orderlight::types::CoreCycle;
use orderlight::NextEvent;
use std::collections::VecDeque;

/// A FIFO whose items become visible `latency` cycles after being pushed.
///
/// Models a pipelined queue segment of the memory pipe: items preserve
/// order, at most `capacity` are in flight, and the head can only be
/// popped once its latency has elapsed (downstream backpressure leaves it
/// in place).
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    items: VecDeque<(CoreCycle, T)>,
    latency: CoreCycle,
    capacity: usize,
    /// Fault injection: each push draws `0..=max_extra` extra cycles
    /// added to the item's ready stamp. FIFO order is untouched, so this
    /// only *delays* traffic — a legal perturbation.
    jitter: Option<(Rng, u64)>,
}

impl<T> DelayQueue<T> {
    /// Creates a queue with the given traversal `latency` and `capacity`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(latency: CoreCycle, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        DelayQueue { items: VecDeque::new(), latency, capacity, jitter: None }
    }

    /// Enables seeded traversal jitter: every subsequent push adds a
    /// uniform `0..=max_extra` cycles to the item's ready stamp.
    pub fn set_jitter(&mut self, seed: u64, max_extra: u64) {
        self.jitter = Some((Rng::new(seed), max_extra));
    }

    /// Whether another item can be pushed.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// Number of items in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The traversal latency.
    #[must_use]
    pub fn latency(&self) -> CoreCycle {
        self.latency
    }

    /// Pushes an item at time `now`; it becomes poppable at
    /// `now + latency`.
    ///
    /// # Panics
    /// Panics if the queue is full — check [`has_space`](Self::has_space)
    /// first; the pipe applies backpressure upstream.
    pub fn push(&mut self, item: T, now: CoreCycle) {
        assert!(self.has_space(), "delay queue overflow");
        let extra = match &mut self.jitter {
            Some((rng, max_extra)) => rng.gen_range(*max_extra + 1),
            None => 0,
        };
        // Saturating: a ready deadline past `u64::MAX` clamps to
        // "never" instead of wrapping behind `now`, where the event
        // core would treat the head as already due.
        self.items.push_back((now.saturating_add(self.latency).saturating_add(extra), item));
    }

    /// Peeks at the head if its latency has elapsed.
    #[must_use]
    pub fn peek_ready(&self, now: CoreCycle) -> Option<&T> {
        match self.items.front() {
            Some((ready, item)) if *ready <= now => Some(item),
            _ => None,
        }
    }

    /// Pops the head if its latency has elapsed.
    pub fn pop_ready(&mut self, now: CoreCycle) -> Option<T> {
        if self.peek_ready(now).is_some() {
            self.items.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// The cycle the head item becomes (or became) poppable, if any.
    /// Items behind the head never matter: FIFO order means the head's
    /// deadline is the queue's earliest possible state change.
    #[must_use]
    pub fn next_ready(&self) -> Option<CoreCycle> {
        self.items.front().map(|(ready, _)| *ready)
    }
}

/// Quiescence horizon of a delay queue: the head's ready deadline
/// (clamped to `now` — an already-ready head is consumable immediately,
/// the queue cannot know whether downstream will take it). Empty means
/// drained.
impl<T> NextEvent for DelayQueue<T> {
    fn next_event(&self, now: u64) -> Option<u64> {
        self.next_ready().map(|ready| ready.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_appear_after_latency_in_order() {
        let mut q = DelayQueue::new(10, 4);
        q.push('a', 0);
        q.push('b', 3);
        assert_eq!(q.peek_ready(9), None);
        assert_eq!(q.pop_ready(10), Some('a'));
        assert_eq!(q.pop_ready(10), None, "b not ready until 13");
        assert_eq!(q.pop_ready(13), Some('b'));
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut q = DelayQueue::new(1, 2);
        assert!(q.has_space());
        q.push(1, 0);
        q.push(2, 0);
        assert!(!q.has_space());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn head_of_line_blocking_preserves_order() {
        // Even if the second item's latency elapsed, it cannot pass the
        // unpopped head.
        let mut q = DelayQueue::new(5, 4);
        q.push(1, 0);
        q.push(2, 0);
        assert_eq!(q.pop_ready(100), Some(1));
        assert_eq!(q.pop_ready(100), Some(2));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = DelayQueue::new(1, 1);
        q.push(1, 0);
        q.push(2, 0);
    }

    #[test]
    fn zero_latency_is_immediate() {
        let mut q = DelayQueue::new(0, 1);
        q.push(7, 42);
        assert_eq!(q.pop_ready(42), Some(7));
    }

    #[test]
    fn ready_deadline_saturates_near_u64_max() {
        let mut q = DelayQueue::new(4, 2);
        let now = u64::MAX - 1;
        q.push('a', now);
        // The deadline clamps to "never" instead of wrapping behind
        // `now`, which would make the head appear already ready.
        assert_eq!(q.next_ready(), Some(u64::MAX));
        assert!(q.peek_ready(now).is_none());
        assert_eq!(q.next_event(now), Some(u64::MAX));
    }
}
