//! One channel's end-to-end memory pipe: interconnect queue, L2 slice,
//! L2-to-DRAM queue, and the response path.

use crate::delay_queue::DelayQueue;
use crate::l2::L2Slice;
use orderlight::message::{MemReq, MemResp};
use orderlight::slab::{Slab, SlabRef};
use orderlight::types::CoreCycle;
use orderlight::{min_horizon, NextEvent};
use orderlight_trace::{sink::nop_sink, SharedSink, TraceEvent};

/// Core-cycle stride between [`TraceEvent::PipeSample`] occupancy
/// samples (matches the controller's queue-sample stride).
const SAMPLE_STRIDE: u64 = 64;

/// Memory-pipe latencies and capacities (core-clock cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeConfig {
    /// SM-to-L2 interconnect latency (Table 1: 120 cycles).
    pub icnt_latency: CoreCycle,
    /// Interconnect queue capacity.
    pub icnt_capacity: usize,
    /// L2 sub-partition queue latency.
    pub sub_latency: CoreCycle,
    /// L2 sub-partition queue capacity (Table 1: L2 queue size 64,
    /// split across two sub-partitions).
    pub sub_capacity: usize,
    /// L2-to-DRAM-scheduler latency (Table 1: 100 cycles).
    pub l2_out_latency: CoreCycle,
    /// L2-to-DRAM queue capacity.
    pub l2_out_capacity: usize,
    /// Response-path latency back to the SM (the downward latencies in
    /// reverse).
    pub return_latency: CoreCycle,
    /// Response-path capacity.
    pub return_capacity: usize,
    /// Acknowledge fence probes at the L2 slice exit (the global
    /// serialization point) instead of at the controller — the
    /// *insufficient* baseline fence of paper Section 4.3. Off by
    /// default.
    pub fence_ack_at_l2: bool,
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig {
            icnt_latency: 120,
            icnt_capacity: 64,
            sub_latency: 4,
            sub_capacity: 32,
            l2_out_latency: 100,
            l2_out_capacity: 64,
            return_latency: 220,
            return_capacity: 1024,
            fence_ack_at_l2: false,
        }
    }
}

/// One memory channel's pipe between the SMs and its memory controller.
///
/// # Example
///
/// ```
/// use orderlight::message::{MemReq, ReqMeta};
/// use orderlight::types::{Addr, GlobalWarpId, MemGroupId, TsSlot};
/// use orderlight::{PimInstruction, PimOp};
/// use orderlight_noc::{MemoryPipe, PipeConfig};
///
/// let cfg = PipeConfig::default();
/// let mut pipe = MemoryPipe::new(&cfg);
/// pipe.push_request(
///     MemReq::Pim {
///         instr: PimInstruction {
///             op: PimOp::Load,
///             addr: Addr(0),
///             slot: TsSlot(0),
///             group: MemGroupId(0),
///         },
///         meta: ReqMeta { warp: GlobalWarpId::new(0, 0), seq: 0 },
///     },
///     0,
/// );
/// let mut now = 0;
/// loop {
///     pipe.tick(now);
///     if let Some(req) = pipe.pop_mc(now) {
///         assert!(req.is_pim());
///         break;
///     }
///     now += 1;
/// }
/// // It took roughly the interconnect + L2 + scheduler latencies.
/// assert!(now >= cfg.icnt_latency + cfg.l2_out_latency);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryPipe {
    /// Packet bodies for everything in `icnt`, the L2 slice and `out`.
    /// The request-path queues move [`SlabRef`] handles; a body is
    /// inserted once at [`push_request`](Self::push_request) and removed
    /// once at [`pop_mc`](Self::pop_mc) (markers additionally
    /// diverge/converge inside the L2 slice).
    arena: Slab<MemReq>,
    icnt: DelayQueue<SlabRef>,
    l2: L2Slice,
    out: DelayQueue<SlabRef>,
    ret: DelayQueue<MemResp>,
    sink: SharedSink,
    channel_id: u8,
}

impl MemoryPipe {
    /// Creates a pipe with the given configuration.
    #[must_use]
    pub fn new(cfg: &PipeConfig) -> Self {
        MemoryPipe {
            arena: Slab::with_capacity(cfg.icnt_capacity + cfg.l2_out_capacity),
            icnt: DelayQueue::new(cfg.icnt_latency, cfg.icnt_capacity),
            l2: L2Slice::with_fence_ack(cfg.sub_latency, cfg.sub_capacity, cfg.fence_ack_at_l2),
            out: DelayQueue::new(cfg.l2_out_latency, cfg.l2_out_capacity),
            ret: DelayQueue::new(cfg.return_latency, cfg.return_capacity),
            sink: nop_sink(),
            channel_id: 0,
        }
    }

    /// Attaches a trace sink stamping this pipe's occupancy samples
    /// with `channel`. Sinks only observe; attaching one never changes
    /// pipe behaviour.
    pub fn set_sink(&mut self, sink: SharedSink, channel: u8) {
        self.sink = sink;
        self.channel_id = channel;
    }

    /// Enables seeded traversal jitter (fault injection) on the request
    /// path: pushes into the interconnect and L2-to-DRAM queues each
    /// draw up to `max_extra` extra cycles. FIFO order within each queue
    /// is preserved, so requests are only delayed, never reordered past
    /// markers — the perturbation is schedule-legal.
    pub fn set_jitter(&mut self, seed: u64, max_extra: u64) {
        let mut split = orderlight::rng::Rng::new(seed);
        self.icnt.set_jitter(split.next_u64(), max_extra);
        self.out.set_jitter(split.next_u64(), max_extra);
    }

    /// Whether a request can enter the pipe this cycle.
    #[must_use]
    pub fn can_push(&self) -> bool {
        self.icnt.has_space()
    }

    /// Injects a request at the SM end.
    ///
    /// # Panics
    /// Panics if [`can_push`](Self::can_push) is false.
    pub fn push_request(&mut self, req: MemReq, now: CoreCycle) {
        let handle = self.arena.insert(req);
        self.icnt.push(handle, now);
    }

    /// Advances the pipe's internal stages one core cycle.
    pub fn tick(&mut self, now: CoreCycle) {
        if self.sink.is_enabled() && now.is_multiple_of(SAMPLE_STRIDE) {
            self.sink.emit(TraceEvent::PipeSample {
                cycle: now,
                channel: self.channel_id,
                in_flight: (self.icnt.len() + self.l2.len() + self.out.len()) as u32,
                returning: self.ret.len() as u32,
            });
        }
        // Interconnect head into the L2 slice.
        if let Some(&head) = self.icnt.peek_ready(now) {
            if self.l2.can_accept(self.arena.get(head)) {
                let handle = self.icnt.pop_ready(now).expect("peeked ready");
                self.l2.push(handle, &mut self.arena, now);
            }
        }
        // L2 sub-partitions into the L2-to-DRAM queue (copy-and-merge
        // happens inside).
        self.l2.tick(now, &mut self.out, &mut self.arena);
        // L2-level fence acknowledgements (only in the insufficient
        // fence-scope ablation) go straight onto the response path.
        for (warp, fence_id) in self.l2.take_acks() {
            self.ret.push(MemResp::FenceAck { warp, fence_id }, now);
        }
    }

    /// Peeks at the request ready to enter the memory controller.
    #[must_use]
    pub fn peek_mc(&self, now: CoreCycle) -> Option<&MemReq> {
        self.out.peek_ready(now).map(|&r| self.arena.get(r))
    }

    /// Pops the request ready to enter the memory controller, retiring
    /// its body from the arena.
    pub fn pop_mc(&mut self, now: CoreCycle) -> Option<MemReq> {
        self.out.pop_ready(now).map(|r| self.arena.remove(r))
    }

    /// Injects a response at the controller end.
    pub fn push_response(&mut self, resp: MemResp, now: CoreCycle) {
        // The response path is sized generously; if it ever fills we drop
        // to a panic rather than silently losing a response.
        self.ret.push(resp, now);
    }

    /// Pops a response ready to be delivered to its SM.
    pub fn pop_response(&mut self, now: CoreCycle) -> Option<MemResp> {
        self.ret.pop_ready(now)
    }

    /// Whether the pipe holds no traffic in either direction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.icnt.is_empty() && self.l2.is_empty() && self.out.is_empty() && self.ret.is_empty()
    }

    /// Marker merges completed at the L2 slice exit.
    #[must_use]
    pub fn l2_merges(&self) -> u64 {
        self.l2.merges()
    }

    /// Advances the pipe across a quiescent window of `span` cycles
    /// (one in which [`tick`](Self::tick) would move no traffic). The
    /// delay queues store absolute ready stamps, so only the L2 slice's
    /// round-robin pointer needs closed-form advancement.
    ///
    /// With a live sink attached the window's occupancy samples are
    /// synthesized here: the dense loop emits a
    /// [`TraceEvent::PipeSample`] at every `SAMPLE_STRIDE` boundary,
    /// and a quiescent window moves no traffic, so every sample inside
    /// `[now, now + span)` carries the occupancies frozen at `now` —
    /// the event core's sample stream is byte-identical to the dense
    /// core's.
    pub fn skip_quiescent(&mut self, now: CoreCycle, span: u64) {
        if self.sink.is_enabled() {
            let in_flight = (self.icnt.len() + self.l2.len() + self.out.len()) as u32;
            let returning = self.ret.len() as u32;
            let mut cycle = now.next_multiple_of(SAMPLE_STRIDE);
            while cycle < now + span {
                self.sink.emit(TraceEvent::PipeSample {
                    cycle,
                    channel: self.channel_id,
                    in_flight,
                    returning,
                });
                cycle += SAMPLE_STRIDE;
            }
        }
        self.l2.skip_quiescent(now, span, &self.arena);
    }
}

/// Quiescence horizon of the whole pipe. `Some(now)` when any internal
/// transfer could happen this cycle (interconnect head into a willing
/// L2, an L2 merge or forward into a non-full out queue); otherwise the
/// earliest head deadline among the stage queues. The L2-out and
/// response heads are clamped to `now`: a ready out head is either
/// consumable by the controller (the system pairs `peek_mc` with
/// `can_accept`) or the controller is active and forces dense ticking
/// anyway, and a ready response head is always deliverable.
impl NextEvent for MemoryPipe {
    fn next_event(&self, now: u64) -> Option<u64> {
        let mut h = None;
        match self.icnt.peek_ready(now) {
            Some(&head) if self.l2.can_accept(self.arena.get(head)) => return Some(now),
            // Ready but blocked: the sub-partition that refuses it is
            // non-empty, so its own head deadline covers the unblocking.
            Some(_) => {}
            None => h = min_horizon(h, self.icnt.next_ready()),
        }
        h = min_horizon(h, self.l2.next_event(now, &self.out, &self.arena));
        h = min_horizon(h, self.out.next_ready().map(|r| r.max(now)));
        h = min_horizon(h, self.ret.next_ready().map(|r| r.max(now)));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::message::{Marker, MarkerCopy, ReqMeta};
    use orderlight::packet::OrderLightPacket;
    use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
    use orderlight::{PimInstruction, PimOp};

    fn pim(addr: u64, seq: u64) -> MemReq {
        MemReq::Pim {
            instr: PimInstruction {
                op: PimOp::Load,
                addr: Addr(addr),
                slot: TsSlot(0),
                group: MemGroupId(0),
            },
            meta: ReqMeta { warp: GlobalWarpId(0), seq },
        }
    }

    #[test]
    fn end_to_end_latency_is_sum_of_stages() {
        let cfg = PipeConfig::default();
        let mut pipe = MemoryPipe::new(&cfg);
        pipe.push_request(pim(0, 0), 0);
        let mut now = 0;
        loop {
            pipe.tick(now);
            if pipe.peek_mc(now).is_some() {
                break;
            }
            now += 1;
            assert!(now < 1000, "request never surfaced");
        }
        // 120 (icnt) + 4 (sub-partition) + 100 (L2-to-DRAM) plus a couple
        // of transfer cycles.
        let expected = cfg.icnt_latency + cfg.sub_latency + cfg.l2_out_latency;
        assert!(
            (now as i64 - expected as i64).unsigned_abs() <= 2,
            "latency {now} vs expected {expected}"
        );
    }

    #[test]
    fn responses_take_the_return_latency() {
        let cfg = PipeConfig::default();
        let mut pipe = MemoryPipe::new(&cfg);
        let resp = MemResp::FenceAck { warp: GlobalWarpId(0), fence_id: 1 };
        pipe.push_response(resp, 100);
        assert!(pipe.pop_response(100 + cfg.return_latency - 1).is_none());
        assert_eq!(pipe.pop_response(100 + cfg.return_latency), Some(resp));
    }

    #[test]
    fn marker_survives_the_full_pipe() {
        let cfg = PipeConfig::default();
        let mut pipe = MemoryPipe::new(&cfg);
        pipe.push_request(pim(0, 0), 0);
        pipe.push_request(
            MemReq::Marker(MarkerCopy {
                marker: Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), 1)),
                total_copies: 1,
            }),
            0,
        );
        pipe.push_request(pim(32, 1), 0);
        let mut got = Vec::new();
        for now in 0..2000 {
            pipe.tick(now);
            while let Some(r) = pipe.pop_mc(now) {
                got.push(r);
            }
        }
        assert_eq!(got.len(), 3);
        assert!(matches!(&got[0], MemReq::Pim { meta, .. } if meta.seq == 0));
        assert!(matches!(&got[1], MemReq::Marker(_)), "marker preserved in order");
        assert!(matches!(&got[2], MemReq::Pim { meta, .. } if meta.seq == 1));
        assert!(pipe.is_empty());
        assert_eq!(pipe.l2_merges(), 1);
    }

    #[test]
    fn backpressure_reported_at_entry() {
        let cfg = PipeConfig { icnt_capacity: 2, ..PipeConfig::default() };
        let mut pipe = MemoryPipe::new(&cfg);
        pipe.push_request(pim(0, 0), 0);
        pipe.push_request(pim(32, 1), 0);
        assert!(!pipe.can_push());
    }
}
