//! Randomized tests of the memory pipe's ordering contract: markers
//! never reorder against anything; requests never reorder against
//! markers; every item is delivered exactly once.
//!
//! Inputs come from the in-tree deterministic PRNG
//! ([`orderlight::rng::Rng`]) so every run exercises the same cases.

use orderlight::message::{Marker, MarkerCopy, MemReq, ReqMeta};
use orderlight::packet::OrderLightPacket;
use orderlight::rng::Rng;
use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
use orderlight::{PimInstruction, PimOp};
use orderlight_noc::{MemoryPipe, PipeConfig};

#[derive(Debug, Clone, Copy)]
enum Item {
    /// A PIM request; the payload picks the stripe (and therefore the
    /// L2 sub-partition).
    Req(u8),
    Marker,
}

/// Weighted draw matching the old proptest strategy: 4:1 request:marker.
fn item(rng: &mut Rng) -> Item {
    if rng.gen_bool(4, 5) {
        Item::Req(rng.gen_range(8) as u8)
    } else {
        Item::Marker
    }
}

#[test]
fn pipe_ordering_contract() {
    let mut rng = Rng::new(0x90c0);
    for case in 0..64 {
        let len = 1 + rng.gen_index(79);
        let items: Vec<Item> = (0..len).map(|_| item(&mut rng)).collect();
        let mut pipe = MemoryPipe::new(&PipeConfig::default());
        // Tag every item with its input index via the request seq /
        // packet number.
        let mut input = Vec::new();
        for (i, it) in items.iter().enumerate() {
            let req = match it {
                Item::Req(stripe) => MemReq::Pim {
                    instr: PimInstruction {
                        op: PimOp::Load,
                        addr: Addr(u64::from(*stripe) * 32),
                        slot: TsSlot(0),
                        group: MemGroupId(0),
                    },
                    meta: ReqMeta { warp: GlobalWarpId(0), seq: i as u64 },
                },
                Item::Marker => MemReq::Marker(MarkerCopy {
                    marker: Marker::OrderLight(OrderLightPacket::new(
                        ChannelId(0),
                        MemGroupId(0),
                        i as u32,
                    )),
                    total_copies: 1,
                }),
            };
            input.push(req);
        }
        // Feed with backpressure, drain continuously.
        let mut fed = input.clone().into_iter().peekable();
        let mut out: Vec<MemReq> = Vec::new();
        let mut now = 0u64;
        while out.len() < input.len() {
            if fed.peek().is_some() && pipe.can_push() {
                pipe.push_request(fed.next().expect("peeked"), now);
            }
            pipe.tick(now);
            while let Some(r) = pipe.pop_mc(now) {
                out.push(r);
            }
            now += 1;
            assert!(now < 500_000, "case {case}: pipe wedged");
        }
        assert!(pipe.is_empty());

        // Index of each output item in the input.
        let idx_of = |r: &MemReq| -> usize {
            match r {
                MemReq::Pim { meta, .. } => meta.seq as usize,
                MemReq::Marker(c) => match &c.marker {
                    Marker::OrderLight(p) | Marker::Release(p) => p.number() as usize,
                    Marker::FenceProbe { .. } => unreachable!(),
                },
                _ => unreachable!(),
            }
        };
        let out_idx: Vec<usize> = out.iter().map(idx_of).collect();
        // Exactly once.
        let mut sorted = out_idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..input.len()).collect::<Vec<_>>());
        // Markers are total-order barriers: for every marker at input
        // position m, everything before m leaves before it, everything
        // after m leaves after it.
        for (pos, r) in out.iter().enumerate() {
            if matches!(r, MemReq::Marker(_)) {
                let m = idx_of(r);
                for (other_pos, other) in out.iter().enumerate() {
                    let o = idx_of(other);
                    if o < m {
                        assert!(other_pos < pos, "case {case}: item {o} leaked past marker {m}");
                    } else if o > m {
                        assert!(other_pos > pos, "case {case}: item {o} overtook marker {m}");
                    }
                }
            }
        }
        // Same-sub-partition requests preserve relative order.
        for sub in 0..2u64 {
            let mine: Vec<usize> = out
                .iter()
                .filter_map(|r| match r {
                    MemReq::Pim { instr, meta } if instr.addr.0 / 32 % 2 == sub => {
                        Some(meta.seq as usize)
                    }
                    _ => None,
                })
                .collect();
            assert!(
                mine.windows(2).all(|w| w[0] < w[1]),
                "case {case}: sub-partition {sub} reordered"
            );
        }
    }
}
