//! Randomized tests of the SM issue logic: for any random kernel
//! stream, the LDST queue emits requests and ordering markers in exact
//! program order, fences stall until acknowledged, and everything
//! eventually issues.
//!
//! Inputs are generated with the in-tree deterministic PRNG
//! ([`orderlight::rng::Rng`]) so every run exercises the same cases.

use orderlight::isa::OrderingInstr;
use orderlight::message::{Marker, MemReq, MemResp};
use orderlight::rng::Rng;
use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
use orderlight::{KernelInstr, PimInstruction, PimOp, VecStream};
use orderlight_gpu::{Sm, SmConfig, Warp};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Pim,
    OrderLight,
    Fence,
}

/// Weighted draw matching the old proptest strategy: 5:2:1.
fn step(rng: &mut Rng) -> Step {
    match rng.gen_range(8) {
        0..=4 => Step::Pim,
        5 | 6 => Step::OrderLight,
        _ => Step::Fence,
    }
}

/// The in-band order of PIM requests and ordering markers leaving the
/// LDST queue equals program order, for any program shape; every fence
/// is stalled on until its acknowledgement arrives (we play the memory
/// and ack after a fixed delay).
#[test]
fn ldst_output_preserves_program_order() {
    let mut rng = Rng::new(0x5e01);
    for case in 0..64 {
        let len = 1 + rng.gen_index(59);
        let steps: Vec<Step> = (0..len).map(|_| step(&mut rng)).collect();
        let mut program = Vec::new();
        for (i, s) in steps.iter().enumerate() {
            program.push(match s {
                Step::Pim => KernelInstr::Pim(PimInstruction {
                    op: PimOp::Load,
                    addr: Addr(i as u64 * 32),
                    slot: TsSlot(0),
                    group: MemGroupId(0),
                }),
                Step::OrderLight => {
                    KernelInstr::Ordering(OrderingInstr::OrderLight { group: MemGroupId(0) })
                }
                Step::Fence => KernelInstr::Ordering(OrderingInstr::Fence),
            });
        }
        let warp = Warp::new(
            GlobalWarpId::new(0, 0),
            ChannelId(0),
            Box::new(VecStream::new(program.clone())),
        );
        let mut sm = Sm::new(SmConfig::default(), vec![warp]);
        let mut out = Vec::new();
        let mut pending_acks: Vec<(u64, u64)> = Vec::new(); // (deliver_at, fence_id)
        let mut now = 0u64;
        while !sm.is_done() {
            sm.tick(now);
            while let Some(req) = sm.pop_ldst() {
                if let MemReq::Marker(c) = &req {
                    if let Marker::FenceProbe { fence_id, .. } = c.marker {
                        pending_acks.push((now + 50, fence_id));
                    }
                }
                out.push(req);
            }
            pending_acks.retain(|(at, fence_id)| {
                if *at <= now {
                    sm.deliver(MemResp::FenceAck {
                        warp: GlobalWarpId::new(0, 0),
                        fence_id: *fence_id,
                    });
                    false
                } else {
                    true
                }
            });
            now += 1;
            assert!(now < 200_000, "case {case}: SM wedged");
        }
        assert_eq!(out.len(), program.len(), "case {case}: every instruction reaches the pipe");
        // Exact order preservation: classify both sequences.
        for (req, instr) in out.iter().zip(&program) {
            let matches = match (req, instr) {
                (MemReq::Pim { instr: p, .. }, KernelInstr::Pim(q)) => p == q,
                (MemReq::Marker(c), KernelInstr::Ordering(OrderingInstr::OrderLight { .. })) => {
                    matches!(c.marker, Marker::OrderLight(_))
                }
                (MemReq::Marker(c), KernelInstr::Ordering(OrderingInstr::Fence)) => {
                    matches!(c.marker, Marker::FenceProbe { .. })
                }
                _ => false,
            };
            assert!(matches, "case {case}: order diverged: {req:?} vs {instr:?}");
        }
        // Stall accounting: fences cost real cycles, OrderLight a few.
        let stats = sm.stats();
        let fences = steps.iter().filter(|s| matches!(s, Step::Fence)).count() as u64;
        assert_eq!(stats.fences, fences);
        if fences > 0 {
            assert!(
                stats.fence_stall_cycles >= fences * 40,
                "case {case}: each fence waits the ack delay"
            );
        }
    }
}

/// OrderLight packet numbers increase monotonically per group in the
/// emitted stream.
#[test]
fn packet_numbers_are_monotonic() {
    let mut rng = Rng::new(0x5e02);
    for case in 0..32 {
        let n = 1 + rng.gen_index(29);
        let mut program = Vec::new();
        for i in 0..n {
            program.push(KernelInstr::Pim(PimInstruction {
                op: PimOp::Load,
                addr: Addr(i as u64 * 32),
                slot: TsSlot(0),
                group: MemGroupId(0),
            }));
            program.push(KernelInstr::Ordering(OrderingInstr::OrderLight { group: MemGroupId(0) }));
        }
        let warp =
            Warp::new(GlobalWarpId::new(0, 0), ChannelId(3), Box::new(VecStream::new(program)));
        let mut sm = Sm::new(SmConfig::default(), vec![warp]);
        let mut numbers = Vec::new();
        let mut now = 0;
        while !sm.is_done() {
            sm.tick(now);
            while let Some(req) = sm.pop_ldst() {
                if let MemReq::Marker(c) = req {
                    if let Marker::OrderLight(p) = c.marker {
                        assert_eq!(
                            p.channel(),
                            ChannelId(3),
                            "case {case}: packet routed to the warp's channel"
                        );
                        numbers.push(p.number());
                    }
                }
            }
            now += 1;
            assert!(now < 100_000, "case {case}: SM wedged");
        }
        assert_eq!(numbers.len(), n);
        assert!(numbers.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
