//! Property-based tests of the SM issue logic: for any random kernel
//! stream, the LDST queue emits requests and ordering markers in exact
//! program order, fences stall until acknowledged, and everything
//! eventually issues.

use orderlight::isa::OrderingInstr;
use orderlight::message::{Marker, MemReq, MemResp};
use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
use orderlight::{KernelInstr, PimInstruction, PimOp, VecStream};
use orderlight_gpu::{Sm, SmConfig, Warp};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    Pim,
    OrderLight,
    Fence,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => Just(Step::Pim),
        2 => Just(Step::OrderLight),
        1 => Just(Step::Fence),
    ]
}

proptest! {
    /// The in-band order of PIM requests and ordering markers leaving
    /// the LDST queue equals program order, for any program shape; every
    /// fence is stalled on until its acknowledgement arrives (we play
    /// the memory and ack after a fixed delay).
    #[test]
    fn ldst_output_preserves_program_order(steps in proptest::collection::vec(step(), 1..60)) {
        let mut program = Vec::new();
        for (i, s) in steps.iter().enumerate() {
            program.push(match s {
                Step::Pim => KernelInstr::Pim(PimInstruction {
                    op: PimOp::Load,
                    addr: Addr(i as u64 * 32),
                    slot: TsSlot(0),
                    group: MemGroupId(0),
                }),
                Step::OrderLight => {
                    KernelInstr::Ordering(OrderingInstr::OrderLight { group: MemGroupId(0) })
                }
                Step::Fence => KernelInstr::Ordering(OrderingInstr::Fence),
            });
        }
        let warp = Warp::new(
            GlobalWarpId::new(0, 0),
            ChannelId(0),
            Box::new(VecStream::new(program.clone())),
        );
        let mut sm = Sm::new(SmConfig::default(), vec![warp]);
        let mut out = Vec::new();
        let mut pending_acks: Vec<(u64, u64)> = Vec::new(); // (deliver_at, fence_id)
        let mut now = 0u64;
        while !sm.is_done() {
            sm.tick(now);
            while let Some(req) = sm.pop_ldst() {
                if let MemReq::Marker(c) = &req {
                    if let Marker::FenceProbe { fence_id, .. } = c.marker {
                        pending_acks.push((now + 50, fence_id));
                    }
                }
                out.push(req);
            }
            pending_acks.retain(|(at, fence_id)| {
                if *at <= now {
                    sm.deliver(MemResp::FenceAck {
                        warp: GlobalWarpId::new(0, 0),
                        fence_id: *fence_id,
                    });
                    false
                } else {
                    true
                }
            });
            now += 1;
            prop_assert!(now < 200_000, "SM wedged");
        }
        prop_assert_eq!(out.len(), program.len(), "every instruction reaches the pipe");
        // Exact order preservation: classify both sequences.
        for (req, instr) in out.iter().zip(&program) {
            let matches = match (req, instr) {
                (MemReq::Pim { instr: p, .. }, KernelInstr::Pim(q)) => p == q,
                (MemReq::Marker(c), KernelInstr::Ordering(OrderingInstr::OrderLight { .. })) => {
                    matches!(c.marker, Marker::OrderLight(_))
                }
                (MemReq::Marker(c), KernelInstr::Ordering(OrderingInstr::Fence)) => {
                    matches!(c.marker, Marker::FenceProbe { .. })
                }
                _ => false,
            };
            prop_assert!(matches, "order diverged: {:?} vs {:?}", req, instr);
        }
        // Stall accounting: fences cost real cycles, OrderLight a few.
        let stats = sm.stats();
        let fences = steps.iter().filter(|s| matches!(s, Step::Fence)).count() as u64;
        prop_assert_eq!(stats.fences, fences);
        if fences > 0 {
            prop_assert!(stats.fence_stall_cycles >= fences * 40, "each fence waits the ack delay");
        }
    }

    /// OrderLight packet numbers increase monotonically per group in the
    /// emitted stream.
    #[test]
    fn packet_numbers_are_monotonic(n in 1usize..30) {
        let mut program = Vec::new();
        for i in 0..n {
            program.push(KernelInstr::Pim(PimInstruction {
                op: PimOp::Load,
                addr: Addr(i as u64 * 32),
                slot: TsSlot(0),
                group: MemGroupId(0),
            }));
            program.push(KernelInstr::Ordering(OrderingInstr::OrderLight {
                group: MemGroupId(0),
            }));
        }
        let warp = Warp::new(
            GlobalWarpId::new(0, 0),
            ChannelId(3),
            Box::new(VecStream::new(program)),
        );
        let mut sm = Sm::new(SmConfig::default(), vec![warp]);
        let mut numbers = Vec::new();
        let mut now = 0;
        while !sm.is_done() {
            sm.tick(now);
            while let Some(req) = sm.pop_ldst() {
                if let MemReq::Marker(c) = req {
                    if let Marker::OrderLight(p) = c.marker {
                        prop_assert_eq!(p.channel(), ChannelId(3), "packet routed to the warp's channel");
                        numbers.push(p.number());
                    }
                }
            }
            now += 1;
            prop_assert!(now < 100_000);
        }
        prop_assert_eq!(numbers.len(), n);
        prop_assert!(numbers.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
