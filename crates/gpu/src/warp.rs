//! Warp state: the program stream, SIMD registers with a pending-load
//! scoreboard, and ordering-primitive counters.
//!
//! The state is split in two so the SM can hold it struct-of-arrays:
//!
//! * [`WarpCore`] — the cold bulk (program stream, register file,
//!   sequence/fence/packet counters), touched only when an instruction
//!   actually issues or data arrives;
//! * the hot scheduler triple — [`WarpState`], the fetched head
//!   instruction, and the pending-register mask — which the SM stores
//!   in parallel vectors so its every-cycle ready-warp scan walks
//!   contiguous memory instead of chasing one `Box` per warp.
//!
//! [`Warp`] glues the two back together for standalone use (unit tests,
//! construction); [`Warp::into_parts`] hands the pieces to the SM.

use orderlight::types::{ChannelId, GlobalWarpId, MemGroupId, Stripe};
use orderlight::{InstrStream, KernelInstr};
use std::fmt;

/// Number of architectural registers modelled per warp.
pub const NUM_REGS: usize = 64;

/// Scheduling state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// May issue instructions.
    Ready,
    /// Stalled at a fence, waiting for the controller's acknowledgement.
    WaitFence {
        /// The fence id the acknowledgement must carry.
        fence_id: u64,
    },
    /// Program exhausted.
    Done,
}

/// Whether `reg` has an outstanding load in the scoreboard mask.
#[must_use]
pub fn reg_is_pending(pending: u64, reg: orderlight::Reg) -> bool {
    pending & (1 << u32::from(reg.0)) != 0
}

/// Marks `reg` as awaiting load data in the scoreboard mask.
///
/// # Panics
/// Panics if `reg` is out of range.
pub fn mark_reg_pending(pending: &mut u64, reg: orderlight::Reg) {
    assert!((reg.0 as usize) < NUM_REGS, "register {reg} out of range");
    *pending |= 1 << u32::from(reg.0);
}

/// The cold bulk of a warp: program stream, register file, and the
/// monotonic sequence/fence/packet counters. The hot scheduler fields
/// (state, fetched head, pending mask) live outside — in [`Warp`] for
/// standalone use, or in the SM's parallel vectors — and are passed in
/// by reference to the methods that transition them.
pub struct WarpCore {
    id: GlobalWarpId,
    channel: ChannelId,
    program: Box<dyn InstrStream>,
    exhausted: bool,
    regs: Box<[Stripe; NUM_REGS]>,
    seq: u64,
    fence_counter: u64,
    ol_numbers: [u32; 16],
    release_versions: [u32; 16],
}

impl WarpCore {
    /// The warp's global identifier.
    #[must_use]
    pub fn id(&self) -> GlobalWarpId {
        self.id
    }

    /// The memory channel this warp drives.
    #[must_use]
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// Whether the program stream has returned its last instruction.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// The instruction at the head of the stream, fetching into `cur`
    /// lazily. Transitions `state` to [`WarpState::Done`] when the
    /// stream ends.
    pub fn fetch(
        &mut self,
        cur: &mut Option<KernelInstr>,
        state: &mut WarpState,
    ) -> Option<KernelInstr> {
        if cur.is_none() && !self.exhausted {
            *cur = self.program.next_instr();
            if cur.is_none() {
                self.exhausted = true;
                if *state == WarpState::Ready {
                    *state = WarpState::Done;
                }
            }
        }
        *cur
    }

    /// Consumes the current instruction after a successful issue.
    ///
    /// # Panics
    /// Panics if there is no current instruction.
    pub fn advance(&mut self, cur: &mut Option<KernelInstr>, state: &mut WarpState) {
        assert!(cur.take().is_some(), "advance without a current instruction");
        // Prefetch so `Done` is observed promptly.
        let _ = self.fetch(cur, state);
    }

    /// Blocks the warp at a fence; returns the fence id for the probe.
    pub fn enter_fence(&mut self, state: &mut WarpState) -> u64 {
        self.fence_counter += 1;
        *state = WarpState::WaitFence { fence_id: self.fence_counter };
        self.fence_counter
    }

    /// Delivers a fence acknowledgement; returns whether it unblocked
    /// the warp. `head_empty` is whether the fetched head slot is empty
    /// (an exhausted stream with no head goes straight to `Done`).
    pub fn fence_ack(&mut self, fence_id: u64, head_empty: bool, state: &mut WarpState) -> bool {
        if *state == (WarpState::WaitFence { fence_id }) {
            *state = if self.exhausted && head_empty { WarpState::Done } else { WarpState::Ready };
            true
        } else {
            false
        }
    }

    /// Next per-warp request sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Next OrderLight packet number for `group` (paper Figure 8's
    /// per-channel, per-memory-group packet number).
    pub fn next_ol_number(&mut self, group: MemGroupId) -> u32 {
        let n = &mut self.ol_numbers[group.index()];
        *n += 1;
        *n
    }

    /// Next Louvre release version for `group` (per-warp, per-group
    /// version counter stamped into release markers).
    pub fn next_release_version(&mut self, group: MemGroupId) -> u32 {
        let n = &mut self.release_versions[group.index()];
        *n += 1;
        *n
    }

    /// Reads a register.
    ///
    /// # Panics
    /// Panics if the register is out of range or still pending in the
    /// scoreboard mask — the SM must check the scoreboard first.
    #[must_use]
    pub fn read_reg(&self, pending: u64, reg: orderlight::Reg) -> Stripe {
        assert!(!reg_is_pending(pending, reg), "read of pending register {reg}");
        self.regs[reg.0 as usize]
    }

    /// Writes a register, clearing any pending mark in the scoreboard
    /// mask (load completion or in-core compute).
    pub fn write_reg(&mut self, pending: &mut u64, reg: orderlight::Reg, value: Stripe) {
        self.regs[reg.0 as usize] = value;
        *pending &= !(1 << u32::from(reg.0));
    }
}

impl fmt::Debug for WarpCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarpCore")
            .field("id", &self.id)
            .field("channel", &self.channel)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

/// One warp executing a kernel instruction stream — the standalone
/// (array-of-structs) view over [`WarpCore`] plus the hot scheduler
/// fields.
pub struct Warp {
    core: WarpCore,
    cur: Option<KernelInstr>,
    state: WarpState,
    pending: u64,
}

impl Warp {
    /// Creates a warp pinned to `channel`, executing `program`.
    #[must_use]
    pub fn new(id: GlobalWarpId, channel: ChannelId, program: Box<dyn InstrStream>) -> Self {
        Warp {
            core: WarpCore {
                id,
                channel,
                program,
                exhausted: false,
                regs: Box::new([Stripe::default(); NUM_REGS]),
                seq: 0,
                fence_counter: 0,
                ol_numbers: [0; 16],
                release_versions: [0; 16],
            },
            cur: None,
            state: WarpState::Ready,
            pending: 0,
        }
    }

    /// Splits the warp into its cold core and the hot scheduler triple
    /// (state, fetched head, pending-register mask) for SoA storage.
    #[must_use]
    pub fn into_parts(self) -> (WarpCore, WarpState, Option<KernelInstr>, u64) {
        (self.core, self.state, self.cur, self.pending)
    }

    /// The warp's global identifier.
    #[must_use]
    pub fn id(&self) -> GlobalWarpId {
        self.core.id()
    }

    /// The memory channel this warp drives.
    #[must_use]
    pub fn channel(&self) -> ChannelId {
        self.core.channel()
    }

    /// Current scheduling state.
    #[must_use]
    pub fn state(&self) -> WarpState {
        self.state
    }

    /// The instruction at the head of the stream (fetching lazily).
    /// Transitions to [`WarpState::Done`] when the stream ends.
    pub fn current(&mut self) -> Option<KernelInstr> {
        self.core.fetch(&mut self.cur, &mut self.state)
    }

    /// The already-fetched head instruction, without materialising the
    /// next one — the `&self` peek the quiescence horizon needs.
    #[must_use]
    pub fn peek_current(&self) -> Option<KernelInstr> {
        self.cur
    }

    /// Whether the head of the stream has not been fetched yet. The
    /// horizon treats such a warp conservatively (tick it densely):
    /// fetching could surface any instruction, including one that can
    /// issue immediately.
    #[must_use]
    pub fn needs_fetch(&self) -> bool {
        self.cur.is_none() && !self.core.exhausted()
    }

    /// Consumes the current instruction after a successful issue.
    ///
    /// # Panics
    /// Panics if there is no current instruction.
    pub fn advance(&mut self) {
        self.core.advance(&mut self.cur, &mut self.state);
    }

    /// Blocks the warp at a fence; returns the fence id for the probe.
    pub fn enter_fence(&mut self) -> u64 {
        self.core.enter_fence(&mut self.state)
    }

    /// Delivers a fence acknowledgement; returns whether it unblocked the
    /// warp.
    pub fn fence_ack(&mut self, fence_id: u64) -> bool {
        self.core.fence_ack(fence_id, self.cur.is_none(), &mut self.state)
    }

    /// Next per-warp request sequence number.
    pub fn next_seq(&mut self) -> u64 {
        self.core.next_seq()
    }

    /// Next OrderLight packet number for `group` (paper Figure 8's
    /// per-channel, per-memory-group packet number).
    pub fn next_ol_number(&mut self, group: MemGroupId) -> u32 {
        self.core.next_ol_number(group)
    }

    /// Next Louvre release version for `group` (per-warp, per-group
    /// version counter stamped into release markers).
    pub fn next_release_version(&mut self, group: MemGroupId) -> u32 {
        self.core.next_release_version(group)
    }

    /// Whether `reg` has an outstanding load.
    #[must_use]
    pub fn is_pending(&self, reg: orderlight::Reg) -> bool {
        reg_is_pending(self.pending, reg)
    }

    /// Marks `reg` as awaiting load data.
    ///
    /// # Panics
    /// Panics if `reg` is out of range.
    pub fn mark_pending(&mut self, reg: orderlight::Reg) {
        mark_reg_pending(&mut self.pending, reg);
    }

    /// Reads a register.
    ///
    /// # Panics
    /// Panics if the register is out of range or still pending — the SM
    /// must check the scoreboard first.
    #[must_use]
    pub fn read_reg(&self, reg: orderlight::Reg) -> Stripe {
        self.core.read_reg(self.pending, reg)
    }

    /// Writes a register, clearing any pending mark (load completion or
    /// in-core compute).
    pub fn write_reg(&mut self, reg: orderlight::Reg, value: Stripe) {
        self.core.write_reg(&mut self.pending, reg, value);
    }
}

impl fmt::Debug for Warp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Warp")
            .field("id", &self.core.id())
            .field("channel", &self.core.channel())
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::types::Addr;
    use orderlight::{Reg, VecStream};

    fn warp_with(instrs: Vec<KernelInstr>) -> Warp {
        Warp::new(GlobalWarpId::new(0, 0), ChannelId(3), Box::new(VecStream::new(instrs)))
    }

    #[test]
    fn empty_program_is_done_immediately() {
        let mut w = warp_with(vec![]);
        assert_eq!(w.current(), None);
        assert_eq!(w.state(), WarpState::Done);
    }

    #[test]
    fn current_and_advance_walk_the_stream() {
        let i1 = KernelInstr::Load { addr: Addr(0), reg: Reg(1) };
        let i2 = KernelInstr::Load { addr: Addr(32), reg: Reg(2) };
        let mut w = warp_with(vec![i1, i2]);
        assert_eq!(w.current(), Some(i1));
        assert_eq!(w.current(), Some(i1), "peeking does not consume");
        w.advance();
        assert_eq!(w.current(), Some(i2));
        w.advance();
        assert_eq!(w.current(), None);
        assert_eq!(w.state(), WarpState::Done);
    }

    #[test]
    fn fence_blocks_and_ack_releases() {
        let i = KernelInstr::Load { addr: Addr(0), reg: Reg(1) };
        let mut w = warp_with(vec![i]);
        let id = w.enter_fence();
        assert_eq!(w.state(), WarpState::WaitFence { fence_id: id });
        assert!(!w.fence_ack(id + 1), "wrong id ignored");
        assert!(w.fence_ack(id));
        assert_eq!(w.state(), WarpState::Ready);
    }

    #[test]
    fn fence_ack_on_exhausted_program_goes_done() {
        let mut w = warp_with(vec![]);
        let _ = w.current();
        let id = w.enter_fence();
        assert!(w.fence_ack(id));
        assert_eq!(w.state(), WarpState::Done);
    }

    #[test]
    fn register_scoreboard() {
        let mut w = warp_with(vec![]);
        let r = Reg(5);
        assert!(!w.is_pending(r));
        w.mark_pending(r);
        assert!(w.is_pending(r));
        w.write_reg(r, Stripe::splat(9));
        assert!(!w.is_pending(r));
        assert_eq!(w.read_reg(r), Stripe::splat(9));
    }

    #[test]
    #[should_panic(expected = "pending register")]
    fn reading_pending_register_panics() {
        let mut w = warp_with(vec![]);
        w.mark_pending(Reg(1));
        let _ = w.read_reg(Reg(1));
    }

    #[test]
    fn counters_are_monotonic() {
        let mut w = warp_with(vec![]);
        assert_eq!(w.next_seq(), 1);
        assert_eq!(w.next_seq(), 2);
        assert_eq!(w.next_ol_number(MemGroupId(0)), 1);
        assert_eq!(w.next_ol_number(MemGroupId(0)), 2);
        assert_eq!(w.next_ol_number(MemGroupId(1)), 1, "groups count separately");
    }

    #[test]
    fn into_parts_round_trips_the_hot_fields() {
        let i = KernelInstr::Load { addr: Addr(0), reg: Reg(1) };
        let mut w = warp_with(vec![i]);
        assert_eq!(w.current(), Some(i));
        w.mark_pending(Reg(7));
        let (core, state, cur, pending) = w.into_parts();
        assert_eq!(core.id(), GlobalWarpId::new(0, 0));
        assert_eq!(core.channel(), ChannelId(3));
        assert_eq!(state, WarpState::Ready);
        assert_eq!(cur, Some(i));
        assert!(reg_is_pending(pending, Reg(7)));
        assert!(!reg_is_pending(pending, Reg(6)));
    }
}
