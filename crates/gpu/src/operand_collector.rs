//! The operand collector (paper Section 5.3.1, "Operand Collector").
//!
//! Memory instructions occupy a collector unit while their register
//! operands are gathered; requests leave the collector in allocation
//! order after a fixed residency. The collector keeps a count of PIM
//! requests currently resident, per (channel, memory-group): an
//! OrderLight packet is injected into the LDST queue only once the count
//! for its channel/group reads zero, guaranteeing the packet follows all
//! preceding PIM requests into the memory pipe without halting issue for
//! long (unlike a fence, which drains the whole core-to-memory path).

use orderlight::message::MemReq;
use orderlight::types::{ChannelId, CoreCycle, GlobalWarpId, MemGroupId};
use std::collections::{HashMap, VecDeque};

/// One resident collector-unit entry.
#[derive(Debug, Clone)]
struct OcEntry {
    exit_at: CoreCycle,
    req: MemReq,
    warp: GlobalWarpId,
    pim_key: Option<(ChannelId, MemGroupId)>,
}

/// The multi-unit operand collector of one SM.
#[derive(Debug, Clone)]
pub struct OperandCollector {
    entries: VecDeque<OcEntry>,
    capacity: usize,
    latency: CoreCycle,
    pim_counts: HashMap<(ChannelId, MemGroupId), u32>,
    warp_counts: HashMap<GlobalWarpId, u32>,
}

impl OperandCollector {
    /// Creates a collector with `capacity` units and a fixed operand
    /// `latency` (register-file access residency).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, latency: CoreCycle) -> Self {
        assert!(capacity > 0, "collector needs at least one unit");
        OperandCollector {
            entries: VecDeque::new(),
            capacity,
            latency,
            pim_counts: HashMap::new(),
            warp_counts: HashMap::new(),
        }
    }

    /// Whether a collector unit is free.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Whether no requests are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates a collector unit for `req` at `now`. `pim_key` is
    /// `Some((channel, group))` for PIM requests, maintaining the
    /// OrderLight gating counter.
    ///
    /// # Panics
    /// Panics if no unit is free.
    pub fn allocate(
        &mut self,
        req: MemReq,
        warp: GlobalWarpId,
        pim_key: Option<(ChannelId, MemGroupId)>,
        now: CoreCycle,
    ) {
        assert!(self.has_space(), "operand collector overflow");
        if let Some(key) = pim_key {
            *self.pim_counts.entry(key).or_insert(0) += 1;
        }
        *self.warp_counts.entry(warp).or_insert(0) += 1;
        self.entries.push_back(OcEntry { exit_at: now + self.latency, req, warp, pim_key });
    }

    /// PIM requests resident for `(channel, group)` — the OrderLight
    /// injection gate.
    #[must_use]
    pub fn pim_count(&self, channel: ChannelId, group: MemGroupId) -> u32 {
        self.pim_counts.get(&(channel, group)).copied().unwrap_or(0)
    }

    /// Requests resident from `warp` — the fence drain gate.
    #[must_use]
    pub fn warp_count(&self, warp: GlobalWarpId) -> u32 {
        self.warp_counts.get(&warp).copied().unwrap_or(0)
    }

    /// Exit deadline of the oldest resident entry, if any. Entries
    /// leave in allocation order, so the head's deadline is the
    /// collector's earliest possible state change (quiescence horizon).
    #[must_use]
    pub fn next_exit(&self) -> Option<CoreCycle> {
        self.entries.front().map(|e| e.exit_at)
    }

    /// Moves requests whose residency elapsed into the LDST queue, in
    /// order, while `accept` keeps taking them.
    pub fn drain(&mut self, now: CoreCycle, mut accept: impl FnMut(&MemReq) -> bool) {
        while let Some(head) = self.entries.front() {
            if head.exit_at > now || !accept(&head.req) {
                break;
            }
            let e = self.entries.pop_front().expect("front exists");
            if let Some(key) = e.pim_key {
                let c = self.pim_counts.get_mut(&key).expect("count tracked");
                *c -= 1;
            }
            let c = self.warp_counts.get_mut(&e.warp).expect("count tracked");
            *c -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::message::ReqMeta;
    use orderlight::types::{Addr, TsSlot};
    use orderlight::{PimInstruction, PimOp};

    fn pim_req(seq: u64) -> MemReq {
        MemReq::Pim {
            instr: PimInstruction {
                op: PimOp::Load,
                addr: Addr(seq * 32),
                slot: TsSlot(0),
                group: MemGroupId(0),
            },
            meta: ReqMeta { warp: GlobalWarpId(0), seq },
        }
    }

    #[test]
    fn counts_track_residency() {
        let mut oc = OperandCollector::new(4, 3);
        let key = (ChannelId(0), MemGroupId(0));
        oc.allocate(pim_req(1), GlobalWarpId(0), Some(key), 0);
        oc.allocate(pim_req(2), GlobalWarpId(0), Some(key), 0);
        assert_eq!(oc.pim_count(key.0, key.1), 2);
        assert_eq!(oc.warp_count(GlobalWarpId(0)), 2);
        let mut taken = Vec::new();
        oc.drain(2, |r| {
            taken.push(r.clone());
            true
        });
        assert!(taken.is_empty(), "latency not elapsed");
        oc.drain(3, |r| {
            taken.push(r.clone());
            true
        });
        assert_eq!(taken.len(), 2);
        assert_eq!(oc.pim_count(key.0, key.1), 0);
        assert_eq!(oc.warp_count(GlobalWarpId(0)), 0);
        assert!(oc.is_empty());
    }

    #[test]
    fn drain_respects_downstream_backpressure() {
        let mut oc = OperandCollector::new(4, 0);
        oc.allocate(pim_req(1), GlobalWarpId(0), None, 0);
        oc.allocate(pim_req(2), GlobalWarpId(0), None, 0);
        let mut budget = 1;
        oc.drain(0, |_| {
            if budget > 0 {
                budget -= 1;
                true
            } else {
                false
            }
        });
        assert_eq!(oc.warp_count(GlobalWarpId(0)), 1, "second entry stayed");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut oc = OperandCollector::new(1, 1);
        assert!(oc.has_space());
        oc.allocate(pim_req(1), GlobalWarpId(0), None, 0);
        assert!(!oc.has_space());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut oc = OperandCollector::new(1, 1);
        oc.allocate(pim_req(1), GlobalWarpId(0), None, 0);
        oc.allocate(pim_req(2), GlobalWarpId(0), None, 0);
    }

    #[test]
    fn keys_are_independent() {
        let mut oc = OperandCollector::new(8, 1);
        oc.allocate(pim_req(1), GlobalWarpId(0), Some((ChannelId(0), MemGroupId(0))), 0);
        oc.allocate(pim_req(2), GlobalWarpId(1), Some((ChannelId(1), MemGroupId(0))), 0);
        assert_eq!(oc.pim_count(ChannelId(0), MemGroupId(0)), 1);
        assert_eq!(oc.pim_count(ChannelId(1), MemGroupId(0)), 1);
        assert_eq!(oc.pim_count(ChannelId(0), MemGroupId(1)), 0);
        assert_eq!(oc.warp_count(GlobalWarpId(0)), 1);
        assert_eq!(oc.warp_count(GlobalWarpId(1)), 1);
    }
}
