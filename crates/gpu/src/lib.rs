//! # Host GPU model (paper Sections 2.2, 5.3.1, 6)
//!
//! Models the parts of a GPU that interact with the memory-ordering
//! mechanism: warps executing kernel instruction streams, the operand
//! collector (whose PIM-request counters gate OrderLight packet
//! injection), the LDST queue, and per-warp fence stalls.
//!
//! Following the paper's evaluation model, each PIM kernel warp drives a
//! single memory channel (one warp per PIM unit avoids inter-warp
//! synchronisation, Section 5.4), and host-baseline warps are likewise
//! pinned to the channel whose slice of the data they process.
//!
//! * [`warp`] — warp state: program stream, registers with a pending
//!   scoreboard, fence/OrderLight counters.
//! * [`operand_collector`] — the collector-unit queue with per
//!   (channel, memory-group) PIM counters (paper Section 5.3.1).
//! * [`sm`] — the streaming multiprocessor: warp scheduler, issue rules
//!   for every [`orderlight::KernelInstr`], LDST queue, and stall-cycle
//!   accounting.

pub mod operand_collector;
pub mod sm;
pub mod warp;

pub use operand_collector::OperandCollector;
pub use sm::{Sm, SmConfig, SmStats};
pub use warp::{Warp, WarpCore, WarpState};
