//! The streaming multiprocessor: warp scheduling, issue rules for every
//! kernel instruction, the LDST queue, and stall accounting.
//!
//! The contrast the paper draws (Figure 7) lives here:
//!
//! * a **fence** first drains the warp's requests out of the operand
//!   collector, then injects a fence *probe* and stalls the warp until
//!   the memory controller's acknowledgement returns up the pipe —
//!   hundreds of core cycles per fence;
//! * an **OrderLight** instruction waits only until the operand
//!   collector's PIM counter for its channel/group reads zero (a few
//!   cycles), injects the packet, and keeps issuing.

use crate::operand_collector::OperandCollector;
use crate::warp::{mark_reg_pending, reg_is_pending, Warp, WarpCore, WarpState};
use orderlight::message::{Marker, MarkerCopy, MemReq, MemResp, ReqMeta};
use orderlight::packet::OrderLightPacket;
use orderlight::types::CoreCycle;
use orderlight::{min_horizon, KernelInstr, NextEvent, OrderingInstr};
use orderlight_trace::{
    sink::nop_sink, InstrKind, SharedSink, StallCause as TraceCause, TraceEvent,
};
use std::collections::VecDeque;

/// SM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmConfig {
    /// Collector units available.
    pub oc_capacity: usize,
    /// Operand-collector residency in core cycles.
    pub oc_latency: CoreCycle,
    /// LDST queue capacity.
    pub ldst_capacity: usize,
    /// Instructions issued per cycle (across warps).
    pub issue_width: usize,
    /// Per-warp buffer credits for the sequence-number baseline
    /// (Kim et al. (paper reference 27)): a PIM instruction may only issue while the
    /// warp holds a credit; the controller returns one per retired
    /// request. `None` disables credit gating (fence/OrderLight modes).
    pub credits: Option<u32>,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            oc_capacity: 16,
            oc_latency: 4,
            ldst_capacity: 16,
            issue_width: 1,
            credits: None,
        }
    }
}

/// Per-SM activity and stall counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SmStats {
    /// Instructions issued.
    pub issued: u64,
    /// PIM instructions issued.
    pub pim_issued: u64,
    /// Conventional loads issued.
    pub loads: u64,
    /// Conventional stores issued.
    pub stores: u64,
    /// In-core SIMD computes executed.
    pub computes: u64,
    /// Fence instructions executed.
    pub fences: u64,
    /// OrderLight instructions executed.
    pub orderlights: u64,
    /// Warp-cycles spent stalled at fences (the paper's core stall-cycle
    /// metric).
    pub fence_stall_cycles: u64,
    /// Warp-cycles spent waiting for the operand collector to drain
    /// before injecting an OrderLight packet.
    pub ol_wait_cycles: u64,
    /// Warp-cycles blocked on register dependences.
    pub reg_wait_cycles: u64,
    /// Warp-cycles blocked on full collector/LDST structures.
    pub structural_stall_cycles: u64,
    /// Warp-cycles blocked waiting for buffer credits (sequence-number
    /// baseline only).
    pub credit_wait_cycles: u64,
}

impl SmStats {
    /// Total stall cycles across causes.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.fence_stall_cycles
            + self.ol_wait_cycles
            + self.reg_wait_cycles
            + self.structural_stall_cycles
            + self.credit_wait_cycles
    }
}

/// Why a ready warp's current instruction cannot issue this cycle.
/// Shared between [`Sm::try_issue`] (which charges one cycle), the
/// quiescence horizon (a warp with no blocker means "tick densely") and
/// the closed-form skip charging — keeping the three bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallCause {
    /// Out of sequence-number buffer credits.
    CreditWait,
    /// Operand collector or LDST queue full.
    Structural,
    /// OrderLight injection gated on the collector's PIM counter.
    OlWait,
    /// Fence draining the warp's requests out of the collector.
    FenceDrain,
    /// Register dependence on an outstanding load.
    RegWait,
}

impl StallCause {
    /// The trace-level cause this internal blocker is reported as. The
    /// mapping is one-to-one with the counters [`Sm::charge`]
    /// increments, which is what makes the profiler's conservation
    /// invariant hold by construction.
    fn trace_cause(self) -> TraceCause {
        match self {
            StallCause::CreditWait => TraceCause::CreditWait,
            StallCause::Structural => TraceCause::Structural,
            StallCause::OlWait => TraceCause::OlWait,
            StallCause::FenceDrain => TraceCause::FenceDrain,
            StallCause::RegWait => TraceCause::RegWait,
        }
    }
}

/// An open run of contiguous stall cycles for one cause, awaiting
/// emission as a single batched [`TraceEvent::CoreStall`].
#[derive(Debug, Clone, Copy)]
struct StallRun {
    /// Core cycle of the last charged cycle in the run.
    end: CoreCycle,
    /// Total warp-cycles charged (>= run length when several warps
    /// stall on the same cause in the same cycle).
    cycles: u64,
}

/// One streaming multiprocessor.
///
/// # Example
///
/// ```
/// use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
/// use orderlight::{KernelInstr, PimInstruction, PimOp, VecStream};
/// use orderlight_gpu::{Sm, SmConfig, Warp};
///
/// let program = vec![KernelInstr::Pim(PimInstruction {
///     op: PimOp::Load,
///     addr: Addr(0),
///     slot: TsSlot(0),
///     group: MemGroupId(0),
/// })];
/// let warp = Warp::new(
///     GlobalWarpId::new(0, 0),
///     ChannelId(0),
///     Box::new(VecStream::new(program)),
/// );
/// let mut sm = Sm::new(SmConfig::default(), vec![warp]);
/// for now in 0..10 {
///     sm.tick(now);
/// }
/// assert!(sm.pop_ldst().is_some(), "the PIM request reached the LDST queue");
/// assert!(sm.is_done());
/// ```
pub struct Sm {
    // Per-warp state, struct-of-arrays: the every-cycle scheduler scans
    // (ready-warp walk, parked-fence count, horizon probe) read
    // `states`/`curs`/`pendings` as contiguous arrays; the cold bulk of
    // each warp (program stream, register file, counters) sits in
    // `cores` and is only touched when an instruction actually issues
    // or data arrives.
    cores: Vec<WarpCore>,
    states: Vec<WarpState>,
    curs: Vec<Option<KernelInstr>>,
    pendings: Vec<u64>,
    oc: OperandCollector,
    ldst: VecDeque<MemReq>,
    cfg: SmConfig,
    rr: usize,
    stats: SmStats,
    credits: Vec<u32>,
    sink: SharedSink,
    retired: Vec<bool>,
    // Cycle of the most recent tick; stamps events emitted from
    // `deliver`, which has no cycle parameter.
    cur_cycle: CoreCycle,
    // This SM's index, for stamping CoreStall events (derived from the
    // first warp's id at construction).
    sm_id: u32,
    // One open stall run per trace-level cause (indexed by the
    // `StallCause::ALL` order); only touched when a sink is attached.
    stall_runs: [Option<StallRun>; 6],
}

impl Sm {
    /// Creates an SM running `warps`.
    #[must_use]
    pub fn new(cfg: SmConfig, warps: Vec<Warp>) -> Self {
        let n = warps.len();
        let sm_id = warps.first().map_or(0, |w| w.id().sm() as u32);
        let mut cores = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        let mut curs = Vec::with_capacity(n);
        let mut pendings = Vec::with_capacity(n);
        for w in warps {
            let (core, state, cur, pending) = w.into_parts();
            cores.push(core);
            states.push(state);
            curs.push(cur);
            pendings.push(pending);
        }
        Sm {
            oc: OperandCollector::new(cfg.oc_capacity, cfg.oc_latency),
            ldst: VecDeque::new(),
            credits: vec![cfg.credits.unwrap_or(0); n],
            retired: vec![false; n],
            sm_id,
            cores,
            states,
            curs,
            pendings,
            cfg,
            rr: 0,
            stats: SmStats::default(),
            sink: nop_sink(),
            cur_cycle: 0,
            stall_runs: [None; 6],
        }
    }

    /// Attaches a trace sink. The default [`orderlight_trace::NopSink`]
    /// makes tracing free; sinks only observe, so attaching one never
    /// changes simulated behaviour.
    pub fn set_sink(&mut self, sink: SharedSink) {
        self.sink = sink;
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// Scheduling states of the warps running on this SM.
    #[must_use]
    pub fn warp_states(&self) -> &[WarpState] {
        &self.states
    }

    /// Whether every warp has finished and all structures drained.
    #[must_use]
    pub fn is_done(&mut self) -> bool {
        let all_done = (0..self.cores.len()).all(|i| {
            let _ = self.cores[i].fetch(&mut self.curs[i], &mut self.states[i]);
            self.states[i] == WarpState::Done
        });
        all_done && self.oc.is_empty() && self.ldst.is_empty()
    }

    /// Peeks the LDST queue head for routing to a memory pipe.
    #[must_use]
    pub fn peek_ldst(&self) -> Option<&MemReq> {
        self.ldst.front()
    }

    /// Pops the LDST queue head once the pipe accepted it.
    pub fn pop_ldst(&mut self) -> Option<MemReq> {
        self.ldst.pop_front()
    }

    /// Delivers a response from the memory pipe.
    pub fn deliver(&mut self, resp: MemResp) {
        let i = resp.warp().warp();
        match resp {
            MemResp::LoadData { reg, data, .. } => {
                self.cores[i].write_reg(&mut self.pendings[i], reg, data);
            }
            MemResp::FenceAck { fence_id, .. } => {
                let id = self.cores[i].id();
                let head_empty = self.curs[i].is_none();
                let released = self.cores[i].fence_ack(fence_id, head_empty, &mut self.states[i]);
                if released && self.sink.is_enabled() {
                    self.sink.emit(TraceEvent::FenceStallEnd {
                        cycle: self.cur_cycle,
                        sm: id.sm() as u32,
                        warp: id.0,
                        fence_id,
                    });
                }
            }
            MemResp::Credit { .. } => self.credits[i] += 1,
        }
    }

    fn ldst_has_space(&self) -> bool {
        self.ldst.len() < self.cfg.ldst_capacity
    }

    fn trace_issue(&self, now: CoreCycle, id: orderlight::types::GlobalWarpId, kind: InstrKind) {
        if self.sink.is_enabled() {
            self.sink.emit(TraceEvent::WarpIssue {
                cycle: now,
                sm: id.sm() as u32,
                warp: id.0,
                kind,
            });
        }
    }

    /// The first blocker preventing warp `i`'s current instruction from
    /// issuing, or `None` if it could issue right now. Read-only; the
    /// check order matches [`try_issue`](Self::try_issue) exactly, which
    /// is what makes per-cycle and closed-form stall charging agree. An
    /// unfetched or exhausted stream reports no blocker — `try_issue`
    /// resolves those by materialising the stream.
    fn issue_block(&self, i: usize) -> Option<StallCause> {
        let instr = self.curs[i]?;
        match instr {
            KernelInstr::Pim(_) => {
                if self.cfg.credits.is_some() && self.credits[i] == 0 {
                    Some(StallCause::CreditWait)
                } else if !self.oc.has_space() {
                    Some(StallCause::Structural)
                } else {
                    None
                }
            }
            KernelInstr::Ordering(
                OrderingInstr::OrderLight { group } | OrderingInstr::Release { group },
            ) => {
                if self.oc.pim_count(self.cores[i].channel(), group) > 0 {
                    Some(StallCause::OlWait)
                } else if !self.ldst_has_space() {
                    Some(StallCause::Structural)
                } else {
                    None
                }
            }
            KernelInstr::Ordering(OrderingInstr::Fence) => {
                if self.oc.warp_count(self.cores[i].id()) > 0 {
                    Some(StallCause::FenceDrain)
                } else if !self.ldst_has_space() {
                    Some(StallCause::Structural)
                } else {
                    None
                }
            }
            KernelInstr::Load { reg, .. } | KernelInstr::Store { reg, .. } => {
                if reg_is_pending(self.pendings[i], reg) {
                    Some(StallCause::RegWait)
                } else if !self.oc.has_space() {
                    Some(StallCause::Structural)
                } else {
                    None
                }
            }
            KernelInstr::Compute { dst, a, b, .. } => {
                let p = self.pendings[i];
                if reg_is_pending(p, a) || reg_is_pending(p, b) || reg_is_pending(p, dst) {
                    Some(StallCause::RegWait)
                } else {
                    None
                }
            }
        }
    }

    /// Charges a span of `cycles` stall cycles starting at `now` to the
    /// counter `cause` maps to, mirroring every charged cycle into the
    /// batched [`TraceEvent::CoreStall`] stream when a sink is attached.
    fn charge(&mut self, cause: StallCause, now: CoreCycle, cycles: u64) {
        match cause {
            StallCause::CreditWait => self.stats.credit_wait_cycles += cycles,
            StallCause::Structural => self.stats.structural_stall_cycles += cycles,
            StallCause::OlWait => self.stats.ol_wait_cycles += cycles,
            StallCause::FenceDrain => self.stats.fence_stall_cycles += cycles,
            StallCause::RegWait => self.stats.reg_wait_cycles += cycles,
        }
        if self.sink.is_enabled() {
            self.note_stall(cause.trace_cause(), now, now + cycles - 1, cycles);
        }
    }

    /// Folds a stall charge covering core cycles `start..=end` into the
    /// per-cause run, emitting the previous run first if this one is
    /// not contiguous with it. `count` may exceed the span length when
    /// several warps stall on the same cause in the same cycle.
    fn note_stall(&mut self, cause: TraceCause, start: CoreCycle, end: CoreCycle, count: u64) {
        let slot = cause as usize;
        match &mut self.stall_runs[slot] {
            Some(run) if start <= run.end + 1 => {
                run.end = run.end.max(end);
                run.cycles += count;
            }
            other => {
                if let Some(run) = other.take() {
                    self.sink.emit(TraceEvent::CoreStall {
                        cycle: run.end,
                        sm: self.sm_id,
                        cause,
                        cycles: run.cycles,
                    });
                }
                *other = Some(StallRun { end, cycles: count });
            }
        }
    }

    /// Emits every still-open stall run. The system calls this once at
    /// the end of a run so the profiler's conservation invariant sees
    /// every charged cycle; calling it mid-run is harmless (runs simply
    /// close early).
    pub fn flush_stall_runs(&mut self) {
        if !self.sink.is_enabled() {
            return;
        }
        for (slot, cause) in TraceCause::ALL.iter().enumerate() {
            if let Some(run) = self.stall_runs[slot].take() {
                self.sink.emit(TraceEvent::CoreStall {
                    cycle: run.end,
                    sm: self.sm_id,
                    cause: *cause,
                    cycles: run.cycles,
                });
            }
        }
    }

    /// Attempts to issue the current instruction of warp `i`; returns
    /// whether an instruction issued.
    fn try_issue(&mut self, i: usize, now: CoreCycle) -> bool {
        if let Some(cause) = self.issue_block(i) {
            self.charge(cause, now, 1);
            return false;
        }
        let Some(instr) = self.cores[i].fetch(&mut self.curs[i], &mut self.states[i]) else {
            return false;
        };
        match instr {
            KernelInstr::Pim(pim) => {
                let id = self.cores[i].id();
                let meta = ReqMeta { warp: id, seq: self.cores[i].next_seq() };
                let key = (self.cores[i].channel(), pim.group);
                self.cores[i].advance(&mut self.curs[i], &mut self.states[i]);
                if self.cfg.credits.is_some() {
                    self.credits[i] -= 1;
                }
                self.oc.allocate(MemReq::Pim { instr: pim, meta }, id, Some(key), now);
                self.stats.pim_issued += 1;
                self.trace_issue(now, id, InstrKind::Pim);
                true
            }
            KernelInstr::Ordering(OrderingInstr::OrderLight { group }) => {
                let channel = self.cores[i].channel();
                let id = self.cores[i].id();
                let number = self.cores[i].next_ol_number(group);
                let packet = OrderLightPacket::new(channel, group, number);
                self.cores[i].advance(&mut self.curs[i], &mut self.states[i]);
                self.ldst.push_back(MemReq::Marker(MarkerCopy {
                    marker: Marker::OrderLight(packet),
                    total_copies: 1,
                }));
                self.stats.orderlights += 1;
                self.trace_issue(now, id, InstrKind::OrderLight);
                if self.sink.is_enabled() {
                    self.sink.emit(TraceEvent::PacketCreated {
                        cycle: now,
                        channel: channel.0,
                        group: group.0,
                        number,
                        warp: id.0,
                    });
                }
                true
            }
            KernelInstr::Ordering(OrderingInstr::Release { group }) => {
                // Louvre-style release: same in-band injection path as an
                // OrderLight packet, but the number is the warp's
                // per-group release version and enforcement (the hold
                // until older requests drain) happens at the controller.
                let channel = self.cores[i].channel();
                let id = self.cores[i].id();
                let number = self.cores[i].next_release_version(group);
                let packet = OrderLightPacket::new(channel, group, number);
                self.cores[i].advance(&mut self.curs[i], &mut self.states[i]);
                self.ldst.push_back(MemReq::Marker(MarkerCopy {
                    marker: Marker::Release(packet),
                    total_copies: 1,
                }));
                self.stats.orderlights += 1;
                self.trace_issue(now, id, InstrKind::OrderLight);
                if self.sink.is_enabled() {
                    self.sink.emit(TraceEvent::PacketCreated {
                        cycle: now,
                        channel: channel.0,
                        group: group.0,
                        number,
                        warp: id.0,
                    });
                }
                true
            }
            KernelInstr::Ordering(OrderingInstr::Fence) => {
                // The fence halts issue until the warp's requests have
                // left the operand collector, then sends the probe and
                // stalls for the acknowledgement.
                let id = self.cores[i].id();
                let channel = self.cores[i].channel();
                let fence_id = self.cores[i].enter_fence(&mut self.states[i]);
                self.cores[i].advance(&mut self.curs[i], &mut self.states[i]);
                self.ldst.push_back(MemReq::Marker(MarkerCopy {
                    marker: Marker::FenceProbe { warp: id, fence_id, channel },
                    total_copies: 1,
                }));
                self.stats.fences += 1;
                self.trace_issue(now, id, InstrKind::Fence);
                if self.sink.is_enabled() {
                    self.sink.emit(TraceEvent::FenceStallBegin {
                        cycle: now,
                        sm: id.sm() as u32,
                        warp: id.0,
                        fence_id,
                    });
                }
                true
            }
            KernelInstr::Load { addr, reg } => {
                let id = self.cores[i].id();
                let meta = ReqMeta { warp: id, seq: self.cores[i].next_seq() };
                mark_reg_pending(&mut self.pendings[i], reg);
                self.cores[i].advance(&mut self.curs[i], &mut self.states[i]);
                self.oc.allocate(MemReq::HostRead { addr, reg, meta }, id, None, now);
                self.stats.loads += 1;
                self.trace_issue(now, id, InstrKind::Load);
                true
            }
            KernelInstr::Compute { op, dst, a, b } => {
                let id = self.cores[i].id();
                let pending = self.pendings[i];
                let result = op
                    .apply(self.cores[i].read_reg(pending, a), self.cores[i].read_reg(pending, b));
                self.cores[i].write_reg(&mut self.pendings[i], dst, result);
                self.cores[i].advance(&mut self.curs[i], &mut self.states[i]);
                self.stats.computes += 1;
                self.trace_issue(now, id, InstrKind::Compute);
                true
            }
            KernelInstr::Store { addr, reg } => {
                let id = self.cores[i].id();
                let meta = ReqMeta { warp: id, seq: self.cores[i].next_seq() };
                let data = self.cores[i].read_reg(self.pendings[i], reg);
                self.cores[i].advance(&mut self.curs[i], &mut self.states[i]);
                self.oc.allocate(MemReq::HostWrite { addr, data, meta }, id, None, now);
                self.stats.stores += 1;
                self.trace_issue(now, id, InstrKind::Store);
                true
            }
        }
    }

    /// Advances the SM one core cycle: drains the operand collector into
    /// the LDST queue, counts fence stalls, and issues up to
    /// `issue_width` instructions round-robin across ready warps.
    pub fn tick(&mut self, now: CoreCycle) {
        self.cur_cycle = now;
        // Operand collector -> LDST queue.
        let space = self.cfg.ldst_capacity - self.ldst.len();
        let mut budget = space;
        let ldst = &mut self.ldst;
        self.oc.drain(now, |req| {
            if budget == 0 {
                return false;
            }
            budget -= 1;
            ldst.push_back(req.clone());
            true
        });

        // Fence-stall accounting: every warp parked at a fence burns a
        // stall cycle (the paper's "waiting cycles per fence").
        let parked =
            self.states.iter().filter(|s| matches!(s, WarpState::WaitFence { .. })).count() as u64;
        self.stats.fence_stall_cycles += parked;
        if parked > 0 && self.sink.is_enabled() {
            self.note_stall(TraceCause::FenceWait, now, now, parked);
        }

        // Issue round-robin across ready warps.
        let n = self.states.len();
        let mut issued = 0;
        for k in 0..n {
            if issued >= self.cfg.issue_width {
                break;
            }
            let i = (self.rr + k) % n;
            let _ = self.cores[i].fetch(&mut self.curs[i], &mut self.states[i]);
            if self.states[i] != WarpState::Ready {
                continue;
            }
            if self.try_issue(i, now) {
                issued += 1;
                self.stats.issued += 1;
            }
        }
        self.rr = (self.rr + 1) % n.max(1);

        // Retirement is trace-only bookkeeping, so the scan is skipped
        // entirely when no real sink is attached.
        if self.sink.is_enabled() {
            for i in 0..self.states.len() {
                if !self.retired[i] && self.states[i] == WarpState::Done {
                    self.retired[i] = true;
                    let id = self.cores[i].id();
                    self.sink.emit(TraceEvent::WarpRetire {
                        cycle: now,
                        sm: id.sm() as u32,
                        warp: id.0,
                    });
                }
            }
        }
    }

    /// Advances the SM across a quiescent window of `span` cycles — one
    /// in which [`tick`](Self::tick) would issue nothing and drain
    /// nothing. Per-cycle effects are applied in closed form: every
    /// fence-parked warp and every blocked ready warp charges its stall
    /// counter for the whole span (the blocker cannot change inside the
    /// window — every unblock source is itself a horizon event), and
    /// the round-robin pointer advances once per skipped cycle. With a
    /// live sink, the span-wide charge folds into the same `CoreStall`
    /// run the dense loop would have extended cycle by cycle
    /// ([`note_stall`](Self::note_stall)'s contiguity merge treats an
    /// N-cycle extension like N one-cycle ones), so the emitted
    /// run-length stream is byte-identical across cores. `WarpRetire`
    /// needs no synthesis: a warp's last drain pins the horizon, so
    /// retire scans always run densely. (The dense tick that performs a
    /// given scan may land a few cycles apart across cores, so retire
    /// *stamps* can differ while retire *counts* match — the profiler
    /// only counts them.)
    ///
    /// # Panics
    /// Panics if a ready warp could in fact issue — the caller skipped
    /// across activity, which violates the quiescence contract.
    pub fn skip_quiescent(&mut self, now: CoreCycle, span: u64) {
        self.cur_cycle = now + span - 1;
        for i in 0..self.states.len() {
            match self.states[i] {
                WarpState::WaitFence { .. } => {
                    self.stats.fence_stall_cycles += span;
                    if self.sink.is_enabled() {
                        self.note_stall(TraceCause::FenceWait, now, now + span - 1, span);
                    }
                }
                WarpState::Ready => {
                    let cause = self
                        .issue_block(i)
                        .expect("quiescent window skipped across an issuable warp");
                    self.charge(cause, now, span);
                }
                WarpState::Done => {}
            }
        }
        let n = self.states.len().max(1);
        self.rr = (self.rr + (span % n as u64) as usize) % n;
    }
}

/// Quiescence horizon of an SM. `Some(now)` whenever the SM could act
/// this cycle: the collector head can drain into a non-full LDST queue,
/// or some ready warp has no blocker (or an unfetched stream — fetching
/// could surface anything, so it is ticked densely). Otherwise the only
/// self-driven future event is the collector head's exit deadline;
/// fence acks, load data, credits and LDST drainage all arrive from
/// outside and are advertised by the components that produce them.
impl NextEvent for Sm {
    fn next_event(&self, now: u64) -> Option<u64> {
        let mut h = None;
        if let Some(exit) = self.oc.next_exit() {
            if exit > now {
                h = min_horizon(h, Some(exit));
            } else if self.ldst_has_space() {
                return Some(now);
            }
            // Ready head into a full LDST queue: unblocked by the
            // system's LDST-to-pipe pairing, not by this SM.
        }
        for i in 0..self.states.len() {
            if self.states[i] != WarpState::Ready {
                continue;
            }
            let needs_fetch = self.curs[i].is_none() && !self.cores[i].exhausted();
            if needs_fetch || self.issue_block(i).is_none() {
                return Some(now);
            }
        }
        h
    }
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("warps", &self.cores.len())
            .field("ldst", &self.ldst.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, Stripe, TsSlot};
    use orderlight::{AluOp, PimInstruction, PimOp, Reg, VecStream};

    fn pim(addr: u64) -> KernelInstr {
        KernelInstr::Pim(PimInstruction {
            op: PimOp::Load,
            addr: Addr(addr),
            slot: TsSlot(0),
            group: MemGroupId(0),
        })
    }

    fn sm_with(instrs: Vec<KernelInstr>) -> Sm {
        let warp =
            Warp::new(GlobalWarpId::new(0, 0), ChannelId(0), Box::new(VecStream::new(instrs)));
        Sm::new(SmConfig::default(), vec![warp])
    }

    fn drain_ldst(sm: &mut Sm) -> Vec<MemReq> {
        let mut v = Vec::new();
        while let Some(r) = sm.pop_ldst() {
            v.push(r);
        }
        v
    }

    #[test]
    fn pim_instructions_flow_through_oc_to_ldst() {
        let mut sm = sm_with(vec![pim(0), pim(32)]);
        for now in 0..10 {
            sm.tick(now);
        }
        let reqs = drain_ldst(&mut sm);
        assert_eq!(reqs.len(), 2);
        assert!(matches!(reqs[0], MemReq::Pim { .. }));
        assert_eq!(sm.stats().pim_issued, 2);
        assert!(sm.is_done());
    }

    #[test]
    fn orderlight_waits_for_oc_drain_but_not_for_memory() {
        let mut sm = sm_with(vec![
            pim(0),
            KernelInstr::Ordering(OrderingInstr::OrderLight { group: MemGroupId(0) }),
            pim(32),
        ]);
        let mut order = Vec::new();
        for now in 0..20 {
            sm.tick(now);
            order.extend(drain_ldst(&mut sm));
        }
        assert_eq!(order.len(), 3);
        assert!(matches!(order[0], MemReq::Pim { .. }));
        assert!(
            matches!(&order[1], MemReq::Marker(c) if matches!(c.marker, Marker::OrderLight(_))),
            "packet injected after the load left the collector"
        );
        assert!(matches!(order[2], MemReq::Pim { .. }));
        let s = sm.stats();
        assert_eq!(s.orderlights, 1);
        assert!(s.ol_wait_cycles > 0, "brief wait for the collector");
        assert!(
            s.ol_wait_cycles <= SmConfig::default().oc_latency + 2,
            "but only a few cycles, not a round trip"
        );
        assert!(sm.is_done(), "no stall waiting for memory");
    }

    #[test]
    fn fence_stalls_until_ack() {
        let mut sm = sm_with(vec![pim(0), KernelInstr::Ordering(OrderingInstr::Fence), pim(32)]);
        let mut seen = Vec::new();
        for now in 0..50 {
            sm.tick(now);
            seen.extend(drain_ldst(&mut sm));
        }
        // Load + probe are out; the post-fence PIM instruction is NOT.
        assert_eq!(seen.len(), 2);
        assert!(matches!(&seen[1], MemReq::Marker(c)
            if matches!(c.marker, Marker::FenceProbe { .. })));
        assert!(!sm.is_done());
        let stalls_before = sm.stats().fence_stall_cycles;
        assert!(stalls_before > 0);
        // Deliver the ack; the warp resumes.
        sm.deliver(MemResp::FenceAck { warp: GlobalWarpId::new(0, 0), fence_id: 1 });
        for now in 50..70 {
            sm.tick(now);
            seen.extend(drain_ldst(&mut sm));
        }
        assert_eq!(seen.len(), 3);
        assert!(sm.is_done());
    }

    #[test]
    fn host_load_compute_store_respects_dependences() {
        let a = Reg(1);
        let b = Reg(2);
        let c = Reg(3);
        let mut sm = sm_with(vec![
            KernelInstr::Load { addr: Addr(0), reg: a },
            KernelInstr::Load { addr: Addr(32), reg: b },
            KernelInstr::Compute { op: AluOp::Add, dst: c, a, b },
            KernelInstr::Store { addr: Addr(64), reg: c },
        ]);
        let mut out = Vec::new();
        for now in 0..30 {
            sm.tick(now);
            out.extend(drain_ldst(&mut sm));
        }
        // Both loads issue back to back (non-blocking), but the compute
        // and store wait for data.
        assert_eq!(out.len(), 2);
        assert!(sm.stats().reg_wait_cycles > 0);
        sm.deliver(MemResp::LoadData {
            warp: GlobalWarpId::new(0, 0),
            reg: a,
            data: Stripe::splat(30),
        });
        sm.deliver(MemResp::LoadData {
            warp: GlobalWarpId::new(0, 0),
            reg: b,
            data: Stripe::splat(12),
        });
        for now in 30..60 {
            sm.tick(now);
            out.extend(drain_ldst(&mut sm));
        }
        assert_eq!(out.len(), 3);
        match &out[2] {
            MemReq::HostWrite { data, .. } => assert_eq!(*data, Stripe::splat(42)),
            other => panic!("expected store, got {other:?}"),
        }
        assert!(sm.is_done());
        assert_eq!(sm.stats().computes, 1);
    }

    #[test]
    fn core_stall_events_conserve_the_stall_counters() {
        use orderlight_trace::RingSink;
        use std::sync::Arc;
        let ring = Arc::new(RingSink::new(100_000));
        let mut sm = sm_with(vec![pim(0), KernelInstr::Ordering(OrderingInstr::Fence), pim(32)]);
        sm.set_sink(ring.clone());
        for now in 0..50 {
            sm.tick(now);
            let _ = drain_ldst(&mut sm);
        }
        sm.deliver(MemResp::FenceAck { warp: GlobalWarpId::new(0, 0), fence_id: 1 });
        for now in 50..70 {
            sm.tick(now);
            let _ = drain_ldst(&mut sm);
        }
        sm.flush_stall_runs();
        let mut by_cause = std::collections::BTreeMap::new();
        for ev in ring.events() {
            if let TraceEvent::CoreStall { cause, cycles, .. } = ev {
                *by_cause.entry(cause).or_insert(0u64) += cycles;
            }
        }
        let s = sm.stats();
        let fence_attr = by_cause.get(&TraceCause::FenceWait).copied().unwrap_or(0)
            + by_cause.get(&TraceCause::FenceDrain).copied().unwrap_or(0);
        assert!(s.fence_stall_cycles > 0, "the fence must have stalled");
        assert_eq!(fence_attr, s.fence_stall_cycles);
        assert_eq!(
            by_cause.get(&TraceCause::Structural).copied().unwrap_or(0),
            s.structural_stall_cycles
        );
        assert_eq!(by_cause.values().sum::<u64>(), s.total_stalls(), "no cycle lost or invented");
    }

    #[test]
    fn round_robin_across_warps() {
        let w0 = Warp::new(
            GlobalWarpId::new(0, 0),
            ChannelId(0),
            Box::new(VecStream::new(vec![pim(0), pim(32)])),
        );
        let w1 = Warp::new(
            GlobalWarpId::new(0, 1),
            ChannelId(1),
            Box::new(VecStream::new(vec![pim(64), pim(96)])),
        );
        let mut sm = Sm::new(SmConfig::default(), vec![w0, w1]);
        for now in 0..20 {
            sm.tick(now);
        }
        let reqs = drain_ldst(&mut sm);
        assert_eq!(reqs.len(), 4);
        // Issue alternated between warps (round robin), so the first two
        // requests come from different warps.
        let warp_of = |r: &MemReq| r.meta().unwrap().warp;
        assert_ne!(warp_of(&reqs[0]), warp_of(&reqs[1]));
        assert!(sm.is_done());
    }
}
