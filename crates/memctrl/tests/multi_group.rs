//! Multi-group OrderLight packets (paper Section 5.3.1): a packet
//! extended with additional 4-bit memory-group IDs is a *joint* barrier
//! — e.g. when combining partial results from two PIM kernels mapped to
//! different groups — while third-party groups stay unconstrained.
//!
//! The phase-1 work is made deliberately slow (two row switches per
//! group) so that "was held back by the barrier" versus "was free to
//! issue early" is separated by dozens of cycles, not scheduling noise.

use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::message::{Marker, MarkerCopy, MemReq, ReqMeta};
use orderlight::packet::OrderLightPacket;
use orderlight::types::{BankId, ChannelId, GlobalWarpId, MemGroupId, TsSlot};
use orderlight::{PimInstruction, PimOp};
use orderlight_hbm::{Channel, TimingParams};
use orderlight_memctrl::{McConfig, MemoryController};
use orderlight_pim::{PimUnit, TsSize};

fn controller() -> (MemoryController, AddressMapping) {
    let mapping = AddressMapping::hbm_default();
    // Four groups of four banks: two PIM groups plus a bystander.
    let groups = GroupMap::new(16, 4).expect("valid");
    let cfg = McConfig { mapping: mapping.clone(), groups, trace: true, ..McConfig::default() };
    let mc = MemoryController::new(
        cfg,
        Channel::new(TimingParams::hbm_table1(), 16, 2048),
        PimUnit::new(TsSize::Half, 2048, 16),
    );
    (mc, mapping)
}

fn pim_to(
    mapping: &AddressMapping,
    op: PimOp,
    bank: u8,
    row: u64,
    col: u64,
    group: u8,
    seq: u64,
) -> MemReq {
    let addr = mapping
        .compose(ChannelId(0), mapping.bank_base_offset(BankId(bank)) + row * 2048 + col * 32);
    MemReq::Pim {
        instr: PimInstruction { op, addr, slot: TsSlot(col as u16), group: MemGroupId(group) },
        meta: ReqMeta { warp: GlobalWarpId::new(0, 0), seq },
    }
}

fn ol(pkt: OrderLightPacket) -> MemReq {
    MemReq::Marker(MarkerCopy { marker: Marker::OrderLight(pkt), total_copies: 1 })
}

fn drain(mc: &mut MemoryController) {
    let mut now = 0;
    while !mc.is_idle() {
        mc.tick(now);
        now += 1;
        assert!(now < 200_000, "controller wedged");
    }
}

/// Issue cycle of the traced command with sequence number `seq`.
fn cycle_of(mc: &MemoryController, seq: u64) -> u64 {
    mc.trace()
        .iter()
        .find(|r| r.seq == Some(seq))
        .unwrap_or_else(|| panic!("request {seq} never issued"))
        .cycle
}

#[test]
fn multi_group_packet_is_a_joint_barrier_and_spares_the_third_group() {
    let (mut mc, mapping) = controller();
    // Phase 1: two rows' worth of loads in each PIM group — ~90 memory
    // cycles of work per group. Group 1's work is made slower so the
    // joint barrier visibly holds group 0's store past group 0's own
    // last load.
    let mut seq = 0;
    for row in 0..2 {
        for col in 0..4 {
            seq += 1;
            mc.push(pim_to(&mapping, PimOp::Load, 0, row, col, 0, seq));
        }
    }
    let g0_last_load = seq;
    for row in 0..3 {
        for col in 0..4 {
            seq += 1;
            mc.push(pim_to(&mapping, PimOp::Load, 4, row, col, 1, seq));
        }
    }
    let g1_last_load = seq;
    // One packet constraining groups 0 AND 1.
    let pkt = OrderLightPacket::with_groups(ChannelId(0), MemGroupId(0), &[MemGroupId(1)], 1)
        .expect("two groups fit");
    mc.push(ol(pkt));
    // Phase 2: stores in both groups + a bystander load in group 2.
    let g0_store = seq + 1;
    mc.push(pim_to(&mapping, PimOp::Store, 0, 3, 0, 0, g0_store));
    let g1_store = seq + 2;
    mc.push(pim_to(&mapping, PimOp::Store, 4, 3, 0, 1, g1_store));
    let bystander = seq + 3;
    mc.push(pim_to(&mapping, PimOp::Load, 8, 0, 0, 2, bystander));
    drain(&mut mc);

    // The joint barrier: group 0's store waits for group *1*'s last
    // load, which finishes long after group 0's own loads.
    assert!(cycle_of(&mc, g1_last_load) > cycle_of(&mc, g0_last_load) + 40);
    assert!(
        cycle_of(&mc, g0_store) > cycle_of(&mc, g1_last_load),
        "group-0 store must wait for group-1's pre-packet work (joint barrier)"
    );
    assert!(cycle_of(&mc, g1_store) > cycle_of(&mc, g1_last_load));
    // The bystander group was never constrained: it issued while the
    // slow phase-1 work was still in progress.
    assert!(
        cycle_of(&mc, bystander) < cycle_of(&mc, g1_last_load),
        "group 2 must not be constrained by the group-0/1 packet"
    );
    assert_eq!(mc.stats().ol_packets, 1);
    assert_eq!(mc.stats().sanity_violations, 0);
}

#[test]
fn single_group_packet_does_not_constrain_the_other_pim_group() {
    let (mut mc, mapping) = controller();
    // Slow phase 1 in group 0 only (two row switches).
    let mut seq = 0;
    for row in 0..2 {
        for col in 0..4 {
            seq += 1;
            mc.push(pim_to(&mapping, PimOp::Load, 0, row, col, 0, seq));
        }
    }
    let g0_last_load = seq;
    mc.push(ol(OrderLightPacket::new(ChannelId(0), MemGroupId(0), 1)));
    let g0_store = seq + 1;
    mc.push(pim_to(&mapping, PimOp::Store, 0, 2, 0, 0, g0_store));
    let g1_store = seq + 2;
    mc.push(pim_to(&mapping, PimOp::Store, 4, 0, 0, 1, g1_store));
    drain(&mut mc);

    assert!(cycle_of(&mc, g0_store) > cycle_of(&mc, g0_last_load), "group 0 is ordered");
    assert!(
        cycle_of(&mc, g1_store) < cycle_of(&mc, g0_last_load),
        "the group-1 store must slip past the group-0 barrier"
    );
}
