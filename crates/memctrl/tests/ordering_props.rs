//! Randomized test of the controller's ordering guarantee: for any
//! random multi-phase PIM program, the final DRAM contents under
//! OrderLight equal a sequential interpretation — i.e. the FR-FCFS
//! scheduler, free as it is to chase row hits, never reorders *across*
//! a packet within the constrained group.
//!
//! Programs come from the in-tree deterministic PRNG
//! ([`orderlight::rng::Rng`]) so every run exercises the same cases.

use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::message::{Marker, MarkerCopy, MemReq, ReqMeta};
use orderlight::packet::OrderLightPacket;
use orderlight::rng::Rng;
use orderlight::types::{ChannelId, GlobalWarpId, MemGroupId, Stripe, TsSlot};
use orderlight::{AluOp, PimInstruction, PimOp};
use orderlight_hbm::{Channel, TimingParams};
use orderlight_memctrl::{McConfig, MemoryController};
use orderlight_pim::{PimUnit, TsSize};
use std::collections::HashMap;

/// One random phase over a 4-slot tile.
#[derive(Debug, Clone, Copy)]
enum PhaseKind {
    Load(u8),
    FetchAdd(u8),
    Store(u8),
}

fn phase(rng: &mut Rng) -> PhaseKind {
    let row = rng.gen_range(6) as u8;
    match rng.gen_range(3) {
        0 => PhaseKind::Load(row),
        1 => PhaseKind::FetchAdd(row),
        _ => PhaseKind::Store(row),
    }
}

#[test]
fn orderlight_forces_sequential_semantics() {
    let mut rng = Rng::new(0x0bdf);
    for case in 0..64 {
        let n_phases = 1 + rng.gen_index(23);
        let phases: Vec<PhaseKind> = (0..n_phases).map(|_| phase(&mut rng)).collect();

        let mapping = AddressMapping::hbm_default();
        let cfg = McConfig {
            mapping: mapping.clone(),
            groups: GroupMap::default(),
            ..McConfig::default()
        };
        let channel = Channel::new(TimingParams::hbm_table1(), 16, 2048);
        let pim = PimUnit::new(TsSize::Sixteenth, 2048, 1);
        let mut mc = MemoryController::new(cfg, channel, pim);

        // Init six rows of distinct data (rows of bank 0, channel 0).
        let addr =
            |row: u8, col: u64| mapping.compose(ChannelId(0), u64::from(row) * 2048 + col * 32);
        let mut golden_mem: HashMap<u64, Stripe> = HashMap::new();
        for row in 0..6u8 {
            for col in 0..4u64 {
                let a = addr(row, col);
                let v = Stripe::splat(u32::from(row) * 100 + col as u32 + 1);
                let loc = mapping.decode(a);
                mc.channel_mut().store_mut().write(loc.bank, loc.row, loc.col, v);
                golden_mem.insert(a.0, v);
            }
        }

        // Lower the phases into requests with an OrderLight packet after
        // each phase, and interpret them sequentially for the golden.
        let warp = GlobalWarpId::new(0, 0);
        let mut golden_ts = [Stripe::default(); 4];
        let mut reqs = Vec::new();
        let mut seq = 0u64;
        let mut number = 0u32;
        for ph in &phases {
            for slot in 0..4u64 {
                seq += 1;
                let (op, row) = match *ph {
                    PhaseKind::Load(r) => (PimOp::Load, r),
                    PhaseKind::FetchAdd(r) => (PimOp::Compute(AluOp::Add), r),
                    PhaseKind::Store(r) => (PimOp::Store, r),
                };
                let a = addr(row, slot);
                reqs.push(MemReq::Pim {
                    instr: PimInstruction {
                        op,
                        addr: a,
                        slot: TsSlot(slot as u16),
                        group: MemGroupId(0),
                    },
                    meta: ReqMeta { warp, seq },
                });
                // Golden sequential semantics.
                let mem = golden_mem.get(&a.0).copied().unwrap_or_default();
                match op {
                    PimOp::Load => golden_ts[slot as usize] = mem,
                    PimOp::Compute(alu) => {
                        golden_ts[slot as usize] = alu.apply(golden_ts[slot as usize], mem);
                    }
                    PimOp::Store => {
                        golden_mem.insert(a.0, golden_ts[slot as usize]);
                    }
                    PimOp::Execute(_) => unreachable!(),
                }
            }
            number += 1;
            reqs.push(MemReq::Marker(MarkerCopy {
                marker: Marker::OrderLight(OrderLightPacket::new(
                    ChannelId(0),
                    MemGroupId(0),
                    number,
                )),
                total_copies: 1,
            }));
        }

        // Feed and drain.
        let mut now = 0u64;
        let mut iter = reqs.into_iter().peekable();
        while iter.peek().is_some() || !mc.is_idle() {
            while let Some(req) = iter.peek() {
                if !mc.can_accept(req) {
                    break;
                }
                mc.push(iter.next().expect("peeked"));
            }
            mc.tick(now);
            now += 1;
            assert!(now < 2_000_000, "case {case}: controller wedged");
        }

        // The simulated DRAM must match the sequential interpretation.
        for (a, v) in &golden_mem {
            let loc = mapping.decode(orderlight::types::Addr(*a));
            assert_eq!(
                mc.channel().store().read(loc.bank, loc.row, loc.col),
                *v,
                "case {case}: address {a:#x} diverged from sequential semantics"
            );
        }
        assert_eq!(mc.stats().sanity_violations, 0);
    }
}
