//! The controller's read/write transaction queues.
//!
//! Each queue holds requests in arrival order, interleaved with marker
//! copies (OrderLight packets). A marker copy blocks *same-group*
//! requests behind it from being dequeued; requests of other groups pass
//! freely. The scheduler consumes a marker copy once no same-group
//! request remains ahead of it in the queue.

use orderlight::mapping::Location;
use orderlight::message::{Marker, MarkerCopy, ReqMeta};
use orderlight::slab::SlabRef;
use orderlight::types::MemGroupId;
use std::collections::VecDeque;

/// Whether a marker constrains requests of memory group `group`.
///
/// OrderLight packets and Louvre release markers constrain exactly the
/// groups they name; fence probes constrain nothing at the scheduler
/// (the baseline fence does *not* stop the controller from reordering —
/// that insufficiency is one of the paper's motivations; probes only
/// generate acknowledgements).
#[must_use]
pub fn marker_constrains(copy: &MarkerCopy, group: MemGroupId) -> bool {
    match &copy.marker {
        Marker::OrderLight(p) | Marker::Release(p) => p.groups().any(|g| g == group),
        Marker::FenceProbe { .. } => false,
    }
}

/// A queued request with its decoded location (`None` for execute-only
/// PIM commands, which touch no DRAM).
///
/// The request body lives in the controller's packet arena; the queue
/// entry carries its [`SlabRef`] handle plus the fields the FR-FCFS
/// scan reads every cycle (`pim`, `meta`, `loc`, `group`, `arrival`),
/// denormalized here so candidate scanning never dereferences the
/// arena. The body is resolved exactly once, at dequeue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingReq {
    /// Handle of the request body in the controller's arena.
    pub req: SlabRef,
    /// Whether the request is a PIM instruction (seq-order gating).
    pub pim: bool,
    /// Issue metadata (warp + per-warp sequence number).
    pub meta: ReqMeta,
    /// Decoded physical location of its column access, if any.
    pub loc: Option<Location>,
    /// Memory group for ordering purposes.
    pub group: MemGroupId,
    /// Arrival stamp (FR-FCFS tiebreak).
    pub arrival: u64,
}

/// One entry of a transaction queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueEntry {
    /// A memory request (PIM or host).
    Request(PendingReq),
    /// An ordering-marker copy. `offered` records whether it has been
    /// handed to the convergence FSM; the copy keeps blocking its
    /// sub-path until *all* copies have merged (paper Figure 9), at which
    /// point [`TransQueue::pop_marker_by_key`] removes it.
    Marker {
        /// The marker copy.
        copy: MarkerCopy,
        /// Whether the copy has been offered to the merge FSM.
        offered: bool,
    },
}

/// A bounded FIFO transaction queue with marker-aware dequeue.
#[derive(Debug, Clone)]
pub struct TransQueue {
    entries: VecDeque<QueueEntry>,
    capacity: usize,
    occupancy_integral: u64,
    ticks: u64,
}

impl TransQueue {
    /// Creates a queue bounded to `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TransQueue { entries: VecDeque::new(), capacity, occupancy_integral: 0, ticks: 0 }
    }

    /// Whether another entry can be accepted.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Occupancy as a fraction of capacity (write-drain hysteresis input).
    #[must_use]
    pub fn fill_fraction(&self) -> f64 {
        self.entries.len() as f64 / self.capacity as f64
    }

    /// Appends an entry.
    ///
    /// # Panics
    /// Panics if the queue is full — callers must check
    /// [`has_space`](Self::has_space); the memory pipe applies
    /// backpressure upstream.
    pub fn push(&mut self, entry: QueueEntry) {
        assert!(self.has_space(), "transaction queue overflow");
        self.entries.push_back(entry);
    }

    /// Records one cycle of occupancy statistics.
    pub fn record_tick(&mut self) {
        self.record_ticks(1);
    }

    /// Records `n` cycles of occupancy statistics at the current
    /// occupancy in one step — the event core's closed-form equivalent
    /// of `n` calls to [`record_tick`](Self::record_tick) across a
    /// window in which the queue does not change.
    pub fn record_ticks(&mut self, n: u64) {
        self.occupancy_integral += self.entries.len() as u64 * n;
        self.ticks += n;
    }

    /// Mean occupancy over recorded ticks.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupancy_integral as f64 / self.ticks as f64
        }
    }

    /// Index of the first marker copy, if any.
    fn first_marker_pos(&self) -> Option<usize> {
        self.entries.iter().position(|e| matches!(e, QueueEntry::Marker { .. }))
    }

    /// Returns the first marker copy if it is *ready* (no request it
    /// constrains remains ahead of it in this queue) and has not yet been
    /// offered to the merge FSM.
    #[must_use]
    pub fn ready_unoffered_marker(&self) -> Option<&MarkerCopy> {
        let pos = self.first_marker_pos()?;
        let QueueEntry::Marker { copy, offered } = &self.entries[pos] else { unreachable!() };
        if *offered {
            return None;
        }
        let blocked = self.entries.iter().take(pos).any(|e| match e {
            QueueEntry::Request(p) => marker_constrains(copy, p.group),
            QueueEntry::Marker { .. } => false,
        });
        if blocked {
            None
        } else {
            Some(copy)
        }
    }

    /// Marks the first marker copy as offered to the merge FSM.
    ///
    /// # Panics
    /// Panics if there is no marker in the queue.
    pub fn mark_first_marker_offered(&mut self) {
        let pos = self.first_marker_pos().expect("no marker to mark");
        let QueueEntry::Marker { offered, .. } = &mut self.entries[pos] else { unreachable!() };
        *offered = true;
    }

    /// Removes the first marker copy if it matches `key` (called on every
    /// sub-path queue when the merge fires). Returns whether a copy was
    /// removed.
    pub fn pop_marker_by_key(&mut self, key: &orderlight::message::MarkerKey) -> bool {
        let Some(pos) = self.first_marker_pos() else { return false };
        let QueueEntry::Marker { copy, .. } = &self.entries[pos] else { unreachable!() };
        if copy.marker.key() != *key {
            return false;
        }
        self.entries.remove(pos);
        true
    }

    /// Iterates over dequeue-eligible requests (with their queue index),
    /// oldest first, scanning at most `scan_depth` eligible entries. A
    /// request is eligible if no marker constraining its group sits ahead
    /// of it and `group_blocked` is false for its group (the OrderLight
    /// flag state).
    ///
    /// `elide` is the drop-edge mutation hook: requests of that group
    /// ignore in-queue markers entirely (the barrier half of the mutation
    /// lives in `GroupOrdering`). It is `None` in every correct
    /// configuration.
    pub fn eligible<'q>(
        &'q self,
        group_blocked: impl Fn(MemGroupId) -> bool + 'q,
        elide: Option<MemGroupId>,
        scan_depth: usize,
    ) -> impl Iterator<Item = (usize, &'q PendingReq)> + 'q {
        let mut blocking: Vec<&MarkerCopy> = Vec::new();
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| match e {
                QueueEntry::Marker { copy, .. } => {
                    blocking.push(copy);
                    None
                }
                QueueEntry::Request(p) => {
                    if group_blocked(p.group)
                        || (elide != Some(p.group)
                            && blocking.iter().any(|m| marker_constrains(m, p.group)))
                    {
                        None
                    } else {
                        Some((i, p))
                    }
                }
            })
            .take(scan_depth)
    }

    /// Removes the request at `index`.
    ///
    /// # Panics
    /// Panics if `index` does not hold a request.
    pub fn remove_request(&mut self, index: usize) -> PendingReq {
        match self.entries.remove(index) {
            Some(QueueEntry::Request(p)) => p,
            other => panic!("index {index} did not hold a request: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::fsm::diverge;
    use orderlight::packet::OrderLightPacket;
    use orderlight::slab::Slab;
    use orderlight::types::{ChannelId, GlobalWarpId};

    fn req(group: u8, seq: u64) -> QueueEntry {
        // TransQueue never dereferences the body handle — the scan runs
        // entirely on the denormalized fields — so queue-mechanics tests
        // use a placeholder handle from a throwaway arena.
        QueueEntry::Request(PendingReq {
            req: Slab::new().insert(()),
            pim: true,
            meta: ReqMeta { warp: GlobalWarpId(0), seq },
            loc: None,
            group: MemGroupId(group),
            arrival: seq,
        })
    }

    fn ol_copy(group: u8, number: u32) -> QueueEntry {
        let marker =
            Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(group), number));
        QueueEntry::Marker { copy: diverge(marker, 2).pop().unwrap(), offered: false }
    }

    #[test]
    fn marker_blocks_same_group_behind_it() {
        let mut q = TransQueue::new(8);
        q.push(req(0, 1));
        q.push(ol_copy(0, 1));
        q.push(req(0, 2));
        q.push(req(1, 3));
        let eligible: Vec<u64> =
            q.eligible(|_| false, None, usize::MAX).map(|(_, p)| p.arrival).collect();
        // Request 2 (group 0, behind the marker) is blocked; request 3
        // (group 1) passes freely.
        assert_eq!(eligible, vec![1, 3]);
    }

    #[test]
    fn elided_group_ignores_markers() {
        let mut q = TransQueue::new(8);
        q.push(req(0, 1));
        q.push(ol_copy(0, 1));
        q.push(req(0, 2));
        let eligible: Vec<u64> = q
            .eligible(|_| false, Some(MemGroupId(0)), usize::MAX)
            .map(|(_, p)| p.arrival)
            .collect();
        // With group 0's edge elided, request 2 passes the marker.
        assert_eq!(eligible, vec![1, 2]);
    }

    #[test]
    fn marker_ready_only_when_group_drained() {
        let mut q = TransQueue::new(8);
        q.push(req(0, 1));
        q.push(ol_copy(0, 1));
        assert!(q.ready_unoffered_marker().is_none(), "request 1 still ahead");
        let idx = q.eligible(|_| false, None, usize::MAX).next().unwrap().0;
        let p = q.remove_request(idx);
        assert_eq!(p.arrival, 1);
        let copy = q.ready_unoffered_marker().unwrap().clone();
        assert_eq!(copy.total_copies, 2);
        q.mark_first_marker_offered();
        assert!(q.ready_unoffered_marker().is_none(), "offered copies are not re-offered");
        // The copy stays in the queue, still blocking, until the merge
        // fires and it is removed by key.
        assert_eq!(q.eligible(|_| false, None, usize::MAX).count(), 0);
        assert!(q.pop_marker_by_key(&copy.marker.key()));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn other_group_requests_do_not_hold_marker() {
        let mut q = TransQueue::new(8);
        q.push(req(1, 1));
        q.push(ol_copy(0, 1));
        assert!(q.ready_unoffered_marker().is_some(), "group-1 request does not constrain");
    }

    #[test]
    fn fence_probe_constrains_nothing() {
        let probe =
            Marker::FenceProbe { warp: GlobalWarpId(0), fence_id: 1, channel: ChannelId(0) };
        let copy = diverge(probe, 1).pop().unwrap();
        assert!(!marker_constrains(&copy, MemGroupId(0)));
    }

    #[test]
    fn group_flag_blocks_dequeue() {
        let mut q = TransQueue::new(8);
        q.push(req(0, 1));
        q.push(req(1, 2));
        let eligible: Vec<u64> =
            q.eligible(|g| g == MemGroupId(0), None, usize::MAX).map(|(_, p)| p.arrival).collect();
        assert_eq!(eligible, vec![2]);
    }

    #[test]
    fn scan_depth_limits_candidates() {
        let mut q = TransQueue::new(8);
        for i in 0..6 {
            q.push(req(0, i));
        }
        assert_eq!(q.eligible(|_| false, None, 3).count(), 3);
    }

    #[test]
    fn second_marker_waits_for_first() {
        let mut q = TransQueue::new(8);
        q.push(ol_copy(0, 1));
        q.push(ol_copy(0, 2));
        let first = q.ready_unoffered_marker().unwrap().clone();
        let Marker::OrderLight(p) = &first.marker else { panic!("expected OrderLight") };
        assert_eq!(p.number(), 1);
        assert!(q.pop_marker_by_key(&first.marker.key()));
        let Marker::OrderLight(p) = &q.ready_unoffered_marker().unwrap().marker else {
            panic!("expected OrderLight")
        };
        assert_eq!(p.number(), 2);
    }

    #[test]
    fn capacity_and_occupancy_stats() {
        let mut q = TransQueue::new(2);
        assert!(q.has_space());
        q.push(req(0, 1));
        q.record_tick();
        q.push(req(0, 2));
        q.record_tick();
        assert!(!q.has_space());
        assert!((q.fill_fraction() - 1.0).abs() < f64::EPSILON);
        assert!((q.mean_occupancy() - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = TransQueue::new(1);
        q.push(req(0, 1));
        q.push(req(0, 2));
    }
}
