//! Scheduler-side ordering state, behind the [`OrderingBackend`] trait.
//!
//! The building blocks ([`GroupOrdering`] barriers, the [`FenceTracker`])
//! are composed into five pluggable backends — see [`OrderingKind`] —
//! that the [`crate::MemoryController`] drives through a fixed set of
//! hooks (ingress, dequeue eligibility, issue, retire, marker merge).

use crate::queues::PendingReq;
use crate::txn::Transaction;
use orderlight::fsm::MergeFsm;
use orderlight::message::{Marker, MarkerCopy, MarkerKey, ReqMeta};
use orderlight::packet::OrderLightPacket;
use orderlight::types::{GlobalWarpId, MemGroupId};
use std::collections::{HashMap, VecDeque};

/// Maximum memory groups addressable by the 4-bit group-ID field.
pub const MAX_GROUPS: usize = 16;

/// One active OrderLight barrier: the packet's constrained groups and
/// how many pre-packet requests are still dequeued-but-unissued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Barrier {
    /// Bitmask of constrained memory groups.
    mask: u16,
    /// Pre-packet requests (across all constrained groups) still to be
    /// issued to the DRAM.
    remaining: u64,
}

/// Per-memory-group OrderLight enforcement (paper Section 5.3.2).
///
/// For each group the scheduler keeps a *request counter* (requests
/// dequeued into bank command queues but not yet issued to the DRAM).
/// When an OrderLight packet merges at the scheduler stage, a *barrier*
/// is raised over the packet's group set, initialised with the combined
/// in-flight count; requests of a flagged group are not scheduled until
/// every barrier covering the group has drained. A multi-group packet
/// (partial results of two PIM kernels, Section 5.3.1) therefore orders
/// requests *across* its groups: nothing behind the packet in any of
/// its groups issues before everything ahead of it in all of them.
#[derive(Debug, Clone)]
pub struct GroupOrdering {
    inflight: [u64; MAX_GROUPS],
    /// Sum of `inflight` — kept so [`GroupOrdering::is_idle`] (on the
    /// event core's per-hop horizon path) is O(1) instead of a scan
    /// over every group.
    inflight_total: u64,
    barriers: Vec<Barrier>,
    merge: MergeFsm,
    last_number: [Option<u32>; MAX_GROUPS],
    sanity_violations: u64,
    flags_set: u64,
    packets_merged: u64,
    /// Mutation knob (fault injection): a group whose contribution to
    /// merged-packet barriers is deliberately ignored, dropping its
    /// ordering edge. `None` in every normal run.
    elide_group: Option<MemGroupId>,
    /// How many times the elided group actually dropped an edge.
    edges_dropped: u64,
}

impl GroupOrdering {
    /// Creates idle ordering state.
    #[must_use]
    pub fn new() -> Self {
        GroupOrdering {
            inflight: [0; MAX_GROUPS],
            inflight_total: 0,
            barriers: Vec::new(),
            merge: MergeFsm::new(),
            last_number: [None; MAX_GROUPS],
            sanity_violations: 0,
            flags_set: 0,
            packets_merged: 0,
            elide_group: None,
            edges_dropped: 0,
        }
    }

    /// Activates the drop-one-ordering-edge mutation: merged packets no
    /// longer raise (or extend) barriers over `group`, and the
    /// controller's queue scan ignores queued markers for the group (see
    /// [`GroupOrdering::elide_group`]). The resulting schedule is
    /// *incorrect by construction* — this exists only so the
    /// ordering-violation oracle can be proven to fire.
    pub fn set_elide_group(&mut self, group: MemGroupId) {
        self.elide_group = Some(group);
    }

    /// The mutated group, if the drop-edge mutation is active. The
    /// controller threads this into the transaction-queue scan so
    /// in-queue marker copies stop constraining the group too.
    #[must_use]
    pub fn elide_group(&self) -> Option<MemGroupId> {
        self.elide_group
    }

    /// Ordering edges dropped by the mutation so far.
    #[must_use]
    pub fn edges_dropped(&self) -> u64 {
        self.edges_dropped
    }

    /// Whether requests of `group` are currently blocked by a barrier.
    #[must_use]
    pub fn is_blocked(&self, group: MemGroupId) -> bool {
        let bit = 1u16 << group.0;
        self.barriers.iter().any(|b| b.mask & bit != 0)
    }

    /// Records a request of `group` being dequeued into a bank command
    /// queue.
    pub fn on_dequeue(&mut self, group: MemGroupId) {
        self.inflight[group.index()] += 1;
        self.inflight_total += 1;
    }

    /// Records a request of `group` being issued to the DRAM (or, for an
    /// execute-only command, to the PIM unit); drains every barrier
    /// covering the group and clears those that complete.
    pub fn on_issue(&mut self, group: MemGroupId) {
        let g = group.index();
        debug_assert!(self.inflight[g] > 0, "issue without matching dequeue");
        self.inflight[g] -= 1;
        self.inflight_total -= 1;
        let bit = 1u16 << group.0;
        for b in &mut self.barriers {
            if b.mask & bit != 0 {
                debug_assert!(b.remaining > 0, "barrier drained twice");
                b.remaining -= 1;
            }
        }
        self.barriers.retain(|b| b.remaining > 0);
    }

    /// Feeds one OrderLight marker copy popped from a transaction queue.
    ///
    /// Returns the merged packet when the final copy arrives; at that
    /// point a barrier over the packet's groups is raised (if anything
    /// is in flight) and the packet number is sanity-checked for
    /// per-group monotonicity.
    pub fn on_marker_copy(&mut self, copy: &MarkerCopy) -> Option<OrderLightPacket> {
        let merged = self.merge.on_copy(copy)?;
        let (Marker::OrderLight(packet) | Marker::Release(packet)) = merged else {
            return None; // fence probes are handled by the FenceTracker
        };
        self.packets_merged += 1;
        let mut mask = 0u16;
        let mut remaining = 0u64;
        for group in packet.groups() {
            let g = group.index();
            if let Some(last) = self.last_number[g] {
                if packet.number() <= last {
                    self.sanity_violations += 1;
                }
            }
            self.last_number[g] = Some(packet.number());
            if self.elide_group == Some(group) {
                // Mutation: this group's edge is dropped — its in-flight
                // requests do not enter the barrier and the barrier will
                // not block the group's followers.
                self.edges_dropped += 1;
                continue;
            }
            if mask & (1 << group.0) == 0 {
                remaining += self.inflight[g];
            }
            mask |= 1 << group.0;
        }
        if remaining > 0 {
            self.barriers.push(Barrier { mask, remaining });
            self.flags_set += 1;
        }
        Some(packet)
    }

    /// In-flight (dequeued but unissued) count for `group`.
    #[must_use]
    pub fn inflight(&self, group: MemGroupId) -> u64 {
        self.inflight[group.index()]
    }

    /// Completed packet merges.
    #[must_use]
    pub fn packets_merged(&self) -> u64 {
        self.packets_merged
    }

    /// How many barriers actually had to block something.
    #[must_use]
    pub fn flags_set(&self) -> u64 {
        self.flags_set
    }

    /// Packet-number monotonicity violations observed.
    #[must_use]
    pub fn sanity_violations(&self) -> u64 {
        self.sanity_violations
    }

    /// Whether all state is drained (no barriers, no in-flight, no
    /// partial merges).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.inflight_total,
            self.inflight.iter().sum::<u64>(),
            "inflight_total counter out of sync"
        );
        self.barriers.is_empty() && self.inflight_total == 0 && self.merge.pending() == 0
    }
}

impl Default for GroupOrdering {
    fn default() -> Self {
        GroupOrdering::new()
    }
}

/// A fence awaiting acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingFence {
    warp: GlobalWarpId,
    fence_id: u64,
    /// Ack fires once the warp's issued count reaches this target.
    target_issued: u64,
}

/// Tracks per-warp request progress to generate fence acknowledgements.
///
/// The baseline fence semantics (paper Section 6, "Baseline
/// Limitations"): the warp may not proceed until all of its prior memory
/// requests have been issued to the memory. The tracker counts, per warp,
/// requests *arrived* at the controller and requests *issued* to the
/// DRAM; a probe snapshots the arrived count and is acknowledged once the
/// issued count catches up.
#[derive(Debug, Clone, Default)]
pub struct FenceTracker {
    arrived: HashMap<GlobalWarpId, u64>,
    issued: HashMap<GlobalWarpId, u64>,
    pending: Vec<PendingFence>,
    acks: u64,
}

impl FenceTracker {
    /// Creates an idle tracker.
    #[must_use]
    pub fn new() -> Self {
        FenceTracker::default()
    }

    /// Records a request from `warp` arriving at the controller.
    pub fn on_arrival(&mut self, warp: GlobalWarpId) {
        *self.arrived.entry(warp).or_insert(0) += 1;
    }

    /// Registers a fence probe. Returns `true` if it can be acknowledged
    /// immediately (nothing outstanding).
    pub fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool {
        let target = self.arrived.get(&warp).copied().unwrap_or(0);
        if self.issued.get(&warp).copied().unwrap_or(0) >= target {
            self.acks += 1;
            true
        } else {
            self.pending.push(PendingFence { warp, fence_id, target_issued: target });
            false
        }
    }

    /// Records a request from `warp` being issued to the DRAM; returns
    /// the `(warp, fence_id)` of every fence that thereby completes.
    pub fn on_issue(&mut self, warp: GlobalWarpId) -> Vec<(GlobalWarpId, u64)> {
        let issued = self.issued.entry(warp).or_insert(0);
        *issued += 1;
        let now = *issued;
        let mut done = Vec::new();
        self.pending.retain(|p| {
            if p.warp == warp && now >= p.target_issued {
                done.push((p.warp, p.fence_id));
                false
            } else {
                true
            }
        });
        self.acks += done.len() as u64;
        done
    }

    /// Number of fences still awaiting acknowledgement.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Requests from `warp` arrived at the controller but not yet issued
    /// to the DRAM.
    #[must_use]
    pub fn outstanding(&self, warp: GlobalWarpId) -> u64 {
        let arrived = self.arrived.get(&warp).copied().unwrap_or(0);
        let issued = self.issued.get(&warp).copied().unwrap_or(0);
        arrived.saturating_sub(issued)
    }

    /// Total acknowledgements generated.
    #[must_use]
    pub fn acks(&self) -> u64 {
        self.acks
    }
}

/// Which pluggable ordering backend a controller enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// OrderLight in-band group packets with per-group barrier flags
    /// (paper Section 5.3.2).
    OrderLight,
    /// The core-centric baseline: the controller reorders freely and only
    /// answers fence probes (paper Section 6, "Baseline Limitations").
    Fence,
    /// The Kim et al. sequence-number baseline: strict per-warp
    /// dequeue-and-issue order with buffer credits returned per retired
    /// request.
    SeqNum,
    /// Louvre-style versioned releases (Kumar et al.): in-band release
    /// markers stamped with per-group versions, held at the scheduler
    /// until older-version requests drain — no per-group flag broadcast.
    LouvreVersioned,
    /// Perach et al. controller-enforced strong consistency for
    /// bulk-bitwise PIM: per-group epoch barriers drain every older
    /// request (reads before PIM writes retire) with no in-band
    /// primitive from the core at all.
    BulkBitwiseStrong,
}

impl OrderingKind {
    /// Every implemented backend, in sweep order.
    pub const ALL: [OrderingKind; 5] = [
        OrderingKind::OrderLight,
        OrderingKind::Fence,
        OrderingKind::SeqNum,
        OrderingKind::LouvreVersioned,
        OrderingKind::BulkBitwiseStrong,
    ];

    /// Stable lowercase label (CLI flags, sweep CSV `ordering` column).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OrderingKind::OrderLight => "orderlight",
            OrderingKind::Fence => "fence",
            OrderingKind::SeqNum => "seqnum",
            OrderingKind::LouvreVersioned => "louvre",
            OrderingKind::BulkBitwiseStrong => "bulk",
        }
    }

    /// Instantiates the backend.
    #[must_use]
    pub fn build(self) -> Box<dyn OrderingBackend> {
        match self {
            OrderingKind::OrderLight => Box::new(OrderLightBackend::new()),
            OrderingKind::Fence => Box::new(FenceBackend::new()),
            OrderingKind::SeqNum => Box::new(SeqNumBackend::new()),
            OrderingKind::LouvreVersioned => Box::new(LouvreVersioned::new()),
            OrderingKind::BulkBitwiseStrong => Box::new(BulkBitwiseStrong::new()),
        }
    }
}

impl std::fmt::Display for OrderingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters every backend snapshots into [`crate::McStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BackendStats {
    /// In-band ordering markers merged at the scheduler stage.
    pub packets_merged: u64,
    /// Barriers/holds that actually had to block something.
    pub flags_set: u64,
    /// Internal consistency violations the backend observed (non-monotonic
    /// packet numbers, out-of-order retires, ...). Non-zero fails
    /// `orderlight check`.
    pub sanity_violations: u64,
}

/// What the backend decided about an offered marker copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkerAction {
    /// Copy absorbed; sibling copies are still outstanding. The copy
    /// keeps blocking its sub-path.
    Pending,
    /// All copies collected and the marker's condition is already met:
    /// the controller pops every queued copy now.
    Merged(OrderLightPacket),
    /// All copies collected but the marker still holds its barrier; the
    /// copies stay queued (still blocking) until
    /// [`OrderingBackend::take_released`] reports the marker drained.
    Held,
}

/// What a retiring transaction owes the core.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RetireOutcome {
    /// Return one buffer credit to the issuing warp (SeqNum mode).
    pub credit: bool,
    /// Fence acknowledgements completed by this retire.
    pub fence_acks: Vec<(GlobalWarpId, u64)>,
}

/// The pluggable ordering policy a [`crate::MemoryController`] enforces.
///
/// The controller calls the hooks at fixed points of its pipeline:
///
/// * **ingress** — [`on_arrival`](Self::on_arrival) for every queued
///   request (returning an optional synthetic barrier for the trace),
///   [`on_marker_ingress`](Self::on_marker_ingress) for in-band markers,
///   [`on_probe`](Self::on_probe) for fence probes;
/// * **dequeue eligibility** — [`group_blocked`](Self::group_blocked)
///   (queue-scan flag state) and [`dequeue_allowed`](Self::dequeue_allowed)
///   (per-request gate), then [`on_dequeue`](Self::on_dequeue);
/// * **issue** — [`issue_allowed`](Self::issue_allowed) at the bank /
///   exec queue head, then [`on_retire`](Self::on_retire) once the
///   column or execute command goes out;
/// * **marker merge** — [`on_marker`](Self::on_marker) when a copy
///   reaches the scheduler stage, [`take_released`](Self::take_released)
///   for held markers whose condition has since drained;
/// * **quiescence** — [`is_idle`](Self::is_idle) feeds the controller's
///   `NextEvent` horizon: any live ordering state keeps the controller
///   ticking densely, which is what makes the event core bit-identical.
///
/// [`set_elide_group`](Self::set_elide_group) is the mutation hook for
/// the fault gauntlet: it drops the backend's ordering edges for one
/// group so the happens-before oracle can be proven to fire.
pub trait OrderingBackend: std::fmt::Debug + Send {
    /// Which backend this is.
    fn kind(&self) -> OrderingKind;

    /// A request was accepted into the transaction queues. Returns
    /// `Some(number)` when the backend raises a *synthetic* barrier at
    /// this point (controller-enforced backends); the controller records
    /// it in the trace so the oracle can validate the claimed ordering.
    fn on_arrival(
        &mut self,
        meta: ReqMeta,
        group: MemGroupId,
        pim: bool,
        is_write: bool,
    ) -> Option<u32>;

    /// An in-band ordering marker was accepted into the queues (before
    /// divergence into the read/write copies).
    fn on_marker_ingress(&mut self, copy: &MarkerCopy) {
        let _ = copy;
    }

    /// A fence probe arrived; `true` acknowledges it immediately.
    fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool;

    /// Whether requests of `group` are blocked by backend-wide flag state
    /// (threaded into the transaction-queue eligibility scan).
    fn group_blocked(&self, group: MemGroupId) -> bool;

    /// Per-request dequeue gate, evaluated inside the FR-FCFS scan after
    /// the flag and queue-capacity checks.
    fn dequeue_allowed(&self, p: &PendingReq) -> bool;

    /// A request left a transaction queue for a bank/exec command queue.
    fn on_dequeue(&mut self, p: &PendingReq);

    /// Per-transaction issue gate at the bank (or exec) queue head.
    fn issue_allowed(&self, txn: &Transaction) -> bool;

    /// A transaction's column/execute command was issued to the DRAM.
    fn on_retire(&mut self, txn: &Transaction) -> RetireOutcome;

    /// A marker copy with no constrained request ahead of it was offered
    /// by one of the transaction queues.
    fn on_marker(&mut self, copy: &MarkerCopy) -> MarkerAction;

    /// Held markers whose barrier has drained since the last call; the
    /// controller pops their queued copies and completes the merge.
    fn take_released(&mut self) -> Vec<(MarkerKey, OrderLightPacket)> {
        Vec::new()
    }

    /// Whether all ordering state is drained (quiescence contract: while
    /// this is false the controller must tick densely).
    fn is_idle(&self) -> bool;

    /// Counter snapshot for [`crate::McStats`].
    fn stats(&self) -> BackendStats;

    /// Fault-injection mutation: drop this backend's ordering edges for
    /// `group`. The resulting schedule is incorrect by construction.
    fn set_elide_group(&mut self, group: MemGroupId);

    /// The mutated group, if the drop-edge mutation is active (threaded
    /// into the queue scan so in-queue markers stop constraining it).
    fn elide_group(&self) -> Option<MemGroupId>;

    /// Ordering edges actually dropped by the mutation so far.
    fn edges_dropped(&self) -> u64;
}

/// OrderLight: [`GroupOrdering`] barriers plus the universal fence-probe
/// service (probes are rare in this mode but remain answerable).
#[derive(Debug, Default)]
pub struct OrderLightBackend {
    group: GroupOrdering,
    fences: FenceTracker,
}

impl OrderLightBackend {
    /// Creates idle backend state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl OrderingBackend for OrderLightBackend {
    fn kind(&self) -> OrderingKind {
        OrderingKind::OrderLight
    }

    fn on_arrival(
        &mut self,
        meta: ReqMeta,
        _group: MemGroupId,
        _pim: bool,
        _is_write: bool,
    ) -> Option<u32> {
        self.fences.on_arrival(meta.warp);
        None
    }

    fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool {
        self.fences.on_probe(warp, fence_id)
    }

    fn group_blocked(&self, group: MemGroupId) -> bool {
        self.group.is_blocked(group)
    }

    fn dequeue_allowed(&self, _p: &PendingReq) -> bool {
        true
    }

    fn on_dequeue(&mut self, p: &PendingReq) {
        self.group.on_dequeue(p.group);
    }

    fn issue_allowed(&self, _txn: &Transaction) -> bool {
        true
    }

    fn on_retire(&mut self, txn: &Transaction) -> RetireOutcome {
        self.group.on_issue(txn.group);
        RetireOutcome { credit: false, fence_acks: self.fences.on_issue(txn.meta.warp) }
    }

    fn on_marker(&mut self, copy: &MarkerCopy) -> MarkerAction {
        match self.group.on_marker_copy(copy) {
            Some(packet) => MarkerAction::Merged(packet),
            None => MarkerAction::Pending,
        }
    }

    fn is_idle(&self) -> bool {
        self.group.is_idle() && self.fences.pending() == 0
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            packets_merged: self.group.packets_merged(),
            flags_set: self.group.flags_set(),
            sanity_violations: self.group.sanity_violations(),
        }
    }

    fn set_elide_group(&mut self, group: MemGroupId) {
        self.group.set_elide_group(group);
    }

    fn elide_group(&self) -> Option<MemGroupId> {
        self.group.elide_group()
    }

    fn edges_dropped(&self) -> u64 {
        self.group.edges_dropped()
    }
}

/// The core-centric fence baseline: the controller schedules freely and
/// only generates acknowledgements from the [`FenceTracker`]. Stray
/// in-band markers (none in real fence-mode traffic) merge with no
/// barrier so they never clog the queues.
#[derive(Debug, Default)]
pub struct FenceBackend {
    fences: FenceTracker,
    merge: MergeFsm,
    /// Mutation: acknowledge probes immediately even with requests
    /// outstanding (drops the fence's ordering edge).
    elide: Option<MemGroupId>,
    edges_dropped: u64,
}

impl FenceBackend {
    /// Creates idle backend state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl OrderingBackend for FenceBackend {
    fn kind(&self) -> OrderingKind {
        OrderingKind::Fence
    }

    fn on_arrival(
        &mut self,
        meta: ReqMeta,
        _group: MemGroupId,
        _pim: bool,
        _is_write: bool,
    ) -> Option<u32> {
        self.fences.on_arrival(meta.warp);
        None
    }

    fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool {
        if self.elide.is_some() {
            // Mutation: the early ack drops the fence's edge whenever the
            // warp still has requests outstanding.
            if self.fences.outstanding(warp) > 0 {
                self.edges_dropped += 1;
            }
            return true;
        }
        self.fences.on_probe(warp, fence_id)
    }

    fn group_blocked(&self, _group: MemGroupId) -> bool {
        false
    }

    fn dequeue_allowed(&self, _p: &PendingReq) -> bool {
        true
    }

    fn on_dequeue(&mut self, _p: &PendingReq) {}

    fn issue_allowed(&self, _txn: &Transaction) -> bool {
        true
    }

    fn on_retire(&mut self, txn: &Transaction) -> RetireOutcome {
        RetireOutcome { credit: false, fence_acks: self.fences.on_issue(txn.meta.warp) }
    }

    fn on_marker(&mut self, copy: &MarkerCopy) -> MarkerAction {
        match self.merge.on_copy(copy) {
            Some(Marker::OrderLight(p) | Marker::Release(p)) => MarkerAction::Merged(p),
            _ => MarkerAction::Pending,
        }
    }

    fn is_idle(&self) -> bool {
        self.fences.pending() == 0 && self.merge.pending() == 0
    }

    fn stats(&self) -> BackendStats {
        BackendStats { packets_merged: self.merge.merges(), flags_set: 0, sanity_violations: 0 }
    }

    fn set_elide_group(&mut self, group: MemGroupId) {
        self.elide = Some(group);
    }

    fn elide_group(&self) -> Option<MemGroupId> {
        self.elide
    }

    fn edges_dropped(&self) -> u64 {
        self.edges_dropped
    }
}

/// The Kim et al. sequence-number baseline: each warp's PIM requests are
/// dequeued *and* issued strictly in sequence-number order and a buffer
/// credit returns to the core per retired request.
#[derive(Debug, Default)]
pub struct SeqNumBackend {
    fences: FenceTracker,
    merge: MergeFsm,
    /// Next sequence number each warp may dequeue.
    expected_dequeue: HashMap<GlobalWarpId, u64>,
    /// Next sequence number each warp may issue.
    expected_issue: HashMap<GlobalWarpId, u64>,
    /// Mutation: requests of this group skip both sequence gates.
    elide: Option<MemGroupId>,
    edges_dropped: u64,
}

impl SeqNumBackend {
    /// Creates idle backend state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl OrderingBackend for SeqNumBackend {
    fn kind(&self) -> OrderingKind {
        OrderingKind::SeqNum
    }

    fn on_arrival(
        &mut self,
        meta: ReqMeta,
        _group: MemGroupId,
        _pim: bool,
        _is_write: bool,
    ) -> Option<u32> {
        self.fences.on_arrival(meta.warp);
        None
    }

    fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool {
        self.fences.on_probe(warp, fence_id)
    }

    fn group_blocked(&self, _group: MemGroupId) -> bool {
        false
    }

    fn dequeue_allowed(&self, p: &PendingReq) -> bool {
        if !p.pim || self.elide == Some(p.group) {
            return true;
        }
        let expected = self.expected_dequeue.get(&p.meta.warp).copied().unwrap_or(1);
        p.meta.seq == expected
    }

    fn on_dequeue(&mut self, p: &PendingReq) {
        if !p.pim {
            return;
        }
        if self.elide == Some(p.group) {
            let expected = self.expected_dequeue.get(&p.meta.warp).copied().unwrap_or(1);
            if p.meta.seq != expected {
                self.edges_dropped += 1;
            }
        }
        self.expected_dequeue.insert(p.meta.warp, p.meta.seq + 1);
    }

    fn issue_allowed(&self, txn: &Transaction) -> bool {
        if !txn.is_pim() || self.elide == Some(txn.group) {
            return true;
        }
        let expected = self.expected_issue.get(&txn.meta.warp).copied().unwrap_or(1);
        txn.meta.seq == expected
    }

    fn on_retire(&mut self, txn: &Transaction) -> RetireOutcome {
        let credit = txn.is_pim();
        if credit {
            self.expected_issue.insert(txn.meta.warp, txn.meta.seq + 1);
        }
        RetireOutcome { credit, fence_acks: self.fences.on_issue(txn.meta.warp) }
    }

    fn on_marker(&mut self, copy: &MarkerCopy) -> MarkerAction {
        match self.merge.on_copy(copy) {
            Some(Marker::OrderLight(p) | Marker::Release(p)) => MarkerAction::Merged(p),
            _ => MarkerAction::Pending,
        }
    }

    fn is_idle(&self) -> bool {
        self.fences.pending() == 0 && self.merge.pending() == 0
    }

    fn stats(&self) -> BackendStats {
        BackendStats { packets_merged: self.merge.merges(), flags_set: 0, sanity_violations: 0 }
    }

    fn set_elide_group(&mut self, group: MemGroupId) {
        self.elide = Some(group);
    }

    fn elide_group(&self) -> Option<MemGroupId> {
        self.elide
    }

    fn edges_dropped(&self) -> u64 {
        self.edges_dropped
    }
}

/// A merged Louvre release whose version drain is still outstanding.
#[derive(Debug, Clone)]
struct HeldRelease {
    key: MarkerKey,
    packet: OrderLightPacket,
    /// `(group, target)`: released once `issued[group] >= target` for
    /// every entry. Targets snapshot the per-group arrival counters at
    /// marker *ingress* — exactly the requests the happens-before oracle
    /// puts in the marker's pre-set.
    targets: Vec<(MemGroupId, u64)>,
}

/// Louvre-style versioned ordering (Kumar et al.): release markers carry
/// a per-group version; the controller counts per-group arrivals and
/// issues, and a merged release is *held* in the transaction queues —
/// still blocking same-group followers via the normal in-queue marker
/// scan — until every request that arrived before it has issued. No
/// per-group flag is ever broadcast.
#[derive(Debug)]
pub struct LouvreVersioned {
    fences: FenceTracker,
    merge: MergeFsm,
    arrivals: [u64; MAX_GROUPS],
    issued: [u64; MAX_GROUPS],
    /// Drain targets snapshotted at marker ingress, keyed by identity.
    pending_targets: HashMap<MarkerKey, Vec<(MemGroupId, u64)>>,
    /// Merged releases still holding (front-released: a later marker is
    /// never offered while an earlier one still heads the queues).
    held: VecDeque<HeldRelease>,
    last_version: [Option<u32>; MAX_GROUPS],
    packets_merged: u64,
    flags_set: u64,
    sanity_violations: u64,
    elide: Option<MemGroupId>,
    edges_dropped: u64,
}

impl LouvreVersioned {
    /// Creates idle backend state.
    #[must_use]
    pub fn new() -> Self {
        LouvreVersioned {
            fences: FenceTracker::new(),
            merge: MergeFsm::new(),
            arrivals: [0; MAX_GROUPS],
            issued: [0; MAX_GROUPS],
            pending_targets: HashMap::new(),
            held: VecDeque::new(),
            last_version: [None; MAX_GROUPS],
            packets_merged: 0,
            flags_set: 0,
            sanity_violations: 0,
            elide: None,
            edges_dropped: 0,
        }
    }

    fn satisfied(&self, targets: &[(MemGroupId, u64)]) -> bool {
        targets.iter().all(|&(g, t)| self.issued[g.index()] >= t)
    }
}

impl Default for LouvreVersioned {
    fn default() -> Self {
        LouvreVersioned::new()
    }
}

impl OrderingBackend for LouvreVersioned {
    fn kind(&self) -> OrderingKind {
        OrderingKind::LouvreVersioned
    }

    fn on_arrival(
        &mut self,
        meta: ReqMeta,
        group: MemGroupId,
        _pim: bool,
        _is_write: bool,
    ) -> Option<u32> {
        self.fences.on_arrival(meta.warp);
        self.arrivals[group.index()] += 1;
        None
    }

    fn on_marker_ingress(&mut self, copy: &MarkerCopy) {
        let (Marker::Release(p) | Marker::OrderLight(p)) = &copy.marker else {
            return;
        };
        let targets = p.groups().map(|g| (g, self.arrivals[g.index()])).collect::<Vec<_>>();
        self.pending_targets.insert(copy.marker.key(), targets);
    }

    fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool {
        self.fences.on_probe(warp, fence_id)
    }

    fn group_blocked(&self, _group: MemGroupId) -> bool {
        false // blocking happens via the held in-queue marker copies
    }

    fn dequeue_allowed(&self, _p: &PendingReq) -> bool {
        true
    }

    fn on_dequeue(&mut self, _p: &PendingReq) {}

    fn issue_allowed(&self, _txn: &Transaction) -> bool {
        true
    }

    fn on_retire(&mut self, txn: &Transaction) -> RetireOutcome {
        self.issued[txn.group.index()] += 1;
        RetireOutcome { credit: false, fence_acks: self.fences.on_issue(txn.meta.warp) }
    }

    fn on_marker(&mut self, copy: &MarkerCopy) -> MarkerAction {
        let Some(Marker::OrderLight(packet) | Marker::Release(packet)) = self.merge.on_copy(copy)
        else {
            return MarkerAction::Pending;
        };
        self.packets_merged += 1;
        let key = copy.marker.key();
        let mut targets = self.pending_targets.remove(&key).unwrap_or_default();
        for group in packet.groups() {
            let g = group.index();
            if let Some(last) = self.last_version[g] {
                if packet.number() <= last {
                    self.sanity_violations += 1;
                }
            }
            self.last_version[g] = Some(packet.number());
        }
        if let Some(elided) = self.elide {
            // Mutation: the elided group's versioned wait is dropped.
            let before = targets.len();
            targets.retain(|&(g, _)| g != elided);
            self.edges_dropped += (before - targets.len()) as u64;
        }
        if self.satisfied(&targets) {
            MarkerAction::Merged(packet)
        } else {
            self.flags_set += 1;
            self.held.push_back(HeldRelease { key, packet, targets });
            MarkerAction::Held
        }
    }

    fn take_released(&mut self) -> Vec<(MarkerKey, OrderLightPacket)> {
        let mut released = Vec::new();
        while let Some(front) = self.held.front() {
            if !self.satisfied(&front.targets) {
                break;
            }
            let h = self.held.pop_front().expect("front exists");
            released.push((h.key, h.packet));
        }
        released
    }

    fn is_idle(&self) -> bool {
        self.fences.pending() == 0 && self.merge.pending() == 0 && self.held.is_empty()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            packets_merged: self.packets_merged,
            flags_set: self.flags_set,
            sanity_violations: self.sanity_violations,
        }
    }

    fn set_elide_group(&mut self, group: MemGroupId) {
        self.elide = Some(group);
    }

    fn elide_group(&self) -> Option<MemGroupId> {
        self.elide
    }

    fn edges_dropped(&self) -> u64 {
        self.edges_dropped
    }
}

/// Perach et al. controller-enforced strong consistency for bulk-bitwise
/// PIM: the core emits *no* ordering primitive at all; the controller
/// stamps every request with its per-group arrival index and dequeues it
/// only once every older same-group request has issued — a total
/// per-group order, with an epoch barrier recorded in the trace at every
/// read/write kind flip so the oracle can validate the claim.
#[derive(Debug)]
pub struct BulkBitwiseStrong {
    fences: FenceTracker,
    merge: MergeFsm,
    arrivals: [u64; MAX_GROUPS],
    issued: [u64; MAX_GROUPS],
    /// `(warp, seq)` → 1-based per-group arrival index; removed at retire.
    stamps: HashMap<(GlobalWarpId, u64), u64>,
    /// Kind (write?) of the group's most recent arrival, for epoch flips.
    last_write: [Option<bool>; MAX_GROUPS],
    /// Per-group epoch counter (trace barrier numbers).
    epoch: [u32; MAX_GROUPS],
    flags_set: u64,
    sanity_violations: u64,
    elide: Option<MemGroupId>,
    edges_dropped: u64,
}

impl BulkBitwiseStrong {
    /// Creates idle backend state.
    #[must_use]
    pub fn new() -> Self {
        BulkBitwiseStrong {
            fences: FenceTracker::new(),
            merge: MergeFsm::new(),
            arrivals: [0; MAX_GROUPS],
            issued: [0; MAX_GROUPS],
            stamps: HashMap::new(),
            last_write: [None; MAX_GROUPS],
            epoch: [0; MAX_GROUPS],
            flags_set: 0,
            sanity_violations: 0,
            elide: None,
            edges_dropped: 0,
        }
    }
}

impl Default for BulkBitwiseStrong {
    fn default() -> Self {
        BulkBitwiseStrong::new()
    }
}

impl OrderingBackend for BulkBitwiseStrong {
    fn kind(&self) -> OrderingKind {
        OrderingKind::BulkBitwiseStrong
    }

    fn on_arrival(
        &mut self,
        meta: ReqMeta,
        group: MemGroupId,
        _pim: bool,
        is_write: bool,
    ) -> Option<u32> {
        self.fences.on_arrival(meta.warp);
        let g = group.index();
        let note = if self.last_write[g].is_some_and(|w| w != is_write) {
            // Read↔write kind flip: a new epoch begins. The barrier is
            // recorded (and oracle-checked) but enforcement is the total
            // per-group order below, which subsumes it.
            self.epoch[g] += 1;
            self.flags_set += 1;
            Some(self.epoch[g])
        } else {
            None
        };
        self.last_write[g] = Some(is_write);
        self.arrivals[g] += 1;
        self.stamps.insert((meta.warp, meta.seq), self.arrivals[g]);
        note
    }

    fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool {
        self.fences.on_probe(warp, fence_id)
    }

    fn group_blocked(&self, _group: MemGroupId) -> bool {
        false
    }

    fn dequeue_allowed(&self, p: &PendingReq) -> bool {
        if self.elide == Some(p.group) {
            return true;
        }
        let stamp = self.stamps.get(&(p.meta.warp, p.meta.seq)).copied().unwrap_or(0);
        // Strong consistency: everything older in the group has issued.
        self.issued[p.group.index()] + 1 >= stamp
    }

    fn on_dequeue(&mut self, p: &PendingReq) {
        if self.elide == Some(p.group) {
            let stamp = self.stamps.get(&(p.meta.warp, p.meta.seq)).copied().unwrap_or(0);
            if self.issued[p.group.index()] + 1 < stamp {
                self.edges_dropped += 1;
            }
        }
    }

    fn issue_allowed(&self, _txn: &Transaction) -> bool {
        true // the dequeue gate admits one in-flight request per group
    }

    fn on_retire(&mut self, txn: &Transaction) -> RetireOutcome {
        let g = txn.group.index();
        if let Some(stamp) = self.stamps.remove(&(txn.meta.warp, txn.meta.seq)) {
            // Self-check: retires must happen in per-group arrival order
            // (they cannot break on a correct controller; the elide
            // mutation makes this fire).
            if stamp != self.issued[g] + 1 {
                self.sanity_violations += 1;
            }
        }
        self.issued[g] += 1;
        RetireOutcome { credit: false, fence_acks: self.fences.on_issue(txn.meta.warp) }
    }

    fn on_marker(&mut self, copy: &MarkerCopy) -> MarkerAction {
        match self.merge.on_copy(copy) {
            Some(Marker::OrderLight(p) | Marker::Release(p)) => MarkerAction::Merged(p),
            _ => MarkerAction::Pending,
        }
    }

    fn is_idle(&self) -> bool {
        self.fences.pending() == 0 && self.merge.pending() == 0 && self.stamps.is_empty()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            packets_merged: self.merge.merges(),
            flags_set: self.flags_set,
            sanity_violations: self.sanity_violations,
        }
    }

    fn set_elide_group(&mut self, group: MemGroupId) {
        self.elide = Some(group);
    }

    fn elide_group(&self) -> Option<MemGroupId> {
        self.elide
    }

    fn edges_dropped(&self) -> u64 {
        self.edges_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::fsm::diverge;
    use orderlight::types::ChannelId;

    fn ol_copies(group: u8, number: u32) -> Vec<MarkerCopy> {
        diverge(
            Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(group), number)),
            2,
        )
    }

    #[test]
    fn flag_set_only_with_inflight_work() {
        let mut ord = GroupOrdering::new();
        let copies = ol_copies(0, 1);
        assert!(ord.on_marker_copy(&copies[0]).is_none());
        assert!(ord.on_marker_copy(&copies[1]).is_some());
        // Nothing in flight: no barrier raised.
        assert!(!ord.is_blocked(MemGroupId(0)));
        assert_eq!(ord.packets_merged(), 1);
        assert_eq!(ord.flags_set(), 0);
    }

    #[test]
    fn flag_blocks_until_inflight_drains() {
        let mut ord = GroupOrdering::new();
        ord.on_dequeue(MemGroupId(0));
        ord.on_dequeue(MemGroupId(0));
        for c in ol_copies(0, 1) {
            ord.on_marker_copy(&c);
        }
        assert!(ord.is_blocked(MemGroupId(0)));
        assert!(!ord.is_blocked(MemGroupId(1)), "other groups unconstrained");
        ord.on_issue(MemGroupId(0));
        assert!(ord.is_blocked(MemGroupId(0)), "one request still in flight");
        ord.on_issue(MemGroupId(0));
        assert!(!ord.is_blocked(MemGroupId(0)));
        assert!(ord.is_idle());
    }

    #[test]
    fn sanity_check_flags_non_monotonic_numbers() {
        let mut ord = GroupOrdering::new();
        for c in ol_copies(0, 5) {
            ord.on_marker_copy(&c);
        }
        for c in ol_copies(0, 4) {
            ord.on_marker_copy(&c);
        }
        assert_eq!(ord.sanity_violations(), 1);
    }

    #[test]
    fn multi_group_packet_is_a_joint_barrier() {
        // The cross-kernel use case: group 2's request must drain before
        // group 0 unblocks, and vice versa — one barrier over both.
        let mut ord = GroupOrdering::new();
        ord.on_dequeue(MemGroupId(0));
        ord.on_dequeue(MemGroupId(2));
        let pkt = OrderLightPacket::with_groups(ChannelId(0), MemGroupId(0), &[MemGroupId(2)], 1)
            .unwrap();
        for c in diverge(Marker::OrderLight(pkt), 2) {
            ord.on_marker_copy(&c);
        }
        assert!(ord.is_blocked(MemGroupId(0)));
        assert!(ord.is_blocked(MemGroupId(2)));
        assert!(!ord.is_blocked(MemGroupId(1)));
        // Draining only group 0 keeps BOTH groups blocked: the packet
        // ordered group 0's followers behind group 2's in-flight work.
        ord.on_issue(MemGroupId(0));
        assert!(ord.is_blocked(MemGroupId(0)), "joint barrier still waits on group 2");
        assert!(ord.is_blocked(MemGroupId(2)));
        ord.on_issue(MemGroupId(2));
        assert!(!ord.is_blocked(MemGroupId(0)));
        assert!(!ord.is_blocked(MemGroupId(2)));
        assert!(ord.is_idle());
    }

    #[test]
    fn stacked_barriers_drain_independently() {
        let mut ord = GroupOrdering::new();
        ord.on_dequeue(MemGroupId(0));
        for c in ol_copies(0, 1) {
            ord.on_marker_copy(&c);
        }
        // A second packet merges while the first barrier is active (no
        // requests between them): it sees the same in-flight request.
        for c in ol_copies(0, 2) {
            ord.on_marker_copy(&c);
        }
        assert!(ord.is_blocked(MemGroupId(0)));
        ord.on_issue(MemGroupId(0));
        assert!(!ord.is_blocked(MemGroupId(0)), "both barriers drained by the issue");
        assert!(ord.is_idle());
    }

    #[test]
    fn fence_ack_waits_for_issue() {
        let mut f = FenceTracker::new();
        let w = GlobalWarpId::new(0, 0);
        f.on_arrival(w);
        f.on_arrival(w);
        assert!(!f.on_probe(w, 7));
        assert_eq!(f.pending(), 1);
        assert!(f.on_issue(w).is_empty());
        assert_eq!(f.on_issue(w), vec![(w, 7)]);
        assert_eq!(f.pending(), 0);
        assert_eq!(f.acks(), 1);
    }

    #[test]
    fn fence_with_nothing_outstanding_acks_immediately() {
        let mut f = FenceTracker::new();
        let w = GlobalWarpId::new(0, 1);
        assert!(f.on_probe(w, 1));
        f.on_arrival(w);
        f.on_issue(w);
        assert!(f.on_probe(w, 2), "caught up again");
    }

    #[test]
    fn fences_track_warps_independently() {
        let mut f = FenceTracker::new();
        let w0 = GlobalWarpId::new(0, 0);
        let w1 = GlobalWarpId::new(0, 1);
        f.on_arrival(w0);
        assert!(!f.on_probe(w0, 1));
        assert!(f.on_probe(w1, 2), "other warp unaffected");
        assert_eq!(f.on_issue(w0), vec![(w0, 1)]);
    }

    // ---- backend-level tests -------------------------------------------

    use orderlight::mapping::Location;
    use orderlight::slab::Slab;
    use orderlight::types::{Addr, BankId, TsSlot};
    use orderlight::{PimInstruction, PimOp};

    fn meta(warp: GlobalWarpId, seq: u64) -> ReqMeta {
        ReqMeta { warp, seq }
    }

    fn pending(group: u8, warp: GlobalWarpId, seq: u64) -> PendingReq {
        PendingReq {
            req: Slab::new().insert(()),
            pim: true,
            meta: meta(warp, seq),
            loc: None,
            group: MemGroupId(group),
            arrival: seq,
        }
    }

    fn txn(group: u8, warp: GlobalWarpId, seq: u64) -> Transaction {
        Transaction {
            kind: crate::txn::TxnKind::Pim(PimInstruction {
                op: PimOp::Load,
                addr: Addr(0),
                slot: TsSlot(0),
                group: MemGroupId(group),
            }),
            loc: Location { channel: ChannelId(0), bank: BankId(0), row: 0, col: 0 },
            group: MemGroupId(group),
            meta: meta(warp, seq),
            arrival: seq,
        }
    }

    fn release_copies(group: u8, version: u32) -> Vec<MarkerCopy> {
        diverge(Marker::Release(OrderLightPacket::new(ChannelId(0), MemGroupId(group), version)), 2)
    }

    fn arrive(b: &mut dyn OrderingBackend, group: u8, warp: GlobalWarpId, seq: u64) {
        b.on_arrival(meta(warp, seq), MemGroupId(group), true, false);
    }

    #[test]
    fn louvre_holds_release_until_older_requests_issue() {
        let mut b = LouvreVersioned::new();
        let w = GlobalWarpId::new(0, 0);
        arrive(&mut b, 0, w, 1);
        arrive(&mut b, 0, w, 2);
        let copies = release_copies(0, 1);
        b.on_marker_ingress(&copies[0]);
        assert_eq!(b.on_marker(&copies[0]), MarkerAction::Pending);
        assert_eq!(b.on_marker(&copies[1]), MarkerAction::Held, "older requests unissued");
        assert!(b.take_released().is_empty());
        assert!(!b.is_idle());
        b.on_retire(&txn(0, w, 1));
        assert!(b.take_released().is_empty(), "one older request still in flight");
        b.on_retire(&txn(0, w, 2));
        let released = b.take_released();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1.number(), 1);
        assert!(b.is_idle());
        assert_eq!(b.stats().flags_set, 1);
        assert_eq!(b.stats().packets_merged, 1);
    }

    #[test]
    fn louvre_release_over_drained_group_merges_immediately() {
        let mut b = LouvreVersioned::new();
        let copies = release_copies(3, 1);
        b.on_marker_ingress(&copies[0]);
        assert_eq!(b.on_marker(&copies[0]), MarkerAction::Pending);
        assert!(matches!(b.on_marker(&copies[1]), MarkerAction::Merged(_)));
        assert_eq!(b.stats().flags_set, 0, "nothing to wait for: no hold");
        assert!(b.is_idle());
    }

    #[test]
    fn louvre_versions_are_sanity_checked_per_group() {
        let mut b = LouvreVersioned::new();
        for c in release_copies(0, 5) {
            b.on_marker_ingress(&c);
            b.on_marker(&c);
        }
        for c in release_copies(0, 4) {
            b.on_marker_ingress(&c);
            b.on_marker(&c);
        }
        assert_eq!(b.stats().sanity_violations, 1, "non-monotonic version");
    }

    #[test]
    fn louvre_elide_drops_the_versioned_wait() {
        let mut b = LouvreVersioned::new();
        let w = GlobalWarpId::new(0, 0);
        arrive(&mut b, 0, w, 1);
        b.set_elide_group(MemGroupId(0));
        let copies = release_copies(0, 1);
        b.on_marker_ingress(&copies[0]);
        b.on_marker(&copies[0]);
        assert!(
            matches!(b.on_marker(&copies[1]), MarkerAction::Merged(_)),
            "elided group's drain target is dropped"
        );
        assert_eq!(b.edges_dropped(), 1);
    }

    #[test]
    fn bulk_serializes_a_group_in_arrival_order() {
        let mut b = BulkBitwiseStrong::new();
        let w = GlobalWarpId::new(0, 0);
        arrive(&mut b, 0, w, 1);
        arrive(&mut b, 0, w, 2);
        let p1 = pending(0, w, 1);
        let p2 = pending(0, w, 2);
        assert!(b.dequeue_allowed(&p1));
        assert!(!b.dequeue_allowed(&p2), "older same-group request unissued");
        b.on_dequeue(&p1);
        b.on_retire(&txn(0, w, 1));
        assert!(b.dequeue_allowed(&p2));
        b.on_retire(&txn(0, w, 2));
        assert!(b.is_idle());
        assert_eq!(b.stats().sanity_violations, 0);
    }

    #[test]
    fn bulk_does_not_serialize_across_groups() {
        let mut b = BulkBitwiseStrong::new();
        let w = GlobalWarpId::new(0, 0);
        arrive(&mut b, 0, w, 1);
        arrive(&mut b, 1, w, 2);
        assert!(b.dequeue_allowed(&pending(1, w, 2)), "other group unconstrained");
    }

    #[test]
    fn bulk_epochs_flip_on_kind_change() {
        let mut b = BulkBitwiseStrong::new();
        let w = GlobalWarpId::new(0, 0);
        assert_eq!(b.on_arrival(meta(w, 1), MemGroupId(0), true, false), None);
        assert_eq!(b.on_arrival(meta(w, 2), MemGroupId(0), true, true), Some(1), "read→write");
        assert_eq!(b.on_arrival(meta(w, 3), MemGroupId(0), true, true), None, "same kind");
        assert_eq!(b.on_arrival(meta(w, 4), MemGroupId(0), true, false), Some(2), "write→read");
        assert_eq!(b.stats().flags_set, 2);
    }

    #[test]
    fn bulk_elide_bypasses_the_gate_and_flags_the_retire() {
        let mut b = BulkBitwiseStrong::new();
        let w = GlobalWarpId::new(0, 0);
        b.set_elide_group(MemGroupId(0));
        arrive(&mut b, 0, w, 1);
        arrive(&mut b, 0, w, 2);
        let p2 = pending(0, w, 2);
        assert!(b.dequeue_allowed(&p2), "gate bypassed under elide");
        b.on_dequeue(&p2);
        assert_eq!(b.edges_dropped(), 1);
        b.on_retire(&txn(0, w, 2));
        assert_eq!(b.stats().sanity_violations, 1, "out-of-order retire detected");
    }

    #[test]
    fn fence_backend_elide_acks_with_requests_outstanding() {
        let mut b = FenceBackend::new();
        let w = GlobalWarpId::new(0, 0);
        arrive(&mut b, 0, w, 1);
        assert!(!b.on_probe(w, 7), "clean fence waits");
        b.on_retire(&txn(0, w, 1)); // drains, acks fence 7
        let mut b = FenceBackend::new();
        arrive(&mut b, 0, w, 1);
        b.set_elide_group(MemGroupId(0));
        assert!(b.on_probe(w, 8), "elided fence acks early");
        assert_eq!(b.edges_dropped(), 1);
    }

    #[test]
    fn seqnum_backend_gates_dequeue_and_issue_per_warp() {
        let mut b = SeqNumBackend::new();
        let w = GlobalWarpId::new(0, 0);
        assert!(!b.dequeue_allowed(&pending(0, w, 2)));
        assert!(b.dequeue_allowed(&pending(0, w, 1)));
        b.on_dequeue(&pending(0, w, 1));
        assert!(b.dequeue_allowed(&pending(0, w, 2)));
        assert!(b.issue_allowed(&txn(0, w, 1)));
        assert!(!b.issue_allowed(&txn(0, w, 2)));
        let out = b.on_retire(&txn(0, w, 1));
        assert!(out.credit, "retired PIM request returns a credit");
        assert!(b.issue_allowed(&txn(0, w, 2)));
    }

    #[test]
    fn seqnum_elide_bypasses_both_gates() {
        let mut b = SeqNumBackend::new();
        let w = GlobalWarpId::new(0, 0);
        b.set_elide_group(MemGroupId(0));
        assert!(b.dequeue_allowed(&pending(0, w, 5)));
        b.on_dequeue(&pending(0, w, 5));
        assert_eq!(b.edges_dropped(), 1);
        assert!(b.issue_allowed(&txn(0, w, 5)));
    }

    #[test]
    fn every_kind_builds_its_backend() {
        for kind in OrderingKind::ALL {
            let b = kind.build();
            assert_eq!(b.kind(), kind);
            assert!(b.is_idle());
            assert_eq!(b.stats(), BackendStats::default());
            assert_eq!(kind.label().parse::<String>().unwrap(), kind.to_string());
        }
    }
}
