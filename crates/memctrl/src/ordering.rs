//! Scheduler-side ordering state: OrderLight barriers per memory group
//! and the fence-acknowledgement tracker.

use orderlight::fsm::MergeFsm;
use orderlight::message::{Marker, MarkerCopy};
use orderlight::packet::OrderLightPacket;
use orderlight::types::{GlobalWarpId, MemGroupId};
use std::collections::HashMap;

/// Maximum memory groups addressable by the 4-bit group-ID field.
pub const MAX_GROUPS: usize = 16;

/// One active OrderLight barrier: the packet's constrained groups and
/// how many pre-packet requests are still dequeued-but-unissued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Barrier {
    /// Bitmask of constrained memory groups.
    mask: u16,
    /// Pre-packet requests (across all constrained groups) still to be
    /// issued to the DRAM.
    remaining: u64,
}

/// Per-memory-group OrderLight enforcement (paper Section 5.3.2).
///
/// For each group the scheduler keeps a *request counter* (requests
/// dequeued into bank command queues but not yet issued to the DRAM).
/// When an OrderLight packet merges at the scheduler stage, a *barrier*
/// is raised over the packet's group set, initialised with the combined
/// in-flight count; requests of a flagged group are not scheduled until
/// every barrier covering the group has drained. A multi-group packet
/// (partial results of two PIM kernels, Section 5.3.1) therefore orders
/// requests *across* its groups: nothing behind the packet in any of
/// its groups issues before everything ahead of it in all of them.
#[derive(Debug, Clone)]
pub struct GroupOrdering {
    inflight: [u64; MAX_GROUPS],
    /// Sum of `inflight` — kept so [`GroupOrdering::is_idle`] (on the
    /// event core's per-hop horizon path) is O(1) instead of a scan
    /// over every group.
    inflight_total: u64,
    barriers: Vec<Barrier>,
    merge: MergeFsm,
    last_number: [Option<u32>; MAX_GROUPS],
    sanity_violations: u64,
    flags_set: u64,
    packets_merged: u64,
    /// Mutation knob (fault injection): a group whose contribution to
    /// merged-packet barriers is deliberately ignored, dropping its
    /// ordering edge. `None` in every normal run.
    elide_group: Option<MemGroupId>,
    /// How many times the elided group actually dropped an edge.
    edges_dropped: u64,
}

impl GroupOrdering {
    /// Creates idle ordering state.
    #[must_use]
    pub fn new() -> Self {
        GroupOrdering {
            inflight: [0; MAX_GROUPS],
            inflight_total: 0,
            barriers: Vec::new(),
            merge: MergeFsm::new(),
            last_number: [None; MAX_GROUPS],
            sanity_violations: 0,
            flags_set: 0,
            packets_merged: 0,
            elide_group: None,
            edges_dropped: 0,
        }
    }

    /// Activates the drop-one-ordering-edge mutation: merged packets no
    /// longer raise (or extend) barriers over `group`, and the
    /// controller's queue scan ignores queued markers for the group (see
    /// [`GroupOrdering::elide_group`]). The resulting schedule is
    /// *incorrect by construction* — this exists only so the
    /// ordering-violation oracle can be proven to fire.
    pub fn set_elide_group(&mut self, group: MemGroupId) {
        self.elide_group = Some(group);
    }

    /// The mutated group, if the drop-edge mutation is active. The
    /// controller threads this into the transaction-queue scan so
    /// in-queue marker copies stop constraining the group too.
    #[must_use]
    pub fn elide_group(&self) -> Option<MemGroupId> {
        self.elide_group
    }

    /// Ordering edges dropped by the mutation so far.
    #[must_use]
    pub fn edges_dropped(&self) -> u64 {
        self.edges_dropped
    }

    /// Whether requests of `group` are currently blocked by a barrier.
    #[must_use]
    pub fn is_blocked(&self, group: MemGroupId) -> bool {
        let bit = 1u16 << group.0;
        self.barriers.iter().any(|b| b.mask & bit != 0)
    }

    /// Records a request of `group` being dequeued into a bank command
    /// queue.
    pub fn on_dequeue(&mut self, group: MemGroupId) {
        self.inflight[group.index()] += 1;
        self.inflight_total += 1;
    }

    /// Records a request of `group` being issued to the DRAM (or, for an
    /// execute-only command, to the PIM unit); drains every barrier
    /// covering the group and clears those that complete.
    pub fn on_issue(&mut self, group: MemGroupId) {
        let g = group.index();
        debug_assert!(self.inflight[g] > 0, "issue without matching dequeue");
        self.inflight[g] -= 1;
        self.inflight_total -= 1;
        let bit = 1u16 << group.0;
        for b in &mut self.barriers {
            if b.mask & bit != 0 {
                debug_assert!(b.remaining > 0, "barrier drained twice");
                b.remaining -= 1;
            }
        }
        self.barriers.retain(|b| b.remaining > 0);
    }

    /// Feeds one OrderLight marker copy popped from a transaction queue.
    ///
    /// Returns the merged packet when the final copy arrives; at that
    /// point a barrier over the packet's groups is raised (if anything
    /// is in flight) and the packet number is sanity-checked for
    /// per-group monotonicity.
    pub fn on_marker_copy(&mut self, copy: &MarkerCopy) -> Option<OrderLightPacket> {
        let merged = self.merge.on_copy(copy)?;
        let Marker::OrderLight(packet) = merged else {
            return None; // fence probes are handled by the FenceTracker
        };
        self.packets_merged += 1;
        let mut mask = 0u16;
        let mut remaining = 0u64;
        for group in packet.groups() {
            let g = group.index();
            if let Some(last) = self.last_number[g] {
                if packet.number() <= last {
                    self.sanity_violations += 1;
                }
            }
            self.last_number[g] = Some(packet.number());
            if self.elide_group == Some(group) {
                // Mutation: this group's edge is dropped — its in-flight
                // requests do not enter the barrier and the barrier will
                // not block the group's followers.
                self.edges_dropped += 1;
                continue;
            }
            if mask & (1 << group.0) == 0 {
                remaining += self.inflight[g];
            }
            mask |= 1 << group.0;
        }
        if remaining > 0 {
            self.barriers.push(Barrier { mask, remaining });
            self.flags_set += 1;
        }
        Some(packet)
    }

    /// In-flight (dequeued but unissued) count for `group`.
    #[must_use]
    pub fn inflight(&self, group: MemGroupId) -> u64 {
        self.inflight[group.index()]
    }

    /// Completed packet merges.
    #[must_use]
    pub fn packets_merged(&self) -> u64 {
        self.packets_merged
    }

    /// How many barriers actually had to block something.
    #[must_use]
    pub fn flags_set(&self) -> u64 {
        self.flags_set
    }

    /// Packet-number monotonicity violations observed.
    #[must_use]
    pub fn sanity_violations(&self) -> u64 {
        self.sanity_violations
    }

    /// Whether all state is drained (no barriers, no in-flight, no
    /// partial merges).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.inflight_total,
            self.inflight.iter().sum::<u64>(),
            "inflight_total counter out of sync"
        );
        self.barriers.is_empty() && self.inflight_total == 0 && self.merge.pending() == 0
    }
}

impl Default for GroupOrdering {
    fn default() -> Self {
        GroupOrdering::new()
    }
}

/// A fence awaiting acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingFence {
    warp: GlobalWarpId,
    fence_id: u64,
    /// Ack fires once the warp's issued count reaches this target.
    target_issued: u64,
}

/// Tracks per-warp request progress to generate fence acknowledgements.
///
/// The baseline fence semantics (paper Section 6, "Baseline
/// Limitations"): the warp may not proceed until all of its prior memory
/// requests have been issued to the memory. The tracker counts, per warp,
/// requests *arrived* at the controller and requests *issued* to the
/// DRAM; a probe snapshots the arrived count and is acknowledged once the
/// issued count catches up.
#[derive(Debug, Clone, Default)]
pub struct FenceTracker {
    arrived: HashMap<GlobalWarpId, u64>,
    issued: HashMap<GlobalWarpId, u64>,
    pending: Vec<PendingFence>,
    acks: u64,
}

impl FenceTracker {
    /// Creates an idle tracker.
    #[must_use]
    pub fn new() -> Self {
        FenceTracker::default()
    }

    /// Records a request from `warp` arriving at the controller.
    pub fn on_arrival(&mut self, warp: GlobalWarpId) {
        *self.arrived.entry(warp).or_insert(0) += 1;
    }

    /// Registers a fence probe. Returns `true` if it can be acknowledged
    /// immediately (nothing outstanding).
    pub fn on_probe(&mut self, warp: GlobalWarpId, fence_id: u64) -> bool {
        let target = self.arrived.get(&warp).copied().unwrap_or(0);
        if self.issued.get(&warp).copied().unwrap_or(0) >= target {
            self.acks += 1;
            true
        } else {
            self.pending.push(PendingFence { warp, fence_id, target_issued: target });
            false
        }
    }

    /// Records a request from `warp` being issued to the DRAM; returns
    /// the `(warp, fence_id)` of every fence that thereby completes.
    pub fn on_issue(&mut self, warp: GlobalWarpId) -> Vec<(GlobalWarpId, u64)> {
        let issued = self.issued.entry(warp).or_insert(0);
        *issued += 1;
        let now = *issued;
        let mut done = Vec::new();
        self.pending.retain(|p| {
            if p.warp == warp && now >= p.target_issued {
                done.push((p.warp, p.fence_id));
                false
            } else {
                true
            }
        });
        self.acks += done.len() as u64;
        done
    }

    /// Number of fences still awaiting acknowledgement.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total acknowledgements generated.
    #[must_use]
    pub fn acks(&self) -> u64 {
        self.acks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::fsm::diverge;
    use orderlight::types::ChannelId;

    fn ol_copies(group: u8, number: u32) -> Vec<MarkerCopy> {
        diverge(
            Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(group), number)),
            2,
        )
    }

    #[test]
    fn flag_set_only_with_inflight_work() {
        let mut ord = GroupOrdering::new();
        let copies = ol_copies(0, 1);
        assert!(ord.on_marker_copy(&copies[0]).is_none());
        assert!(ord.on_marker_copy(&copies[1]).is_some());
        // Nothing in flight: no barrier raised.
        assert!(!ord.is_blocked(MemGroupId(0)));
        assert_eq!(ord.packets_merged(), 1);
        assert_eq!(ord.flags_set(), 0);
    }

    #[test]
    fn flag_blocks_until_inflight_drains() {
        let mut ord = GroupOrdering::new();
        ord.on_dequeue(MemGroupId(0));
        ord.on_dequeue(MemGroupId(0));
        for c in ol_copies(0, 1) {
            ord.on_marker_copy(&c);
        }
        assert!(ord.is_blocked(MemGroupId(0)));
        assert!(!ord.is_blocked(MemGroupId(1)), "other groups unconstrained");
        ord.on_issue(MemGroupId(0));
        assert!(ord.is_blocked(MemGroupId(0)), "one request still in flight");
        ord.on_issue(MemGroupId(0));
        assert!(!ord.is_blocked(MemGroupId(0)));
        assert!(ord.is_idle());
    }

    #[test]
    fn sanity_check_flags_non_monotonic_numbers() {
        let mut ord = GroupOrdering::new();
        for c in ol_copies(0, 5) {
            ord.on_marker_copy(&c);
        }
        for c in ol_copies(0, 4) {
            ord.on_marker_copy(&c);
        }
        assert_eq!(ord.sanity_violations(), 1);
    }

    #[test]
    fn multi_group_packet_is_a_joint_barrier() {
        // The cross-kernel use case: group 2's request must drain before
        // group 0 unblocks, and vice versa — one barrier over both.
        let mut ord = GroupOrdering::new();
        ord.on_dequeue(MemGroupId(0));
        ord.on_dequeue(MemGroupId(2));
        let pkt = OrderLightPacket::with_groups(ChannelId(0), MemGroupId(0), &[MemGroupId(2)], 1)
            .unwrap();
        for c in diverge(Marker::OrderLight(pkt), 2) {
            ord.on_marker_copy(&c);
        }
        assert!(ord.is_blocked(MemGroupId(0)));
        assert!(ord.is_blocked(MemGroupId(2)));
        assert!(!ord.is_blocked(MemGroupId(1)));
        // Draining only group 0 keeps BOTH groups blocked: the packet
        // ordered group 0's followers behind group 2's in-flight work.
        ord.on_issue(MemGroupId(0));
        assert!(ord.is_blocked(MemGroupId(0)), "joint barrier still waits on group 2");
        assert!(ord.is_blocked(MemGroupId(2)));
        ord.on_issue(MemGroupId(2));
        assert!(!ord.is_blocked(MemGroupId(0)));
        assert!(!ord.is_blocked(MemGroupId(2)));
        assert!(ord.is_idle());
    }

    #[test]
    fn stacked_barriers_drain_independently() {
        let mut ord = GroupOrdering::new();
        ord.on_dequeue(MemGroupId(0));
        for c in ol_copies(0, 1) {
            ord.on_marker_copy(&c);
        }
        // A second packet merges while the first barrier is active (no
        // requests between them): it sees the same in-flight request.
        for c in ol_copies(0, 2) {
            ord.on_marker_copy(&c);
        }
        assert!(ord.is_blocked(MemGroupId(0)));
        ord.on_issue(MemGroupId(0));
        assert!(!ord.is_blocked(MemGroupId(0)), "both barriers drained by the issue");
        assert!(ord.is_idle());
    }

    #[test]
    fn fence_ack_waits_for_issue() {
        let mut f = FenceTracker::new();
        let w = GlobalWarpId::new(0, 0);
        f.on_arrival(w);
        f.on_arrival(w);
        assert!(!f.on_probe(w, 7));
        assert_eq!(f.pending(), 1);
        assert!(f.on_issue(w).is_empty());
        assert_eq!(f.on_issue(w), vec![(w, 7)]);
        assert_eq!(f.pending(), 0);
        assert_eq!(f.acks(), 1);
    }

    #[test]
    fn fence_with_nothing_outstanding_acks_immediately() {
        let mut f = FenceTracker::new();
        let w = GlobalWarpId::new(0, 1);
        assert!(f.on_probe(w, 1));
        f.on_arrival(w);
        f.on_issue(w);
        assert!(f.on_probe(w, 2), "caught up again");
    }

    #[test]
    fn fences_track_warps_independently() {
        let mut f = FenceTracker::new();
        let w0 = GlobalWarpId::new(0, 0);
        let w1 = GlobalWarpId::new(0, 1);
        f.on_arrival(w0);
        assert!(!f.on_probe(w0, 1));
        assert!(f.on_probe(w1, 2), "other warp unaffected");
        assert_eq!(f.on_issue(w0), vec![(w0, 1)]);
    }
}
