//! Decoded transactions held in the per-bank command queues.

use orderlight::mapping::Location;
use orderlight::message::ReqMeta;
use orderlight::types::{MemGroupId, Stripe};
use orderlight::{PimInstruction, Reg};

/// What kind of access a transaction performs once its row is open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnKind {
    /// A fine-grained PIM command with a DRAM column access.
    Pim(PimInstruction),
    /// A conventional host read; data returns to the core.
    HostRead {
        /// Destination register.
        reg: Reg,
    },
    /// A conventional host write.
    HostWrite {
        /// Data to write.
        data: Stripe,
    },
}

/// A scheduled transaction: a decoded request waiting in a bank command
/// queue for its DRAM commands to issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The access kind and payload.
    pub kind: TxnKind,
    /// Decoded physical location.
    pub loc: Location,
    /// Memory group (for ordering accounting).
    pub group: MemGroupId,
    /// Issue metadata (for fence accounting).
    pub meta: ReqMeta,
    /// Arrival order stamp at the controller (FR-FCFS tiebreak).
    pub arrival: u64,
}

impl Transaction {
    /// Whether the column access is a write.
    #[must_use]
    pub fn is_write(&self) -> bool {
        match &self.kind {
            TxnKind::Pim(instr) => instr.op.is_dram_write(),
            TxnKind::HostRead { .. } => false,
            TxnKind::HostWrite { .. } => true,
        }
    }

    /// Whether this is a PIM command (for command-bandwidth accounting).
    #[must_use]
    pub fn is_pim(&self) -> bool {
        matches!(self.kind, TxnKind::Pim(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::types::{Addr, BankId, ChannelId, GlobalWarpId, TsSlot};
    use orderlight::{AluOp, PimOp};

    fn loc() -> Location {
        Location { channel: ChannelId(0), bank: BankId(0), row: 0, col: 0 }
    }

    fn meta() -> ReqMeta {
        ReqMeta { warp: GlobalWarpId(0), seq: 0 }
    }

    #[test]
    fn write_classification() {
        let t = Transaction {
            kind: TxnKind::Pim(PimInstruction {
                op: PimOp::Store,
                addr: Addr(0),
                slot: TsSlot(0),
                group: MemGroupId(0),
            }),
            loc: loc(),
            group: MemGroupId(0),
            meta: meta(),
            arrival: 0,
        };
        assert!(t.is_write());
        assert!(t.is_pim());
        let t = Transaction { kind: TxnKind::HostRead { reg: Reg(1) }, ..t };
        assert!(!t.is_write());
        assert!(!t.is_pim());
        let t = Transaction { kind: TxnKind::HostWrite { data: Stripe::default() }, ..t };
        assert!(t.is_write());
        let t = Transaction {
            kind: TxnKind::Pim(PimInstruction {
                op: PimOp::Compute(AluOp::Add),
                addr: Addr(0),
                slot: TsSlot(0),
                group: MemGroupId(0),
            }),
            ..t
        };
        assert!(!t.is_write(), "fetch-and-op is read-like");
    }
}
