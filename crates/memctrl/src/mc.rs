//! The memory controller proper: ingress, FR-FCFS scheduler, per-bank
//! command queues, DRAM command issue, and the PIM unit hookup.

use crate::ordering::{MarkerAction, OrderingBackend, OrderingKind};
use crate::queues::{PendingReq, QueueEntry, TransQueue};
use crate::txn::{Transaction, TxnKind};
use orderlight::fsm::diverge;
use orderlight::mapping::{AddressMapping, GroupMap};
use orderlight::message::{Marker, MarkerKey, MemReq, MemResp};
use orderlight::packet::OrderLightPacket;
use orderlight::rng::Rng;
use orderlight::slab::Slab;
use orderlight::types::{BankId, MemCycle, MemGroupId};
use orderlight::{NextEvent, PimOp};
use orderlight_hbm::{Channel, ColKind, DramCommand, NeededCommand};
use orderlight_pim::PimUnit;
use orderlight_trace::{sink::nop_sink, DramCmdKind, SchedSide, SharedSink, TraceEvent};
use std::collections::VecDeque;

/// Memory cycles between [`TraceEvent::QueueSample`] emissions. The
/// dense tick samples at every multiple of this stride, and
/// [`MemoryController::skip_ticks`] synthesizes the same samples
/// closed-form across skipped windows, so the sample stream is
/// byte-identical under both cores. (The NoC pipe uses the same stride
/// value in *core* cycles for its `PipeSample` stream.)
const SAMPLE_STRIDE: u64 = 64;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePolicy {
    /// Leave rows open until a conflicting access needs the bank
    /// (default; rewards streaming locality).
    Open,
    /// Precharge a bank as soon as no queued transaction wants its open
    /// row (hides the precharge latency of the next conflict; rewards
    /// irregular access patterns).
    Closed,
}

/// One issued command, recorded when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueRecord {
    /// Memory cycle the command issued.
    pub cycle: MemCycle,
    /// Human-readable command (e.g. `ACT b0 r3`, `RD b0`,
    /// `EXEC scale[3]`).
    pub what: String,
    /// Issuing warp for column/execute commands.
    pub warp: Option<orderlight::types::GlobalWarpId>,
    /// Per-warp request sequence number, when applicable.
    pub seq: Option<u64>,
}

/// Memory-controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Address interleaving scheme.
    pub mapping: AddressMapping,
    /// Bank-to-memory-group map (for classifying host requests).
    pub groups: GroupMap,
    /// Read/write transaction queue capacity (Table 1: 64).
    pub queue_capacity: usize,
    /// Per-bank command queue capacity.
    pub bank_queue_capacity: usize,
    /// Execute-only PIM command queue capacity.
    pub exec_queue_capacity: usize,
    /// Transactions dequeued into command queues per memory cycle.
    pub dequeues_per_cycle: usize,
    /// How many eligible entries the FR-FCFS scan inspects.
    pub scan_depth: usize,
    /// Write-queue fill fraction that starts a write drain.
    pub write_drain_high: f64,
    /// Write-queue fill fraction that ends a write drain.
    pub write_drain_low: f64,
    /// Record every issued command in an [`IssueRecord`] trace
    /// (diagnostics / visualisation; off by default).
    pub trace: bool,
    /// Which [`OrderingBackend`] this controller enforces (default:
    /// OrderLight group barriers). Every backend also services fence
    /// probes, so the choice only matters for traffic that actually
    /// exercises the ordering primitive.
    pub ordering: OrderingKind,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            mapping: AddressMapping::hbm_default(),
            groups: GroupMap::default(),
            queue_capacity: 64,
            bank_queue_capacity: 4,
            exec_queue_capacity: 16,
            dequeues_per_cycle: 2,
            scan_depth: 16,
            write_drain_high: 0.75,
            write_drain_low: 0.25,
            trace: false,
            ordering: OrderingKind::OrderLight,
            page_policy: PagePolicy::Open,
        }
    }
}

/// Controller activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct McStats {
    /// PIM commands issued (DRAM-accessing plus execute-only).
    pub pim_commands: u64,
    /// Row activations issued.
    pub activates: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Column reads issued.
    pub col_reads: u64,
    /// Column writes issued.
    pub col_writes: u64,
    /// Execute-only PIM commands issued.
    pub exec_commands: u64,
    /// Host reads serviced.
    pub host_reads: u64,
    /// Host writes serviced.
    pub host_writes: u64,
    /// Fence acknowledgements generated.
    pub fence_acks: u64,
    /// OrderLight packets merged at the scheduler.
    pub ol_packets: u64,
    /// Packet-number sanity violations observed.
    pub sanity_violations: u64,
    /// Memory cycle of the last issued command (busy-window end).
    pub last_issue_cycle: MemCycle,
    /// Sum of host-read service latencies in memory cycles (arrival at the
    /// controller to column issue), for mean-latency reporting.
    pub host_read_latency_sum: u64,
}

/// Which transaction queue a scheduling decision refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Read,
    Write,
}

/// One memory channel's controller with its DRAM channel and PIM unit.
///
/// # Example
///
/// Drive one load / add / store chain through the controller by hand.
/// Without ordering packets the FR-FCFS scheduler is free to issue the
/// store before the execute-only add (and really does) — so the chain
/// is separated by OrderLight packets, exactly as a PIM kernel would:
///
/// ```
/// use orderlight::message::{Marker, MarkerCopy, MemReq, ReqMeta};
/// use orderlight::packet::OrderLightPacket;
/// use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, Stripe, TsSlot};
/// use orderlight::{AluOp, PimInstruction, PimOp};
/// use orderlight_hbm::{Channel, TimingParams};
/// use orderlight_memctrl::{McConfig, MemoryController};
/// use orderlight_pim::{PimUnit, TsSize};
///
/// let cfg = McConfig::default();
/// let mapping = cfg.mapping.clone();
/// let mut mc = MemoryController::new(
///     cfg,
///     Channel::new(TimingParams::hbm_table1(), 16, 2048),
///     PimUnit::new(TsSize::Eighth, 2048, 16),
/// );
/// // Seed DRAM, then load + add + store through the PIM unit.
/// let loc = mapping.decode(Addr(0));
/// mc.channel_mut().store_mut().write(loc.bank, loc.row, loc.col, Stripe::splat(40));
/// let pim = |op, seq| MemReq::Pim {
///     instr: PimInstruction { op, addr: Addr(0), slot: TsSlot(0), group: MemGroupId(0) },
///     meta: ReqMeta { warp: GlobalWarpId::new(0, 0), seq },
/// };
/// let packet = |number| MemReq::Marker(MarkerCopy {
///     marker: Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), number)),
///     total_copies: 1,
/// });
/// mc.push(pim(PimOp::Load, 0));
/// mc.push(packet(1));
/// mc.push(pim(PimOp::Compute(AluOp::AddImm(2)), 1));
/// mc.push(packet(2));
/// mc.push(pim(PimOp::Store, 2));
/// let mut now = 0;
/// while !mc.is_idle() {
///     mc.tick(now);
///     now += 1;
/// }
/// assert_eq!(mc.channel().store().read(loc.bank, loc.row, loc.col), Stripe::splat(42));
/// ```
pub struct MemoryController {
    cfg: McConfig,
    channel: Channel,
    pim: PimUnit,
    read_q: TransQueue,
    write_q: TransQueue,
    /// Bodies of the requests queued in `read_q`/`write_q`. Queue
    /// entries carry [`orderlight::slab::SlabRef`] handles plus the
    /// denormalized fields the scheduler scans; a body is inserted at
    /// ingress and removed exactly once, at dequeue.
    arena: Slab<MemReq>,
    bank_q: Vec<VecDeque<Transaction>>,
    /// Total transactions across all of `bank_q` — kept so the idle
    /// check the event core's horizon makes every hop is O(1), not a
    /// scan over every bank's queue.
    bank_queued: usize,
    exec_q: VecDeque<Transaction>,
    backend: Box<dyn OrderingBackend>,
    arrival_seq: u64,
    arrival_cycle: MemCycle,
    draining_writes: bool,
    out: Vec<MemResp>,
    stats: McStats,
    trace: Vec<IssueRecord>,
    sink: SharedSink,
    channel_id: u8,
    /// Fault injection: adversarial scheduler tie-breaks. When set, the
    /// FR-FCFS pick chooses uniformly among *eligible* candidates
    /// instead of preferring row hits / oldest arrivals — a legal but
    /// hostile schedule.
    adversary: Option<Rng>,
}

impl MemoryController {
    /// Creates a controller around `channel` and `pim`.
    #[must_use]
    pub fn new(cfg: McConfig, channel: Channel, pim: PimUnit) -> Self {
        let banks = channel.num_banks();
        MemoryController {
            read_q: TransQueue::new(cfg.queue_capacity),
            write_q: TransQueue::new(cfg.queue_capacity),
            arena: Slab::with_capacity(2 * cfg.queue_capacity),
            bank_q: (0..banks).map(|_| VecDeque::new()).collect(),
            bank_queued: 0,
            exec_q: VecDeque::new(),
            backend: cfg.ordering.build(),
            arrival_seq: 0,
            arrival_cycle: 0,
            draining_writes: false,
            out: Vec::new(),
            stats: McStats::default(),
            trace: Vec::new(),
            sink: nop_sink(),
            channel_id: 0,
            adversary: None,
            cfg,
            channel,
            pim,
        }
    }

    /// Enables adversarial scheduler tie-breaks seeded with `seed`.
    ///
    /// Every pick still honours all correctness constraints (ordering
    /// barriers, sequence-number order, queue capacities, DRAM timing) —
    /// only the *preference* among eligible candidates is randomized, so
    /// functional results must be unchanged on a correct controller.
    pub fn set_adversary(&mut self, seed: u64) {
        self.adversary = Some(Rng::new(seed));
    }

    /// Activates the drop-one-ordering-edge mutation for `group` (see
    /// [`OrderingBackend::set_elide_group`]).
    pub fn set_elide_group(&mut self, group: MemGroupId) {
        self.backend.set_elide_group(group);
    }

    /// Ordering edges dropped by the elide mutation so far.
    #[must_use]
    pub fn ordering_edges_dropped(&self) -> u64 {
        self.backend.edges_dropped()
    }

    /// The issue trace (empty unless [`McConfig::trace`] is set).
    #[must_use]
    pub fn trace(&self) -> &[IssueRecord] {
        &self.trace
    }

    /// Attaches a trace sink, tagging this controller's events with
    /// `channel`. The sink is forwarded to the DRAM channel so per-bank
    /// commands are captured too. Sinks only observe; behaviour is
    /// unchanged.
    pub fn set_sink(&mut self, sink: SharedSink, channel: u8) {
        self.channel.set_sink(sink.clone(), channel);
        self.sink = sink;
        self.channel_id = channel;
    }

    fn record(
        &mut self,
        cycle: MemCycle,
        what: String,
        warp: Option<orderlight::types::GlobalWarpId>,
        seq: Option<u64>,
    ) {
        if self.cfg.trace {
            self.trace.push(IssueRecord { cycle, what, warp, seq });
        }
    }

    /// Whether `req` can be accepted this cycle (backpressure point for
    /// the memory pipe).
    #[must_use]
    pub fn can_accept(&self, req: &MemReq) -> bool {
        match req {
            MemReq::Marker(copy) => match copy.marker {
                // In-band ordering markers are copied into both queues.
                Marker::OrderLight(_) | Marker::Release(_) => {
                    self.read_q.has_space() && self.write_q.has_space()
                }
                // Fence probes are consumed at ingress.
                Marker::FenceProbe { .. } => true,
            },
            r if r.is_write_like() => self.write_q.has_space(),
            _ => self.read_q.has_space(),
        }
    }

    /// Accepts one request from the memory pipe.
    ///
    /// # Panics
    /// Panics if called while [`can_accept`](Self::can_accept) is false.
    pub fn push(&mut self, req: MemReq) {
        assert!(self.can_accept(&req), "push without backpressure check");
        match req {
            MemReq::Marker(copy) => match copy.marker {
                Marker::OrderLight(ref packet) | Marker::Release(ref packet) => {
                    if self.sink.is_enabled() {
                        self.sink.emit(TraceEvent::PacketEnqueued {
                            cycle: self.arrival_cycle,
                            channel: self.channel_id,
                            group: packet.group().0,
                            number: packet.number(),
                        });
                    }
                    // Ingress hook first (e.g. Louvre snapshots its drain
                    // targets here, matching the oracle's pre-set), then
                    // divergence point #2: separate read/write queues.
                    self.backend.on_marker_ingress(&copy);
                    let mut copies = diverge(copy.marker, 2);
                    self.write_q.push(QueueEntry::Marker {
                        copy: copies.pop().expect("two copies"),
                        offered: false,
                    });
                    self.read_q.push(QueueEntry::Marker {
                        copy: copies.pop().expect("two copies"),
                        offered: false,
                    });
                }
                Marker::FenceProbe { warp, fence_id, .. } => {
                    if self.backend.on_probe(warp, fence_id) {
                        self.stats.fence_acks += 1;
                        self.out.push(MemResp::FenceAck { warp, fence_id });
                        if self.sink.is_enabled() {
                            self.sink.emit(TraceEvent::FenceAck {
                                cycle: self.arrival_cycle,
                                channel: self.channel_id,
                                warp: warp.0,
                                fence_id,
                            });
                        }
                    }
                }
            },
            req => {
                let meta = req.meta().expect("non-marker requests carry metadata");
                let (loc, group) = match &req {
                    MemReq::Pim { instr, .. } => {
                        let loc =
                            instr.op.accesses_dram().then(|| self.cfg.mapping.decode(instr.addr));
                        (loc, instr.group)
                    }
                    MemReq::HostRead { addr, .. } | MemReq::HostWrite { addr, .. } => {
                        let loc = self.cfg.mapping.decode(*addr);
                        (Some(loc), self.cfg.groups.group_of(loc.bank))
                    }
                    MemReq::Marker(_) => unreachable!("handled above"),
                };
                self.arrival_seq += 1;
                let pim = req.is_pim();
                let write_like = req.is_write_like();
                // A controller-enforced backend may raise a synthetic
                // barrier here (e.g. a bulk-bitwise epoch flip). It is
                // recorded *before* this request's own enqueue event so
                // the oracle's pre-set covers exactly the older requests.
                if let Some(number) = self.backend.on_arrival(meta, group, pim, write_like) {
                    if self.sink.is_enabled() {
                        self.sink.emit(TraceEvent::PacketEnqueued {
                            cycle: self.arrival_cycle,
                            channel: self.channel_id,
                            group: group.0,
                            number,
                        });
                    }
                }
                if self.sink.is_enabled() {
                    self.sink.emit(TraceEvent::ReqEnqueued {
                        cycle: self.arrival_cycle,
                        channel: self.channel_id,
                        group: group.0,
                        warp: meta.warp.0,
                        seq: meta.seq,
                    });
                }
                let entry = QueueEntry::Request(PendingReq {
                    req: self.arena.insert(req),
                    pim,
                    meta,
                    loc,
                    group,
                    arrival: self.arrival_cycle,
                });
                if write_like {
                    self.write_q.push(entry);
                } else {
                    self.read_q.push(entry);
                }
            }
        }
    }

    /// The row a bank will be presenting once its queued work completes:
    /// the row of the last queued transaction, else the open row.
    fn effective_row(&self, bank: BankId) -> Option<u32> {
        self.bank_q[bank.index()]
            .back()
            .map(|t| t.loc.row)
            .or_else(|| self.channel.bank(bank).open_row())
    }

    fn txn_fits(&self, p: &PendingReq) -> bool {
        match p.loc {
            Some(loc) => self.bank_q[loc.bank.index()].len() < self.cfg.bank_queue_capacity,
            None => self.exec_q.len() < self.cfg.exec_queue_capacity,
        }
    }

    fn is_row_hit(&self, p: &PendingReq) -> bool {
        p.loc.is_some_and(|loc| self.effective_row(loc.bank) == Some(loc.row))
    }

    fn queue(&self, side: Side) -> &TransQueue {
        match side {
            Side::Read => &self.read_q,
            Side::Write => &self.write_q,
        }
    }

    fn queue_mut(&mut self, side: Side) -> &mut TransQueue {
        match side {
            Side::Read => &mut self.read_q,
            Side::Write => &mut self.write_q,
        }
    }

    /// FR-FCFS pick: preferred queue first (write-drain hysteresis), row
    /// hits over row misses, oldest first within each class. With an
    /// adversary attached, the pick within the preferred queue is instead
    /// uniform among all eligible candidates (still constraint-legal).
    fn pick_dequeue(&mut self) -> Option<(Side, usize)> {
        let order = if self.draining_writes {
            [Side::Write, Side::Read]
        } else {
            [Side::Read, Side::Write]
        };
        let adversarial = self.adversary.is_some();
        for side in order {
            let mut first_fit = None;
            let mut row_hit = None;
            let mut candidates: Vec<usize> = Vec::new();
            let q = self.queue(side);
            let elide = self.backend.elide_group();
            for (i, p) in q.eligible(|g| self.backend.group_blocked(g), elide, self.cfg.scan_depth)
            {
                if !self.txn_fits(p) {
                    continue;
                }
                if !self.backend.dequeue_allowed(p) {
                    continue;
                }
                if first_fit.is_none() {
                    first_fit = Some(i);
                }
                if row_hit.is_none() && self.is_row_hit(p) {
                    row_hit = Some(i);
                    if !adversarial {
                        break;
                    }
                }
                if adversarial {
                    candidates.push(i);
                }
            }
            if let Some(rng) = self.adversary.as_mut() {
                if !candidates.is_empty() {
                    return Some((side, candidates[rng.gen_index(candidates.len())]));
                }
            } else if let Some(i) = row_hit.or(first_fit) {
                return Some((side, i));
            }
        }
        None
    }

    /// Completes a marker merge: records the [`TraceEvent::PacketMerged`]
    /// event and pops the marker's copies from both transaction queues.
    fn finish_merge(&mut self, key: &MarkerKey, packet: &OrderLightPacket) {
        if self.sink.is_enabled() {
            self.sink.emit(TraceEvent::PacketMerged {
                cycle: self.arrival_cycle,
                channel: self.channel_id,
                group: packet.group().0,
                number: packet.number(),
            });
        }
        for side in [Side::Read, Side::Write] {
            let popped = self.queue_mut(side).pop_marker_by_key(key);
            debug_assert!(popped, "merged copy must head each queue");
        }
    }

    /// Offers ready marker copies to the backend's convergence FSM.
    ///
    /// A copy is *offered* as soon as no constrained request remains
    /// ahead of it in its own queue, but it stays in place — still
    /// blocking its sub-path — until every sibling copy has been offered
    /// and the merge fires (paper Figure 9); only then are all copies
    /// removed. A backend may instead *hold* a fully-collected marker
    /// (Louvre's versioned release): its copies stay queued, still
    /// blocking, until [`OrderingBackend::take_released`] reports the
    /// drain condition met.
    fn consume_markers(&mut self) {
        for (key, packet) in self.backend.take_released() {
            self.finish_merge(&key, &packet);
        }
        loop {
            let mut progress = false;
            for side in [Side::Read, Side::Write] {
                let Some(copy) = self.queue(side).ready_unoffered_marker().cloned() else {
                    continue;
                };
                self.queue_mut(side).mark_first_marker_offered();
                progress = true;
                match self.backend.on_marker(&copy) {
                    MarkerAction::Merged(packet) => {
                        self.finish_merge(&copy.marker.key(), &packet);
                    }
                    MarkerAction::Pending | MarkerAction::Held => {}
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Moves eligible transactions from the R/W queues into the per-bank
    /// (or execute) command queues.
    fn dequeue_phase(&mut self) {
        // Write-drain hysteresis.
        if self.write_q.fill_fraction() >= self.cfg.write_drain_high {
            self.draining_writes = true;
        } else if self.write_q.fill_fraction() <= self.cfg.write_drain_low {
            self.draining_writes = false;
        }
        for _ in 0..self.cfg.dequeues_per_cycle {
            let Some((side, index)) = self.pick_dequeue() else { break };
            let p = self.queue_mut(side).remove_request(index);
            if self.sink.is_enabled() {
                self.sink.emit(TraceEvent::SchedDecision {
                    cycle: self.arrival_cycle,
                    channel: self.channel_id,
                    side: match side {
                        Side::Read => SchedSide::Read,
                        Side::Write => SchedSide::Write,
                    },
                    bank: p.loc.map_or(0xff, |l| l.bank.0),
                    row_hit: self.is_row_hit(&p),
                });
            }
            self.backend.on_dequeue(&p);
            let meta = p.meta;
            if self.sink.is_enabled() {
                self.sink.emit(TraceEvent::ReqDequeued {
                    cycle: self.arrival_cycle,
                    channel: self.channel_id,
                    group: p.group.0,
                    warp: meta.warp.0,
                    seq: meta.seq,
                    bank: p.loc.map_or(0xff, |l| l.bank.0),
                    waited: self.arrival_cycle.saturating_sub(p.arrival),
                });
            }
            let kind = match self.arena.remove(p.req) {
                MemReq::Pim { instr, .. } => TxnKind::Pim(instr),
                MemReq::HostRead { reg, .. } => TxnKind::HostRead { reg },
                MemReq::HostWrite { data, .. } => TxnKind::HostWrite { data },
                MemReq::Marker(_) => unreachable!("markers never dequeue as requests"),
            };
            match p.loc {
                Some(loc) => {
                    let txn = Transaction { kind, loc, group: p.group, meta, arrival: p.arrival };
                    self.bank_q[loc.bank.index()].push_back(txn);
                    self.bank_queued += 1;
                }
                None => {
                    // Execute-only PIM command: no DRAM access. `loc` is a
                    // placeholder; only `kind`/`group`/`meta` matter.
                    let loc = self.cfg.mapping.decode(orderlight::types::Addr(0));
                    let txn = Transaction { kind, loc, group: p.group, meta, arrival: p.arrival };
                    self.exec_q.push_back(txn);
                }
            }
        }
    }

    /// Completes a transaction whose column command just issued (or whose
    /// execute command was sent to the PIM unit).
    fn complete(&mut self, txn: Transaction, now: MemCycle) {
        let bank = txn.loc.bank;
        let col = txn.loc.col;
        if self.cfg.trace {
            let what = match &txn.kind {
                TxnKind::Pim(instr) => format!("{}", instr),
                TxnKind::HostRead { .. } => format!("HOST_RD b{}", bank.0),
                TxnKind::HostWrite { .. } => format!("HOST_WR b{}", bank.0),
            };
            self.record(now, what, Some(txn.meta.warp), Some(txn.meta.seq));
        }
        match txn.kind {
            TxnKind::Pim(instr) => {
                self.stats.pim_commands += 1;
                match instr.op {
                    PimOp::Load | PimOp::Compute(_) if instr.op.accesses_dram() => {
                        let stripe = self.channel.read_open_row(bank, col);
                        self.pim.apply(instr.op, instr.slot, Some(stripe));
                        self.stats.col_reads += 1;
                    }
                    PimOp::Store => {
                        let data = self
                            .pim
                            .apply(PimOp::Store, instr.slot, None)
                            .expect("store returns data");
                        self.channel.write_open_row(bank, col, data);
                        self.stats.col_writes += 1;
                    }
                    op => {
                        // Execute-only (no DRAM access).
                        self.pim.apply(op, instr.slot, None);
                        self.stats.exec_commands += 1;
                        if self.sink.is_enabled() {
                            self.sink.emit(TraceEvent::DramCmd {
                                cycle: now,
                                channel: self.channel_id,
                                bank: 0xff,
                                kind: DramCmdKind::Exec,
                                row: u32::MAX,
                            });
                        }
                    }
                }
            }
            TxnKind::HostRead { reg } => {
                let data = self.channel.read_open_row(bank, col);
                self.out.push(MemResp::LoadData { warp: txn.meta.warp, reg, data });
                self.stats.host_reads += 1;
                self.stats.col_reads += 1;
                self.stats.host_read_latency_sum += now.saturating_sub(txn.arrival);
                if self.sink.is_enabled() {
                    self.sink.emit(TraceEvent::HostReadDone {
                        cycle: now,
                        channel: self.channel_id,
                        warp: txn.meta.warp.0,
                        latency: now.saturating_sub(txn.arrival),
                    });
                }
            }
            TxnKind::HostWrite { data } => {
                self.channel.write_open_row(bank, col, data);
                self.stats.host_writes += 1;
                self.stats.col_writes += 1;
            }
        }
        let outcome = self.backend.on_retire(&txn);
        if self.sink.is_enabled() {
            self.sink.emit(TraceEvent::ReqIssued {
                cycle: now,
                channel: self.channel_id,
                group: txn.group.0,
                warp: txn.meta.warp.0,
                seq: txn.meta.seq,
            });
        }
        if outcome.credit {
            // Return the buffer credit to the core (Kim et al. style).
            self.out.push(MemResp::Credit { warp: txn.meta.warp });
        }
        for (warp, fence_id) in outcome.fence_acks {
            self.stats.fence_acks += 1;
            self.out.push(MemResp::FenceAck { warp, fence_id });
            if self.sink.is_enabled() {
                self.sink.emit(TraceEvent::FenceAck {
                    cycle: now,
                    channel: self.channel_id,
                    warp: warp.0,
                    fence_id,
                });
            }
        }
        self.stats.last_issue_cycle = now;
    }

    /// Oldest bank whose head transaction can issue `needed` right now.
    /// With an adversary attached, a uniform pick among all such banks
    /// replaces the oldest-arrival preference.
    fn pick_bank(&mut self, needed: NeededCommand, now: MemCycle) -> Option<BankId> {
        let adversarial = self.adversary.is_some();
        let mut best: Option<(u64, BankId)> = None;
        let mut candidates: Vec<BankId> = Vec::new();
        for (b, q) in self.bank_q.iter().enumerate() {
            let Some(head) = q.front() else { continue };
            let bank = BankId(b as u8);
            if needed == NeededCommand::Column && !self.backend.issue_allowed(head) {
                continue;
            }
            if self.channel.needed_command(bank, head.loc.row) != needed {
                continue;
            }
            let cmd = match needed {
                NeededCommand::Column => DramCommand::column(
                    bank,
                    if head.is_write() { ColKind::Write } else { ColKind::Read },
                ),
                NeededCommand::Activate => DramCommand::Activate { bank, row: head.loc.row },
                NeededCommand::Precharge => DramCommand::Precharge { bank },
            };
            if !self.channel.can_issue(cmd, now) {
                continue;
            }
            if adversarial {
                candidates.push(bank);
            }
            if best.is_none_or(|(a, _)| head.arrival < a) {
                best = Some((head.arrival, bank));
            }
        }
        if let Some(rng) = self.adversary.as_mut() {
            if !candidates.is_empty() {
                return Some(candidates[rng.gen_index(candidates.len())]);
            }
            return None;
        }
        best.map(|(_, b)| b)
    }

    /// Issues at most one command this cycle: column accesses first (they
    /// retire transactions), then execute-only PIM commands, then
    /// activates, then precharges.
    fn issue_phase(&mut self, now: MemCycle) {
        if let Some(bank) = self.pick_bank(NeededCommand::Column, now) {
            let txn = self.bank_q[bank.index()].front().expect("picked bank has head");
            let kind = if txn.is_write() { ColKind::Write } else { ColKind::Read };
            let issued = self.channel.try_issue(DramCommand::column(bank, kind), now);
            debug_assert!(issued, "pick_bank checked legality");
            let txn = self.bank_q[bank.index()].pop_front().expect("head exists");
            self.bank_queued -= 1;
            self.complete(txn, now);
            return;
        }
        if self.exec_q.front().is_some_and(|head| self.backend.issue_allowed(head)) {
            let txn = self.exec_q.pop_front().expect("peeked head");
            self.complete(txn, now);
            return;
        }
        if let Some(bank) = self.pick_bank(NeededCommand::Activate, now) {
            let row = self.bank_q[bank.index()].front().expect("head exists").loc.row;
            let issued = self.channel.try_issue(DramCommand::Activate { bank, row }, now);
            debug_assert!(issued);
            self.record(now, format!("ACT b{} r{row}", bank.0), None, None);
            self.stats.activates += 1;
            self.stats.last_issue_cycle = now;
            return;
        }
        if let Some(bank) = self.pick_bank(NeededCommand::Precharge, now) {
            let issued = self.channel.try_issue(DramCommand::Precharge { bank }, now);
            debug_assert!(issued);
            self.record(now, format!("PRE b{}", bank.0), None, None);
            self.stats.precharges += 1;
            self.stats.last_issue_cycle = now;
            return;
        }
        if self.cfg.page_policy == PagePolicy::Closed {
            // Eagerly close any open row no queued transaction wants.
            for b in 0..self.bank_q.len() {
                let bank = BankId(b as u8);
                let Some(open) = self.channel.bank(bank).open_row() else { continue };
                if self.bank_q[b].iter().any(|t| t.loc.row == open) {
                    continue;
                }
                if self.channel.try_issue(DramCommand::Precharge { bank }, now) {
                    self.record(now, format!("PRE b{} (closed-page)", bank.0), None, None);
                    self.stats.precharges += 1;
                    self.stats.last_issue_cycle = now;
                    return;
                }
            }
        }
    }

    /// Advances the controller by one memory cycle; returns responses
    /// (load data, fence acks) to send back up the pipe.
    pub fn tick(&mut self, now: MemCycle) -> Vec<MemResp> {
        self.arrival_cycle = now;
        self.channel.maintain(now);
        self.read_q.record_tick();
        self.write_q.record_tick();
        // Periodic occupancy sample for counter tracks (every 64 memory
        // cycles keeps trace volume proportional to runtime, not work).
        if self.sink.is_enabled() && now.is_multiple_of(SAMPLE_STRIDE) {
            self.sink.emit(TraceEvent::QueueSample {
                cycle: now,
                channel: self.channel_id,
                read_q: self.read_q.len() as u32,
                write_q: self.write_q.len() as u32,
            });
        }
        self.consume_markers();
        self.dequeue_phase();
        self.issue_phase(now);
        std::mem::take(&mut self.out)
    }

    /// Advances the controller across `ticks` quiescent memory cycles
    /// starting at `now` — cycles in which [`tick`](Self::tick) would
    /// find the controller idle and change nothing beyond per-cycle
    /// bookkeeping. Replays that bookkeeping in closed form: the
    /// occupancy integrals (at occupancy zero), the write-drain
    /// hysteresis (which re-evaluates an empty queue every cycle), the
    /// arrival stamp used for requests pushed between memory ticks,
    /// and — with a live sink — the periodic queue samples the dense
    /// loop would have emitted at every `SAMPLE_STRIDE` boundary inside
    /// the window (the controller is idle, so each sample reads the
    /// constant occupancies, making the event core's sample stream
    /// byte-identical to the dense core's).
    ///
    /// The caller must not skip across a refresh trigger;
    /// [`Channel::next_refresh_event`] is a horizon event precisely so
    /// the cycle that performs a refresh is ticked densely.
    pub fn skip_ticks(&mut self, now: MemCycle, ticks: u64) {
        if ticks == 0 {
            return;
        }
        debug_assert!(self.is_idle(), "skip_ticks on an active controller");
        debug_assert!(
            self.channel.next_refresh_event(now).is_none_or(|due| due >= now + ticks),
            "skip_ticks window crosses a refresh trigger"
        );
        if self.sink.is_enabled() {
            let read_q = self.read_q.len() as u32;
            let write_q = self.write_q.len() as u32;
            let mut cycle = now.next_multiple_of(SAMPLE_STRIDE);
            while cycle < now + ticks {
                self.sink.emit(TraceEvent::QueueSample {
                    cycle,
                    channel: self.channel_id,
                    read_q,
                    write_q,
                });
                cycle += SAMPLE_STRIDE;
            }
        }
        self.arrival_cycle = now + ticks - 1;
        self.read_q.record_ticks(ticks);
        self.write_q.record_ticks(ticks);
        // dequeue_phase re-runs the hysteresis comparison every cycle
        // even when both queues are empty; one evaluation at the final
        // occupancy is equivalent for a window in which it is constant.
        if self.write_q.fill_fraction() >= self.cfg.write_drain_high {
            self.draining_writes = true;
        } else if self.write_q.fill_fraction() <= self.cfg.write_drain_low {
            self.draining_writes = false;
        }
    }

    /// Whether all queues, command queues and ordering state are drained.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.bank_queued,
            self.bank_q.iter().map(VecDeque::len).sum::<usize>(),
            "bank_queued counter out of sync"
        );
        self.bank_queued == 0
            && self.read_q.is_empty()
            && self.write_q.is_empty()
            && self.exec_q.is_empty()
            && self.backend.is_idle()
            && self.out.is_empty()
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> McStats {
        let mut s = self.stats;
        let b = self.backend.stats();
        s.ol_packets = b.packets_merged;
        s.sanity_violations = b.sanity_violations;
        s
    }

    /// The DRAM channel (initialisation / verification).
    #[must_use]
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Mutable DRAM channel access (workload data initialisation).
    pub fn channel_mut(&mut self) -> &mut Channel {
        &mut self.channel
    }

    /// The PIM unit attached to this channel.
    #[must_use]
    pub fn pim(&self) -> &PimUnit {
        &self.pim
    }

    /// Mean read/write transaction-queue occupancies.
    #[must_use]
    pub fn mean_queue_occupancy(&self) -> (f64, f64) {
        (self.read_q.mean_occupancy(), self.write_q.mean_occupancy())
    }
}

/// Quiescence horizon in *memory* cycles. An active controller (any
/// queue non-empty, fences pending, ordering state live, or responses
/// buffered) reports `Some(now)`: its tick loop makes scheduling
/// decisions every cycle and must run densely. A closed-page
/// controller with a row still open also reports `Some(now)` — the
/// eager precharge scan in the issue phase retries every cycle until
/// the row closes. An idle controller's only future event is the
/// channel's refresh trigger; with refresh disabled it is fully
/// drained (`None`).
impl NextEvent for MemoryController {
    fn next_event(&self, now: u64) -> Option<u64> {
        if !self.is_idle() {
            return Some(now);
        }
        if self.cfg.page_policy == PagePolicy::Closed {
            let any_open = (0..self.bank_q.len())
                .any(|b| self.channel.bank(BankId(b as u8)).open_row().is_some());
            if any_open {
                return Some(now);
            }
        }
        self.channel.next_refresh_event(now)
    }
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("read_q", &self.read_q.len())
            .field("write_q", &self.write_q.len())
            .field("exec_q", &self.exec_q.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight::message::{MarkerCopy, ReqMeta};
    use orderlight::packet::OrderLightPacket;
    use orderlight::types::{Addr, ChannelId, GlobalWarpId, MemGroupId, Stripe, TsSlot};
    use orderlight::{AluOp, PimInstruction, Reg};
    use orderlight_hbm::TimingParams;
    use orderlight_pim::TsSize;

    fn mc() -> MemoryController {
        let cfg = McConfig::default();
        let channel = Channel::new(TimingParams::hbm_table1(), 16, 2048);
        let pim = PimUnit::new(TsSize::Half, 2048, 16);
        MemoryController::new(cfg, channel, pim)
    }

    fn warp() -> GlobalWarpId {
        GlobalWarpId::new(0, 0)
    }

    fn pim_req(op: PimOp, addr: u64, slot: u16, seq: u64) -> MemReq {
        MemReq::Pim {
            instr: PimInstruction {
                op,
                addr: Addr(addr),
                slot: TsSlot(slot),
                group: MemGroupId(0),
            },
            meta: ReqMeta { warp: warp(), seq },
        }
    }

    fn ol_marker(number: u32) -> MemReq {
        MemReq::Marker(MarkerCopy {
            marker: Marker::OrderLight(OrderLightPacket::new(ChannelId(0), MemGroupId(0), number)),
            total_copies: 1,
        })
    }

    fn fence_probe(fence_id: u64) -> MemReq {
        MemReq::Marker(MarkerCopy {
            marker: Marker::FenceProbe { warp: warp(), fence_id, channel: ChannelId(0) },
            total_copies: 1,
        })
    }

    /// Drives the controller until idle, returning responses and the
    /// final cycle.
    fn run_until_idle(mc: &mut MemoryController) -> (Vec<MemResp>, MemCycle) {
        let mut out = Vec::new();
        let mut now = 0;
        while !mc.is_idle() {
            out.extend(mc.tick(now));
            now += 1;
            assert!(now < 1_000_000, "controller did not drain");
        }
        (out, now)
    }

    #[test]
    fn vector_add_with_orderlight_is_correct() {
        // c[i] = a[i] + b[i] over one tile of 4 stripes. Addresses chosen
        // so a, b, c land in different rows of bank 0 of channel 0:
        // within-channel offset advances by 2048 per bank-rotation; use
        // the bank-aligned stride so all rows share bank 0.
        let mut m = mc();
        // Rows 0, 1, 2 of bank 0, channel 0 (the paper's layout: all
        // operands of a computation in one bank, different rows).
        let a0 = m.cfg.mapping.compose(ChannelId(0), 0).0;
        let b0 = m.cfg.mapping.compose(ChannelId(0), 2048).0;
        let c0 = m.cfg.mapping.compose(ChannelId(0), 4096).0;
        // Initialise a and b in the functional store.
        for i in 0..4u64 {
            let la = m.cfg.mapping.decode(Addr(a0 + i * 32));
            let lb = m.cfg.mapping.decode(Addr(b0 + i * 32));
            assert_eq!(la.bank, lb.bank, "operands share a bank");
            m.channel_mut().store_mut().write(la.bank, la.row, la.col, Stripe::splat(10));
            m.channel_mut().store_mut().write(lb.bank, lb.row, lb.col, Stripe::splat(32));
        }
        let mut seq = 0;
        for i in 0..4u64 {
            m.push(pim_req(PimOp::Load, a0 + i * 32, i as u16, seq));
            seq += 1;
        }
        m.push(ol_marker(1));
        for i in 0..4u64 {
            m.push(pim_req(PimOp::Compute(AluOp::Add), b0 + i * 32, i as u16, seq));
            seq += 1;
        }
        m.push(ol_marker(2));
        for i in 0..4u64 {
            m.push(pim_req(PimOp::Store, c0 + i * 32, i as u16, seq));
            seq += 1;
        }
        let (_, _) = run_until_idle(&mut m);
        for i in 0..4u64 {
            let lc = m.cfg.mapping.decode(Addr(c0 + i * 32));
            assert_eq!(
                m.channel().store().read(lc.bank, lc.row, lc.col),
                Stripe::splat(42),
                "stripe {i}"
            );
        }
        let s = m.stats();
        assert_eq!(s.pim_commands, 12);
        assert_eq!(s.ol_packets, 2);
        assert_eq!(s.sanity_violations, 0);
    }

    #[test]
    fn fence_probe_acks_after_prior_requests_issue() {
        let mut m = mc();
        for i in 0..4u64 {
            m.push(pim_req(PimOp::Load, i * 32, i as u16, i));
        }
        m.push(fence_probe(9));
        let (out, _) = run_until_idle(&mut m);
        let acks: Vec<_> =
            out.iter().filter(|r| matches!(r, MemResp::FenceAck { fence_id: 9, .. })).collect();
        assert_eq!(acks.len(), 1);
        assert_eq!(m.stats().fence_acks, 1);
    }

    #[test]
    fn fence_probe_with_empty_controller_acks_immediately() {
        let mut m = mc();
        m.push(fence_probe(1));
        let out = m.tick(0);
        assert!(matches!(out[0], MemResp::FenceAck { fence_id: 1, .. }));
    }

    #[test]
    fn host_read_returns_data() {
        let mut m = mc();
        let loc = m.cfg.mapping.decode(Addr(64));
        m.channel_mut().store_mut().write(loc.bank, loc.row, loc.col, Stripe::splat(5));
        m.push(MemReq::HostRead {
            addr: Addr(64),
            reg: Reg(3),
            meta: ReqMeta { warp: warp(), seq: 0 },
        });
        let (out, _) = run_until_idle(&mut m);
        assert!(out.iter().any(|r| matches!(
            r,
            MemResp::LoadData { reg: Reg(3), data, .. } if *data == Stripe::splat(5)
        )));
        assert_eq!(m.stats().host_reads, 1);
    }

    #[test]
    fn orderlight_does_not_constrain_other_group() {
        // Group-1 host write queued behind a group-0 OrderLight packet
        // still proceeds while group 0 is blocked.
        let mut m = mc();
        // A group-0 PIM load ahead of the packet.
        m.push(pim_req(PimOp::Load, 0, 0, 0));
        m.push(ol_marker(1));
        // Host write to a group-1 bank (banks 8..16 under the default
        // GroupMap): the start of bank 8's row region on channel 0.
        let addr = m.cfg.mapping.compose(ChannelId(0), m.cfg.mapping.bank_base_offset(BankId(8)));
        let loc = m.cfg.mapping.decode(addr);
        assert_eq!(loc.bank, BankId(8));
        assert_eq!(m.cfg.groups.group_of(loc.bank), MemGroupId(1));
        m.push(MemReq::HostWrite {
            addr,
            data: Stripe::splat(1),
            meta: ReqMeta { warp: GlobalWarpId::new(0, 1), seq: 0 },
        });
        let (_, _) = run_until_idle(&mut m);
        assert_eq!(m.stats().host_writes, 1);
        assert_eq!(m.stats().pim_commands, 1);
    }

    #[test]
    fn without_ordering_frfcfs_reorders_row_hits() {
        // Two loads to row X, then a store to row Y, then two more loads
        // to row X — without ordering the scheduler services the row-X
        // loads together (row-hit first), issuing the store *after* the
        // later loads even though it arrived earlier.
        let mut m = mc();
        let other_row = m.cfg.mapping.compose(ChannelId(0), 2048).0;
        m.push(pim_req(PimOp::Load, 0, 0, 0));
        m.push(pim_req(PimOp::Load, 32, 1, 1));
        m.push(pim_req(PimOp::Store, other_row, 0, 2));
        m.push(pim_req(PimOp::Load, 64, 2, 3));
        m.push(pim_req(PimOp::Load, 96, 3, 4));
        // Run a bounded number of cycles and inspect issue order through
        // stats: all 4 reads should complete before the write.
        let mut now = 0;
        let mut read_done_at = None;
        let mut write_done_at = None;
        while !m.is_idle() {
            m.tick(now);
            let s = m.stats();
            if s.col_reads == 4 && read_done_at.is_none() {
                read_done_at = Some(now);
            }
            if s.col_writes == 1 && write_done_at.is_none() {
                write_done_at = Some(now);
            }
            now += 1;
            assert!(now < 100_000);
        }
        assert!(
            read_done_at.unwrap() < write_done_at.unwrap(),
            "row-hit loads should overtake the older store"
        );
    }

    #[test]
    fn orderlight_prevents_the_reordering() {
        // Same pattern as above but with OrderLight packets between the
        // phases: the store must issue before the later loads.
        let mut m = mc();
        let other_row = m.cfg.mapping.compose(ChannelId(0), 2048).0;
        m.push(pim_req(PimOp::Load, 0, 0, 0));
        m.push(pim_req(PimOp::Load, 32, 1, 1));
        m.push(ol_marker(1));
        m.push(pim_req(PimOp::Store, other_row, 0, 2));
        m.push(ol_marker(2));
        m.push(pim_req(PimOp::Load, 64, 2, 3));
        m.push(pim_req(PimOp::Load, 96, 3, 4));
        let mut now = 0;
        let mut third_read_at = None;
        let mut write_at = None;
        while !m.is_idle() {
            m.tick(now);
            let s = m.stats();
            if s.col_reads >= 3 && third_read_at.is_none() {
                third_read_at = Some(now);
            }
            if s.col_writes == 1 && write_at.is_none() {
                write_at = Some(now);
            }
            now += 1;
            assert!(now < 100_000);
        }
        assert!(
            write_at.unwrap() < third_read_at.unwrap(),
            "OrderLight must force the store before the post-packet loads"
        );
    }

    #[test]
    fn exec_commands_flow_without_dram() {
        let mut m = mc();
        m.push(pim_req(PimOp::Load, 0, 0, 0));
        m.push(ol_marker(1));
        m.push(pim_req(PimOp::Execute(AluOp::ScaleImm(3)), 0, 0, 1));
        let (_, _) = run_until_idle(&mut m);
        let s = m.stats();
        assert_eq!(s.exec_commands, 1);
        assert_eq!(s.pim_commands, 2);
        assert_eq!(m.pim().stats().execute_commands, 1);
    }

    #[test]
    fn trace_records_commands_in_issue_order() {
        let cfg = McConfig { trace: true, ..McConfig::default() };
        let channel = Channel::new(TimingParams::hbm_table1(), 16, 2048);
        let pim = PimUnit::new(TsSize::Half, 2048, 16);
        let mut m = MemoryController::new(cfg, channel, pim);
        m.push(pim_req(PimOp::Load, 0, 0, 0));
        m.push(ol_marker(1));
        m.push(pim_req(PimOp::Store, 64, 0, 1));
        let (_, _) = run_until_idle(&mut m);
        let trace = m.trace();
        let kinds: Vec<&str> =
            trace.iter().map(|r| r.what.split_whitespace().next().unwrap()).collect();
        // ACT row 0, the load, then (same row) the store.
        assert_eq!(kinds, vec!["ACT", "pim_load", "pim_store"]);
        // Cycles are non-decreasing.
        assert!(trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // Column records carry warp identity and sequence numbers.
        assert_eq!(trace[1].seq, Some(0));
        assert_eq!(trace[2].seq, Some(1));
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let mut m = mc();
        m.push(pim_req(PimOp::Load, 0, 0, 0));
        let (_, _) = run_until_idle(&mut m);
        assert!(m.trace().is_empty());
    }

    #[test]
    fn backpressure_is_reported() {
        let mut m = mc();
        for i in 0..64u64 {
            assert!(m.can_accept(&pim_req(PimOp::Load, i * 32, 0, i)));
            m.push(pim_req(PimOp::Load, i * 32, 0, i));
        }
        assert!(!m.can_accept(&pim_req(PimOp::Load, 0, 0, 99)));
        // The write queue still has space.
        assert!(m.can_accept(&pim_req(PimOp::Store, 0, 0, 99)));
        // OrderLight needs space in *both* queues.
        assert!(!m.can_accept(&ol_marker(1)));
    }
}
