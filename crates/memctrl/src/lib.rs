//! # Memory controller with pluggable memory-ordering backends
//!
//! The controller owns one HBM [`orderlight_hbm::Channel`] and its
//! (representative) [`orderlight_pim::PimUnit`]. Requests arrive from the
//! memory pipe into separate read and write transaction queues (Table 1:
//! 64 entries each); an FR-FCFS scheduler dequeues them into per-bank
//! command queues and issues DRAM commands subject to timing.
//!
//! Ordering is enforced by a pluggable [`ordering::OrderingBackend`]
//! selected via [`McConfig::ordering`]. Five backends are implemented
//! (see [`ordering::OrderingKind`]):
//!
//! * **OrderLight** (paper Section 5.3.2) — an in-band packet is copied
//!   into both transaction queues ([`orderlight::fsm::diverge`]), merged
//!   at the scheduler stage, and then enforced with a per-memory-group
//!   *(flag, in-flight counter)* pair: requests behind the packet are not
//!   scheduled until every request ahead of it has been issued to the
//!   DRAM. Requests of other memory groups are never constrained.
//! * **Fence** (paper Section 6 baseline) — the core-centric fence. A
//!   probe arriving at the controller is acknowledged once every prior
//!   request from the fencing warp has been issued to the DRAM; the warp
//!   stalls until the ack reaches it back up the pipe.
//! * **SeqNum** (Kim et al., paper reference 27) — per-warp PIM requests
//!   are dequeued and issued strictly in sequence-number order and a
//!   buffer credit returns to the core per retired request.
//! * **LouvreVersioned** (Kumar et al.) — in-band release markers carry
//!   per-group versions; a merged release is *held* at the scheduler
//!   until every older request of its group has issued. No per-group
//!   flag is broadcast.
//! * **BulkBitwiseStrong** (Perach et al.) — controller-enforced strong
//!   consistency: the core emits no ordering primitive at all and the
//!   controller serializes each memory group in arrival order, with
//!   epoch barriers at read/write flips recorded for the oracle.
//!
//! Every backend also services fence probes, so probe traffic remains
//! answerable regardless of the selected primitive.

pub mod mc;
pub mod ordering;
pub mod queues;
pub mod txn;

pub use mc::{IssueRecord, McConfig, McStats, MemoryController, PagePolicy};
pub use ordering::{
    BackendStats, FenceTracker, GroupOrdering, MarkerAction, OrderingBackend, OrderingKind,
    RetireOutcome,
};
pub use queues::{QueueEntry, TransQueue};
pub use txn::Transaction;
