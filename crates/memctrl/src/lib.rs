//! # Memory controller with memory-centric ordering (paper Section 5.3.2)
//!
//! The controller owns one HBM [`orderlight_hbm::Channel`] and its
//! (representative) [`orderlight_pim::PimUnit`]. Requests arrive from the
//! memory pipe into separate read and write transaction queues (Table 1:
//! 64 entries each); an FR-FCFS scheduler dequeues them into per-bank
//! command queues and issues DRAM commands subject to timing.
//!
//! Two ordering mechanisms are implemented:
//!
//! * **OrderLight** — an in-band packet is copied into both transaction
//!   queues ([`orderlight::fsm::diverge`]), merged at the scheduler stage,
//!   and then enforced with a per-memory-group *(flag, in-flight counter)*
//!   pair: requests behind the packet are not scheduled until every
//!   request ahead of it has been issued to the DRAM. Requests of other
//!   memory groups are never constrained.
//! * **Fence acknowledgement** — the baseline core-centric fence. A fence
//!   probe arriving at the controller is acknowledged once every prior
//!   request from the fencing warp has been issued to the DRAM; the warp
//!   stalls until the ack reaches it back up the pipe.

pub mod mc;
pub mod ordering;
pub mod queues;
pub mod txn;

pub use mc::{IssueRecord, McConfig, McStats, MemoryController, PagePolicy};
pub use ordering::{FenceTracker, GroupOrdering};
pub use queues::{QueueEntry, TransQueue};
pub use txn::Transaction;
