//! The streaming trace-stream aggregator behind `orderlight profile`.

use crate::report::ProfileReport;
use orderlight_trace::{ClockDomains, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Where a packet is in its lifecycle, keyed by
/// `(channel, group, number)`.
#[derive(Debug, Default, Clone, Copy)]
struct PacketTimes {
    /// Core cycle of creation at the SM.
    created: Option<u64>,
    /// Memory cycle the copy reached the controller's queues.
    enqueued: Option<u64>,
}

/// In-flight matching state plus the finished aggregates.
#[derive(Debug, Default)]
struct State {
    report: ProfileReport,
    /// `(warp, fence_id)` → core cycle the fence stall began.
    fences: BTreeMap<(u32, u64), u64>,
    /// `(channel, warp, seq)` → memory cycle of dequeue.
    reqs: BTreeMap<(u8, u32, u64), u64>,
    /// `(channel, group, number)` → lifecycle stamps so far.
    packets: BTreeMap<(u8, u8, u32), PacketTimes>,
}

/// A passive [`TraceSink`] that folds the event stream into a
/// [`ProfileReport`] as it arrives — nothing is buffered beyond the
/// open (unmatched) lifecycle spans, so profiling long runs costs
/// memory proportional to *in-flight* work, not trace length.
///
/// Attach it with `System::attach_sink` (or through
/// [`crate::profile_scenario`]). The aggregation is order-insensitive
/// over the events it folds, and every emitter synthesizes its periodic
/// events at skip boundaries, so the report is byte-identical whether
/// the run used the dense cycle core or the event core.
#[derive(Debug)]
pub struct StallProfiler {
    clocks: ClockDomains,
    state: Mutex<State>,
}

impl StallProfiler {
    /// A profiler converting cross-domain lifecycle spans with
    /// `clocks` (take them from `System::clock_domains`).
    #[must_use]
    pub fn new(clocks: ClockDomains) -> Self {
        StallProfiler { clocks, state: Mutex::new(State::default()) }
    }

    /// Snapshots the aggregation. Open lifecycle spans (a fence begun
    /// but not acknowledged, a packet enqueued but never merged) are
    /// counted into [`ProfileReport::unmatched`] rather than silently
    /// vanishing.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let state = self.state.lock().expect("profiler poisoned");
        let mut report = state.report.clone();
        report.unmatched = (state.fences.len() + state.reqs.len() + state.packets.len()) as u64;
        report
    }
}

impl TraceSink for StallProfiler {
    fn emit(&self, event: TraceEvent) {
        let mut state = self.state.lock().expect("profiler poisoned");
        let state = &mut *state;
        let r = &mut state.report;
        r.events += 1;
        match event {
            TraceEvent::CoreStall { cause, cycles, .. } => {
                r.stalls[cause as usize] += cycles;
            }
            TraceEvent::FenceStallBegin { cycle, warp, fence_id, .. } => {
                state.fences.entry((warp, fence_id)).or_insert(cycle);
            }
            TraceEvent::FenceStallEnd { cycle, warp, fence_id, .. } => {
                if let Some(begin) = state.fences.remove(&(warp, fence_id)) {
                    r.fence_round_trip.note(cycle.saturating_sub(begin));
                }
            }
            TraceEvent::FenceAck { .. } => r.fence_acks += 1,
            TraceEvent::PacketCreated { cycle, channel, group, number, .. } => {
                r.packets_created += 1;
                let times = state.packets.entry((channel, group, number)).or_default();
                if times.created.is_none() {
                    times.created = Some(cycle);
                }
            }
            TraceEvent::PacketEnqueued { cycle, channel, group, number } => {
                r.packets_enqueued += 1;
                let times = state.packets.entry((channel, group, number)).or_default();
                if times.enqueued.is_none() {
                    times.enqueued = Some(cycle);
                    if let Some(created) = times.created {
                        let us = self.clocks.to_us(cycle, false) - self.clocks.to_us(created, true);
                        r.noc_delay.note(us.max(0.0));
                    }
                }
            }
            TraceEvent::PacketMerged { cycle, channel, group, number } => {
                r.packets_merged += 1;
                if let Some(times) = state.packets.remove(&(channel, group, number)) {
                    if let Some(enqueued) = times.enqueued {
                        r.barrier_hold.note(cycle.saturating_sub(enqueued));
                    }
                }
            }
            TraceEvent::ReqEnqueued { .. } => r.reqs_enqueued += 1,
            TraceEvent::ReqDequeued { cycle, channel, warp, seq, waited, .. } => {
                r.reqs_dequeued += 1;
                r.mc_queue_wait.note(waited);
                state.reqs.entry((channel, warp, seq)).or_insert(cycle);
            }
            TraceEvent::ReqIssued { cycle, channel, warp, seq, .. } => {
                r.reqs_issued += 1;
                if let Some(dequeued) = state.reqs.remove(&(channel, warp, seq)) {
                    r.bank_wait.note(cycle.saturating_sub(dequeued));
                }
            }
            TraceEvent::HostReadDone { latency, .. } => r.host_read.note(latency),
            TraceEvent::RefreshWindow { rfc, .. } => {
                r.refresh_windows += 1;
                r.refresh_cycles += rfc;
            }
            TraceEvent::PipeSample { in_flight, returning, .. } => {
                r.pipe_samples += 1;
                r.pipe_in_flight_sum += u64::from(in_flight);
                r.pipe_in_flight_max = r.pipe_in_flight_max.max(in_flight);
                r.pipe_returning_sum += u64::from(returning);
            }
            TraceEvent::QueueSample { read_q, write_q, .. } => {
                r.queue_samples += 1;
                r.queue_read_sum += u64::from(read_q);
                r.queue_write_sum += u64::from(write_q);
            }
            // Issue/retire activity and the DRAM command timeline are
            // counted (`events`) but carry no latency span to fold.
            TraceEvent::WarpIssue { .. }
            | TraceEvent::WarpRetire { .. }
            | TraceEvent::SchedDecision { .. }
            | TraceEvent::DramCmd { .. }
            | TraceEvent::RowInterval { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight_trace::StallCause;

    fn profiler() -> StallProfiler {
        StallProfiler::new(ClockDomains::paper())
    }

    #[test]
    fn stall_runs_fold_into_per_cause_sums() {
        let p = profiler();
        p.emit(TraceEvent::CoreStall { cycle: 9, sm: 0, cause: StallCause::FenceWait, cycles: 7 });
        p.emit(TraceEvent::CoreStall { cycle: 30, sm: 1, cause: StallCause::FenceWait, cycles: 2 });
        p.emit(TraceEvent::CoreStall { cycle: 5, sm: 0, cause: StallCause::RegWait, cycles: 3 });
        let r = p.report();
        assert_eq!(r.stall(StallCause::FenceWait), 9);
        assert_eq!(r.stall(StallCause::RegWait), 3);
        assert_eq!(r.total_attributed(), 12);
    }

    #[test]
    fn lifecycle_pairs_match_across_clock_domains() {
        let p = profiler();
        // 120 core cycles and 85 memory cycles are both 100 ns.
        p.emit(TraceEvent::PacketCreated { cycle: 120, channel: 0, group: 1, number: 7, warp: 0 });
        p.emit(TraceEvent::PacketEnqueued { cycle: 170, channel: 0, group: 1, number: 7 });
        p.emit(TraceEvent::PacketMerged { cycle: 200, channel: 0, group: 1, number: 7 });
        p.emit(TraceEvent::FenceStallBegin { cycle: 10, sm: 0, warp: 3, fence_id: 1 });
        p.emit(TraceEvent::FenceStallEnd { cycle: 110, sm: 0, warp: 3, fence_id: 1 });
        let r = p.report();
        // 170 mem cycles = 200 ns wall; created at 100 ns → 100 ns NoC.
        assert_eq!(r.noc_delay.count, 1);
        assert!((r.noc_delay.sum_us - 0.1).abs() < 1e-9, "noc {} us", r.noc_delay.sum_us);
        assert_eq!(r.barrier_hold.sum, 30);
        assert_eq!(r.fence_round_trip.sum, 100);
        assert_eq!(r.unmatched, 0, "every span closed");
    }

    #[test]
    fn open_spans_are_reported_not_dropped() {
        let p = profiler();
        p.emit(TraceEvent::FenceStallBegin { cycle: 4, sm: 0, warp: 0, fence_id: 9 });
        p.emit(TraceEvent::ReqDequeued {
            cycle: 8,
            channel: 0,
            group: 0,
            warp: 1,
            seq: 2,
            bank: 0,
            waited: 5,
        });
        let r = p.report();
        assert_eq!(r.unmatched, 2);
        assert_eq!(r.mc_queue_wait.sum, 5, "queue wait is charged at dequeue time");
        assert_eq!(r.bank_wait.count, 0, "bank wait needs the issue side");
    }
}
