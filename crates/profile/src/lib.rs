//! # Packet-lifecycle spans and fence-stall attribution
//!
//! Answers *where the cycles went* for a profiled run, in two layers:
//!
//! * **Core-side stall attribution.** Every SM stall cycle is charged
//!   to exactly one typed [`orderlight_trace::StallCause`] (fence wait,
//!   fence drain, OrderLight injection spacing, register dependence,
//!   structural hazard, credit exhaustion). The profiler streams the
//!   run-length-batched `CoreStall` events into per-cause sums and
//!   verifies a **conservation invariant**: the attributed cycles per
//!   cause equal — exactly, not approximately — the stall counters the
//!   SMs already maintain in [`orderlight_sim::RunStats`]. A profile
//!   whose breakdown does not add up is a bug, not a report.
//! * **Memory-side lifecycle decomposition.** Per-request and
//!   per-primitive latency phases reconstructed by matching lifecycle
//!   event pairs: NoC traversal (packet created at the core → copy at
//!   the controller, converted across clock domains onto wall time),
//!   MC ingress-queue residency, bank-timing wait (dequeue → column
//!   issue), OrderLight barrier hold (copy arrival → merge), fence
//!   round trips, and refresh lockout windows.
//!
//! [`StallProfiler`] is a passive [`orderlight_trace::TraceSink`]; it
//! aggregates in-stream and never influences simulated behaviour. It
//! works under **both** execution cores: every component synthesizes
//! its periodic trace events closed-form at skip boundaries, and every
//! aggregate here is order-insensitive, so the report is byte-identical
//! across cores and the conservation invariant holds bit-identically
//! (enforced by `tests/profile_core_equivalence.rs`).
//!
//! ```
//! use orderlight_profile::profile_scenario;
//! use orderlight_sim::ScenarioBuilder;
//! use orderlight_sim::config::ExecMode;
//! use orderlight_workloads::{OrderingMode, WorkloadId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(OrderingMode::Fence))
//!     .data_kb(8) // keep the doctest fast
//!     .build()?;
//! let outcome = profile_scenario(&scenario)?;
//! assert!(outcome.is_conserved(), "{}", outcome.summary());
//! # Ok(())
//! # }
//! ```

pub mod profiler;
pub mod report;
pub mod runner;

pub use profiler::StallProfiler;
pub use report::{NocLat, PhaseLat, ProfileReport};
pub use runner::{profile_points, profile_scenario, profile_scenario_with, ProfileOutcome};
