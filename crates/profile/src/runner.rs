//! The packaged profiling harness: run a scenario with the
//! [`StallProfiler`] attached and check the conservation invariant.

use crate::profiler::StallProfiler;
use crate::report::ProfileReport;
use orderlight_sim::experiments::JobSpec;
use orderlight_sim::system::SimError;
use orderlight_sim::{Pool, RunStats, Scenario};
use orderlight_trace::{ClockDomains, SharedSink, TeeSink};
use std::sync::Arc;

/// Everything a profiled run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileOutcome {
    /// The run's ordinary statistics, bit-identical to an unprofiled
    /// run on the same core (the profiler only observes).
    pub stats: RunStats,
    /// The stall attribution and lifecycle decomposition.
    pub report: ProfileReport,
    /// The conservation verdict: `Err` carries every violated equation.
    pub conservation: Result<(), String>,
    /// The run's clock domains, for exporters that place the teed
    /// event stream on the wall-clock axis.
    pub clocks: ClockDomains,
}

impl ProfileOutcome {
    /// Whether every attributed stall cycle conserved the run's own
    /// counters.
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.conservation.is_ok()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "profiled {} events; {} of {} stall cycles attributed; conservation {}",
            self.report.events,
            self.report.total_attributed(),
            self.stats.stall_cycles(),
            match &self.conservation {
                Ok(()) => "holds".to_string(),
                Err(e) => format!("VIOLATED ({e})"),
            }
        )
    }
}

/// Runs `scenario` with a [`StallProfiler`] attached as the full-system
/// trace sink and returns the attribution. The run uses whichever core
/// the scenario selects — skip boundaries synthesize the periodic
/// events, so the report is byte-identical across cores.
///
/// # Errors
/// Returns [`SimError`] on build failure or budget exhaustion.
pub fn profile_scenario(scenario: &Scenario) -> Result<ProfileOutcome, SimError> {
    profile_scenario_with(scenario, None)
}

/// Like [`profile_scenario`], but tees the event stream into `extra`
/// as well — the CLI uses this to feed a `RingSink` for the Chrome
/// export while the profiler aggregates the same stream.
///
/// # Errors
/// Returns [`SimError`] on build failure or budget exhaustion.
pub fn profile_scenario_with(
    scenario: &Scenario,
    extra: Option<SharedSink>,
) -> Result<ProfileOutcome, SimError> {
    let mut sys = scenario.system()?;
    let clocks = sys.clock_domains();
    let profiler = Arc::new(StallProfiler::new(clocks));
    let sink: SharedSink = match extra {
        Some(extra) => Arc::new(TeeSink::new(profiler.clone(), extra)),
        None => profiler.clone(),
    };
    sys.attach_sink(sink);
    let stats = sys.run_with(scenario.budget(), scenario.core())?;
    let mut report = profiler.report();
    // Tag the attribution with the backend that produced it: the same
    // stall cause reads differently under different ordering machinery.
    report.ordering = scenario.experiment().mode.ordering_backend().to_string();
    let conservation = report.verify(&stats);
    Ok(ProfileOutcome { stats, report, conservation, clocks })
}

/// Profiles every spec through `pool`, returning outcomes in input
/// order regardless of scheduling — each job owns its profiler, so the
/// serialized reports are bit-identical across worker counts.
///
/// # Errors
/// Propagates the first [`SimError`] in input order.
pub fn profile_points(specs: &[JobSpec], pool: &Pool) -> Result<Vec<ProfileOutcome>, SimError> {
    pool.run(
        specs
            .iter()
            .map(|spec| {
                move || -> Result<ProfileOutcome, SimError> {
                    let scenario =
                        spec.builder().build().map_err(|e| SimError::config(e.to_string()))?;
                    profile_scenario(&scenario)
                }
            })
            .collect::<Vec<_>>(),
    )
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orderlight_sim::config::ExecMode;
    use orderlight_sim::{ScenarioBuilder, SimCore};
    use orderlight_workloads::{OrderingMode, WorkloadId};

    fn small(mode: OrderingMode) -> ScenarioBuilder {
        ScenarioBuilder::new(WorkloadId::Add, ExecMode::Pim(mode)).data_kb(8)
    }

    #[test]
    fn fence_run_attributes_and_conserves() {
        let outcome = profile_scenario(&small(OrderingMode::Fence).build().unwrap()).unwrap();
        assert!(outcome.is_conserved(), "{}", outcome.summary());
        assert!(outcome.stats.sm.fence_stall_cycles > 0, "fence mode must stall on fences");
        assert!(outcome.report.fence_round_trip.count > 0, "round trips must be reconstructed");
        assert!(outcome.report.mc_queue_wait.count > 0);
    }

    #[test]
    fn orderlight_run_sees_the_packet_lifecycle() {
        let outcome = profile_scenario(&small(OrderingMode::OrderLight).build().unwrap()).unwrap();
        assert!(outcome.is_conserved(), "{}", outcome.summary());
        assert!(outcome.report.packets_created > 0);
        assert_eq!(
            outcome.report.packets_created, outcome.report.packets_merged,
            "every packet must merge by quiescence"
        );
        assert!(outcome.report.noc_delay.count > 0, "noc traversal must be measured");
        assert!(outcome.report.noc_delay.sum_us > 0.0);
    }

    #[test]
    fn profiling_is_observe_only_on_both_cores() {
        for core in [SimCore::Cycle, SimCore::Event] {
            let baseline = small(OrderingMode::Fence).core(core).build().unwrap().run().unwrap();
            let profiled =
                profile_scenario(&small(OrderingMode::Fence).core(core).build().unwrap()).unwrap();
            assert_eq!(
                profiled.stats, baseline,
                "profiler must not perturb the run under {core:?}"
            );
            assert!(profiled.is_conserved(), "{core:?}: {}", profiled.summary());
        }
    }
}
