//! Property-based tests of the DRAM timing state machine: no random
//! command schedule, however adversarial, can violate the JEDEC-style
//! spacing rules the model enforces.

use orderlight::types::BankId;
use orderlight_hbm::{Channel, ColKind, DramCommand, TimingParams};
use proptest::prelude::*;

/// A random intent the driver tries at each step.
#[derive(Debug, Clone, Copy)]
enum Intent {
    Act { bank: u8, row: u32 },
    Col { bank: u8, write: bool },
    Pre { bank: u8 },
    Wait,
}

fn intent() -> impl Strategy<Value = Intent> {
    prop_oneof![
        (0u8..4, 0u32..4).prop_map(|(bank, row)| Intent::Act { bank, row }),
        (0u8..4, any::<bool>()).prop_map(|(bank, write)| Intent::Col { bank, write }),
        (0u8..4).prop_map(|bank| Intent::Pre { bank }),
        Just(Intent::Wait),
    ]
}

proptest! {
    /// Whatever the driver attempts, `try_issue` only ever applies legal
    /// commands (the strict state machine would panic otherwise), and
    /// the recorded issue times respect every pairwise spacing rule.
    #[test]
    #[allow(clippy::explicit_counter_loop)]
    fn random_schedules_respect_all_timing(intents in proptest::collection::vec(intent(), 1..400)) {
        let t = TimingParams::hbm_table1();
        let mut ch = Channel::new(t, 4, 2048);
        let mut now = 0u64;
        let mut acts: Vec<(u64, u8)> = Vec::new();
        let mut cols: Vec<(u64, u8)> = Vec::new();
        for i in intents {
            match i {
                Intent::Act { bank, row } => {
                    if ch.try_issue(DramCommand::Activate { bank: BankId(bank), row }, now) {
                        acts.push((now, bank));
                    }
                }
                Intent::Col { bank, write } => {
                    let kind = if write { ColKind::Write } else { ColKind::Read };
                    if ch.try_issue(DramCommand::column(BankId(bank), kind), now) {
                        cols.push((now, bank));
                    }
                }
                Intent::Pre { bank } => {
                    let _ = ch.try_issue(DramCommand::Precharge { bank: BankId(bank) }, now);
                }
                Intent::Wait => {}
            }
            now += 1;
        }
        // ACT-to-ACT: tRRD across banks, tRC within a bank.
        for w in acts.windows(2) {
            prop_assert!(w[1].0 - w[0].0 >= t.rrd, "tRRD violated");
        }
        for bank in 0..4u8 {
            let mine: Vec<u64> = acts.iter().filter(|(_, b)| *b == bank).map(|(c, _)| *c).collect();
            for w in mine.windows(2) {
                prop_assert!(w[1] - w[0] >= t.rc(), "tRC violated on bank {bank}");
            }
        }
        // Column-to-column: tCCD on the channel, tCCDL within a bank.
        for w in cols.windows(2) {
            prop_assert!(w[1].0 - w[0].0 >= t.ccd, "tCCD violated");
        }
        for bank in 0..4u8 {
            let mine: Vec<u64> = cols.iter().filter(|(_, b)| *b == bank).map(|(c, _)| *c).collect();
            for w in mine.windows(2) {
                prop_assert!(w[1] - w[0] >= t.ccdl, "tCCDL violated on bank {bank}");
            }
        }
    }

    /// A greedy single-bank write stream can never beat the analytic
    /// Figure 11 window, whatever the burst length.
    #[test]
    fn greedy_stream_never_beats_the_analytic_window(writes_per_row in 1u64..32) {
        let t = TimingParams::hbm_table1();
        let mut ch = Channel::new(t, 16, 2048);
        let mut now = 0u64;
        let mut acts = Vec::new();
        for row in 0..3u32 {
            while !ch.try_issue(DramCommand::Activate { bank: BankId(0), row }, now) {
                now += 1;
            }
            acts.push(now);
            let mut writes = 0;
            while writes < writes_per_row {
                if ch.try_issue(DramCommand::column(BankId(0), ColKind::Write), now) {
                    writes += 1;
                }
                now += 1;
            }
            while !ch.try_issue(DramCommand::Precharge { bank: BankId(0) }, now) {
                now += 1;
            }
        }
        let analytic = t.row_window_writes(writes_per_row).max(t.rc());
        for w in acts.windows(2) {
            prop_assert!(w[1] - w[0] >= analytic, "window {} < analytic {analytic}", w[1] - w[0]);
        }
    }

    /// The functional store returns exactly what was last written, per
    /// location, under arbitrary write sequences.
    #[test]
    fn store_is_a_map(ops in proptest::collection::vec((0u8..4, 0u32..8, 0u16..64, any::<u32>()), 1..200)) {
        use orderlight::types::Stripe;
        let mut s = orderlight_hbm::FunctionalStore::new(2048);
        let mut model = std::collections::HashMap::new();
        for (bank, row, col, v) in ops {
            s.write(BankId(bank), row, col, Stripe::splat(v));
            model.insert((bank, row, col), v);
        }
        for ((bank, row, col), v) in model {
            prop_assert_eq!(s.read(BankId(bank), row, col), Stripe::splat(v));
        }
    }
}
