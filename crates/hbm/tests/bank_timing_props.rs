//! Randomized tests of the DRAM timing state machine: no random
//! command schedule, however adversarial, can violate the JEDEC-style
//! spacing rules the model enforces.
//!
//! Schedules come from the in-tree deterministic PRNG
//! ([`orderlight::rng::Rng`]) so every run exercises the same cases.

use orderlight::rng::Rng;
use orderlight::types::BankId;
use orderlight_hbm::{Channel, ColKind, DramCommand, TimingParams};

/// A random intent the driver tries at each step.
#[derive(Debug, Clone, Copy)]
enum Intent {
    Act { bank: u8, row: u32 },
    Col { bank: u8, write: bool },
    Pre { bank: u8 },
    Wait,
}

fn intent(rng: &mut Rng) -> Intent {
    match rng.gen_range(4) {
        0 => Intent::Act { bank: rng.gen_range(4) as u8, row: rng.gen_range(4) as u32 },
        1 => Intent::Col { bank: rng.gen_range(4) as u8, write: rng.gen_bool(1, 2) },
        2 => Intent::Pre { bank: rng.gen_range(4) as u8 },
        _ => Intent::Wait,
    }
}

/// Whatever the driver attempts, `try_issue` only ever applies legal
/// commands (the strict state machine would panic otherwise), and the
/// recorded issue times respect every pairwise spacing rule.
#[test]
#[allow(clippy::explicit_counter_loop)] // `now` advances per step like a clock
fn random_schedules_respect_all_timing() {
    let mut rng = Rng::new(0xd7a3);
    for case in 0..32 {
        let t = TimingParams::hbm_table1();
        let mut ch = Channel::new(t, 4, 2048);
        let mut now = 0u64;
        let mut acts: Vec<(u64, u8)> = Vec::new();
        let mut cols: Vec<(u64, u8)> = Vec::new();
        let steps = 1 + rng.gen_index(399);
        for _ in 0..steps {
            match intent(&mut rng) {
                Intent::Act { bank, row } => {
                    if ch.try_issue(DramCommand::Activate { bank: BankId(bank), row }, now) {
                        acts.push((now, bank));
                    }
                }
                Intent::Col { bank, write } => {
                    let kind = if write { ColKind::Write } else { ColKind::Read };
                    if ch.try_issue(DramCommand::column(BankId(bank), kind), now) {
                        cols.push((now, bank));
                    }
                }
                Intent::Pre { bank } => {
                    let _ = ch.try_issue(DramCommand::Precharge { bank: BankId(bank) }, now);
                }
                Intent::Wait => {}
            }
            now += 1;
        }
        // ACT-to-ACT: tRRD across banks, tRC within a bank.
        for w in acts.windows(2) {
            assert!(w[1].0 - w[0].0 >= t.rrd, "case {case}: tRRD violated");
        }
        for bank in 0..4u8 {
            let mine: Vec<u64> = acts.iter().filter(|(_, b)| *b == bank).map(|(c, _)| *c).collect();
            for w in mine.windows(2) {
                assert!(w[1] - w[0] >= t.rc(), "case {case}: tRC violated on bank {bank}");
            }
        }
        // Column-to-column: tCCD on the channel, tCCDL within a bank.
        for w in cols.windows(2) {
            assert!(w[1].0 - w[0].0 >= t.ccd, "case {case}: tCCD violated");
        }
        for bank in 0..4u8 {
            let mine: Vec<u64> = cols.iter().filter(|(_, b)| *b == bank).map(|(c, _)| *c).collect();
            for w in mine.windows(2) {
                assert!(w[1] - w[0] >= t.ccdl, "case {case}: tCCDL violated on bank {bank}");
            }
        }
    }
}

/// A greedy single-bank write stream can never beat the analytic
/// Figure 11 window, whatever the burst length.
#[test]
fn greedy_stream_never_beats_the_analytic_window() {
    for writes_per_row in 1u64..32 {
        let t = TimingParams::hbm_table1();
        let mut ch = Channel::new(t, 16, 2048);
        let mut now = 0u64;
        let mut acts = Vec::new();
        for row in 0..3u32 {
            while !ch.try_issue(DramCommand::Activate { bank: BankId(0), row }, now) {
                now += 1;
            }
            acts.push(now);
            let mut writes = 0;
            while writes < writes_per_row {
                if ch.try_issue(DramCommand::column(BankId(0), ColKind::Write), now) {
                    writes += 1;
                }
                now += 1;
            }
            while !ch.try_issue(DramCommand::Precharge { bank: BankId(0) }, now) {
                now += 1;
            }
        }
        let analytic = t.row_window_writes(writes_per_row).max(t.rc());
        for w in acts.windows(2) {
            assert!(
                w[1] - w[0] >= analytic,
                "{writes_per_row} writes: window {} < analytic {analytic}",
                w[1] - w[0]
            );
        }
    }
}

/// The functional store returns exactly what was last written, per
/// location, under arbitrary write sequences.
#[test]
fn store_is_a_map() {
    use orderlight::types::Stripe;
    let mut rng = Rng::new(0x570e);
    for _ in 0..16 {
        let mut s = orderlight_hbm::FunctionalStore::new(2048);
        let mut model = std::collections::HashMap::new();
        let ops = 1 + rng.gen_index(199);
        for _ in 0..ops {
            let bank = rng.gen_range(4) as u8;
            let row = rng.gen_range(8) as u32;
            let col = rng.gen_range(64) as u16;
            let v = rng.next_u64() as u32;
            s.write(BankId(bank), row, col, Stripe::splat(v));
            model.insert((bank, row, col), v);
        }
        for ((bank, row, col), v) in model {
            assert_eq!(s.read(BankId(bank), row, col), Stripe::splat(v));
        }
    }
}
