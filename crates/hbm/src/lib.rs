//! # HBM DRAM model for the OrderLight reproduction
//!
//! A bank-state-machine DRAM timing model plus a functional byte-accurate
//! backing store, configured with the paper's Table 1 HBM parameters
//! (850 MHz, 16 channels, 16 banks/channel, 32 B bus, 2 KB rows).
//!
//! * [`timing`] — [`TimingParams`] with the Table 1 values and the
//!   analytic Figure 11 row-window computation.
//! * [`command`] — the DRAM command vocabulary (ACT/PRE/RD/WR).
//! * [`bank`] — per-bank state machine enforcing
//!   tRCD/tRAS/tRP/tRC/tRTP/tWTP.
//! * [`channel`] — a channel: banks plus shared command/data-bus
//!   constraints (tCCDL, tRRD) and the functional store.
//! * [`storage`] — the byte-accurate row store (real data, so ordering
//!   violations become observable as wrong results).
//!
//! # Example
//!
//! ```
//! use orderlight_hbm::{Channel, DramCommand, ColKind, TimingParams};
//! use orderlight::types::BankId;
//!
//! let mut ch = Channel::new(TimingParams::hbm_table1(), 16, 2048);
//! // Open row 3 of bank 0 and wait out tRCD, then a write is legal.
//! assert!(ch.try_issue(DramCommand::Activate { bank: BankId(0), row: 3 }, 0));
//! assert!(!ch.try_issue(DramCommand::column(BankId(0), ColKind::Write), 5));
//! assert!(ch.try_issue(DramCommand::column(BankId(0), ColKind::Write), 9));
//! ```

pub mod bank;
pub mod channel;
pub mod command;
pub mod storage;
pub mod timing;

pub use bank::{Bank, BankState};
pub use channel::{Channel, NeededCommand, RefreshParams};
pub use command::{ColKind, DramCommand};
pub use storage::FunctionalStore;
pub use timing::TimingParams;
