//! DRAM timing parameters (paper Table 1, memory-clock cycles).
//!
//! ```text
//! CCD=1 : RRD=3 : RCDW=9 : RAS=28 : RP=12 :
//! CL=12 : WL=2 : CDLR=3 : WR=10 : CCDL=2 : WTP=9
//! ```
//!
//! Figure 11 of the paper derives the peak PIM command bandwidth from
//! these numbers: opening the row for vector *p* (tRCDW = 9), eight
//! 32 B column writes spaced tCCD = 2 apart (7 gaps = 14 cycles), write
//! recovery (tWP = 9) and precharge (tRP = 12) — a 44-cycle window for 8
//! commands, i.e. `8/44 x 850 MHz x 16 channels ≈ 2.5 GC/s` (the paper
//! quotes ~2.3 GC/s accounting for scheduling slack).
//! [`TimingParams::row_window_writes`] reproduces that arithmetic and is
//! cross-checked against the simulated bank state machine in the tests of
//! [`crate::channel`].

use orderlight::ConfigError;

/// DRAM timing parameters in memory-clock cycles.
///
/// Two values are not given by Table 1 and are documented additions:
/// `rcd_rd` (ACT-to-read delay; Table 1 only lists the write variant
/// RCDW) and `rtp` (read-to-precharge). Both default to typical HBM
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Column-to-column spacing, different bank group (tCCD, "CCD=1").
    pub ccd: u64,
    /// Column-to-column spacing on the shared channel bus (tCCDL,
    /// "CCDL=2"). This is the spacing Figure 11 uses between back-to-back
    /// PIM column commands.
    pub ccdl: u64,
    /// ACT-to-ACT, different banks of one channel (tRRD, "RRD=3").
    pub rrd: u64,
    /// ACT-to-write delay (tRCDW, "RCDW=9").
    pub rcd_wr: u64,
    /// ACT-to-read delay (documented addition; Table 1 lists only RCDW).
    pub rcd_rd: u64,
    /// Minimum row-open time before precharge (tRAS, "RAS=28").
    pub ras: u64,
    /// Precharge period (tRP, "RP=12").
    pub rp: u64,
    /// Read (CAS) latency (tCL, "CL=12").
    pub cl: u64,
    /// Write latency (tWL, "WL=2").
    pub wl: u64,
    /// Read-to-write turnaround, same bank (tCDLR, "CDLR=3").
    pub cdlr: u64,
    /// Write recovery (tWR, "WR=10").
    pub wr: u64,
    /// Write-to-precharge (tWTP, "WTP=9"). Figure 11's "t_wp".
    pub wtp: u64,
    /// Read-to-precharge (tRTP; documented addition).
    pub rtp: u64,
}

impl TimingParams {
    /// The paper's Table 1 HBM timing.
    #[must_use]
    pub fn hbm_table1() -> Self {
        TimingParams {
            ccd: 1,
            ccdl: 2,
            rrd: 3,
            rcd_wr: 9,
            rcd_rd: 9,
            ras: 28,
            rp: 12,
            cl: 12,
            wl: 2,
            cdlr: 3,
            wr: 10,
            wtp: 9,
            rtp: 4,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if any parameter is zero where a zero makes
    /// the state machine degenerate, or if tRAS < tRCD (a row would have
    /// to close before its first column access).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ccdl == 0 || self.rp == 0 || self.ras == 0 {
            return Err(ConfigError::new("ccdl, rp, ras must be non-zero"));
        }
        if self.ras < self.rcd_wr.max(self.rcd_rd) {
            return Err(ConfigError::new("ras must cover the act-to-column delay"));
        }
        Ok(())
    }

    /// ACT-to-ACT delay for the *same* bank (tRC = tRAS + tRP).
    #[must_use]
    pub fn rc(&self) -> u64 {
        self.ras + self.rp
    }

    /// The Figure 11 analysis: memory cycles to open a row, issue
    /// `n_writes` column writes, and precharge — i.e. the steady-state
    /// per-row window when streaming writes with row switches.
    ///
    /// `rcd_wr + (n-1)*ccdl + wtp + rp`.
    #[must_use]
    pub fn row_window_writes(&self, n_writes: u64) -> u64 {
        assert!(n_writes > 0, "window needs at least one write");
        self.rcd_wr + (n_writes - 1) * self.ccdl + self.wtp + self.rp
    }

    /// Same-row window for `n_reads` column reads.
    #[must_use]
    pub fn row_window_reads(&self, n_reads: u64) -> u64 {
        assert!(n_reads > 0, "window needs at least one read");
        self.rcd_rd + (n_reads - 1) * self.ccdl + self.rtp + self.rp
    }

    /// Peak PIM command bandwidth in commands/second for a workload whose
    /// steady state issues `cmds_per_window` commands per
    /// `window_cycles`-cycle row window, across `channels` channels at
    /// `mem_freq_hz`.
    #[must_use]
    pub fn peak_command_bandwidth(
        &self,
        cmds_per_window: u64,
        window_cycles: u64,
        channels: u64,
        mem_freq_hz: f64,
    ) -> f64 {
        cmds_per_window as f64 / window_cycles as f64 * mem_freq_hz * channels as f64
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::hbm_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = TimingParams::hbm_table1();
        assert_eq!(t.ccd, 1);
        assert_eq!(t.ccdl, 2);
        assert_eq!(t.rrd, 3);
        assert_eq!(t.rcd_wr, 9);
        assert_eq!(t.ras, 28);
        assert_eq!(t.rp, 12);
        assert_eq!(t.cl, 12);
        assert_eq!(t.wl, 2);
        assert_eq!(t.cdlr, 3);
        assert_eq!(t.wr, 10);
        assert_eq!(t.wtp, 9);
        assert_eq!(t.rc(), 40);
        t.validate().unwrap();
    }

    #[test]
    fn figure11_window_is_44_cycles() {
        let t = TimingParams::hbm_table1();
        // 9 (tRCDW) + 7*2 (tCCD gaps) + 9 (tWP) + 12 (tRP) = 44.
        assert_eq!(t.row_window_writes(8), 44);
    }

    #[test]
    fn figure11_peak_bandwidth_about_2_5_gcs() {
        let t = TimingParams::hbm_table1();
        let w = t.row_window_writes(8);
        let peak = t.peak_command_bandwidth(8, w, 16, 850e6);
        // 8/44 * 850 MHz * 16 ≈ 2.47 GC/s (paper quotes ~2.3 GC/s).
        assert!((peak / 1e9 - 2.47).abs() < 0.05, "peak = {peak}");
    }

    #[test]
    fn read_window_uses_read_params() {
        let t = TimingParams::hbm_table1();
        assert_eq!(t.row_window_reads(8), t.rcd_rd + 14 + t.rtp + t.rp);
    }

    #[test]
    fn validate_rejects_degenerate() {
        let mut t = TimingParams::hbm_table1();
        t.ccdl = 0;
        assert!(t.validate().is_err());
        let mut t = TimingParams::hbm_table1();
        t.ras = 5;
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one write")]
    fn zero_write_window_panics() {
        let _ = TimingParams::hbm_table1().row_window_writes(0);
    }
}
