//! A memory channel: banks plus shared command/data-bus constraints and
//! the functional store.
//!
//! The channel enforces the constraints that span banks: tCCDL between
//! column commands on the shared bus (the spacing Figure 11 uses between
//! back-to-back PIM commands) and tRRD between activates to different
//! banks. Everything bank-local is delegated to [`Bank`].

use crate::bank::Bank;
use crate::command::{ColKind, DramCommand};
use crate::storage::FunctionalStore;
use crate::timing::TimingParams;
use orderlight::fault::RefreshStorm;
use orderlight::rng::Rng;
use orderlight::types::{BankId, MemCycle, Stripe};
use orderlight::{min_horizon, NextEvent};
use orderlight_trace::{sink::nop_sink, DramCmdKind, SharedSink, TraceEvent};

/// All-bank refresh parameters (values in memory cycles).
///
/// HBM2 refreshes every tREFI ≈ 3.9 us and an all-bank refresh occupies
/// the channel for tRFC ≈ 350 ns; at 850 MHz that is roughly 3315 and
/// 298 cycles. The paper's evaluation (like most PIM studies) omits
/// refresh; it is off by default here and exercised by the
/// `ablation_refresh` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshParams {
    /// Refresh interval, tREFI.
    pub interval: MemCycle,
    /// Refresh occupancy, tRFC.
    pub rfc: MemCycle,
}

impl RefreshParams {
    /// HBM2-like defaults at 850 MHz: tREFI = 3315, tRFC = 298 cycles.
    #[must_use]
    pub fn hbm2() -> Self {
        RefreshParams { interval: 3315, rfc: 298 }
    }
}

/// What command is needed next to perform a column access to
/// `(bank, row)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeededCommand {
    /// A different row is open: precharge first.
    Precharge,
    /// The bank is closed: activate the row.
    Activate,
    /// The row is open: the column access itself.
    Column,
}

/// One HBM channel.
#[derive(Debug, Clone)]
pub struct Channel {
    timing: TimingParams,
    banks: Vec<Bank>,
    /// Earliest cycle for the next column command on the shared bus
    /// (tCCD; same-bank tCCDL spacing is enforced by the banks).
    next_col: MemCycle,
    /// Earliest cycle for the next ACT on the channel (tRRD).
    next_act_any: MemCycle,
    store: FunctionalStore,
    col_commands: u64,
    refresh: Option<RefreshParams>,
    /// Fault injection: when set, each fired refresh re-arms the next
    /// one after a seeded uniform draw instead of a fixed tREFI.
    storm: Option<(Rng, RefreshStorm)>,
    /// Next cycle a refresh becomes due.
    refresh_due: MemCycle,
    /// End of the in-progress refresh window, if any.
    refresh_until: Option<MemCycle>,
    refreshes: u64,
    sink: SharedSink,
    channel_id: u8,
}

impl Channel {
    /// Creates a channel with `n_banks` banks and `row_bytes`-byte rows.
    ///
    /// # Panics
    /// Panics if `n_banks` is zero or the timing parameters are invalid.
    #[must_use]
    pub fn new(timing: TimingParams, n_banks: usize, row_bytes: usize) -> Self {
        assert!(n_banks > 0, "a channel needs at least one bank");
        timing.validate().expect("timing parameters must be valid");
        Channel::with_refresh(timing, n_banks, row_bytes, None)
    }

    /// Creates a channel with optional all-bank refresh.
    ///
    /// # Panics
    /// Panics if `n_banks` is zero or the timing parameters are invalid.
    #[must_use]
    pub fn with_refresh(
        timing: TimingParams,
        n_banks: usize,
        row_bytes: usize,
        refresh: Option<RefreshParams>,
    ) -> Self {
        assert!(n_banks > 0, "a channel needs at least one bank");
        timing.validate().expect("timing parameters must be valid");
        Channel {
            timing,
            banks: (0..n_banks).map(|_| Bank::new()).collect(),
            next_col: 0,
            next_act_any: 0,
            store: FunctionalStore::new(row_bytes),
            col_commands: 0,
            refresh_due: refresh.map_or(0, |r| r.interval),
            refresh,
            storm: None,
            refresh_until: None,
            refreshes: 0,
            sink: nop_sink(),
            channel_id: 0,
        }
    }

    /// Enables a seeded refresh storm (fault injection): refresh is
    /// forced on (if it was off) and every fired refresh re-arms the
    /// next one after a uniform draw from
    /// `storm.min_interval..=storm.max_interval` memory cycles with
    /// occupancy `storm.rfc`. Refreshes still honour tRAS/tWTP before
    /// closing rows, so the perturbation is schedule-legal.
    ///
    /// # Panics
    /// Panics if the interval bounds are zero or inverted.
    pub fn enable_refresh_storm(&mut self, storm: RefreshStorm, seed: u64) {
        assert!(storm.min_interval > 0, "storm intervals must be positive");
        assert!(storm.min_interval <= storm.max_interval, "storm interval bounds inverted");
        let mut rng = Rng::new(seed);
        let span = storm.max_interval - storm.min_interval + 1;
        self.refresh_due = storm.min_interval + rng.gen_range(span);
        self.refresh = Some(RefreshParams { interval: storm.min_interval, rfc: storm.rfc });
        self.storm = Some((rng, storm));
    }

    /// Attaches a trace sink, tagging this channel's DRAM-command events
    /// with `channel`. Sinks only observe; timing is unchanged.
    pub fn set_sink(&mut self, sink: SharedSink, channel: u8) {
        self.sink = sink;
        self.channel_id = channel;
    }

    /// Emits the row-residency interval that closes when `bank`
    /// precharges at `now`.
    fn trace_row_close(&self, bank: BankId, now: MemCycle) {
        let b = &self.banks[bank.index()];
        if let (Some(row), Some(opened)) = (b.open_row(), b.open_since()) {
            self.sink.emit(TraceEvent::RowInterval {
                cycle: now,
                channel: self.channel_id,
                bank: bank.0,
                row,
                open_cycles: now.saturating_sub(opened),
            });
        }
    }

    /// Advances refresh bookkeeping: once a refresh is due and every
    /// open bank may legally precharge, all rows are closed and the
    /// channel is occupied for tRFC cycles. Call once per memory cycle
    /// (the controller does). The `RefreshWindow` trace event emitted
    /// here needs no skip-boundary synthesis: the refresh countdown is
    /// a quiescence-horizon event (`next_refresh_event`), so the event
    /// core always ticks the triggering cycle densely.
    pub fn maintain(&mut self, now: MemCycle) {
        let Some(r) = self.refresh else { return };
        if let Some(until) = self.refresh_until {
            if now >= until {
                self.refresh_until = None;
            } else {
                return;
            }
        }
        if now >= self.refresh_due {
            // Wait until every open row can close (tRAS/tWTP honoured).
            let t = self.timing;
            if self.banks.iter().any(|b| b.open_row().is_some() && !b.can_precharge(now)) {
                return;
            }
            for b in 0..self.banks.len() {
                if self.banks[b].open_row().is_some() {
                    if self.sink.is_enabled() {
                        self.trace_row_close(BankId(b as u8), now);
                    }
                    self.banks[b].precharge(now, &t);
                }
            }
            // Saturating like the bank timers: a refresh window or due
            // time past `u64::MAX` clamps to "never" instead of
            // wrapping behind `now`.
            self.refresh_until = Some(now.saturating_add(r.rfc));
            if self.sink.is_enabled() {
                self.sink.emit(TraceEvent::RefreshWindow {
                    cycle: now,
                    channel: self.channel_id,
                    rfc: r.rfc,
                });
            }
            self.refresh_due = match &mut self.storm {
                Some((rng, s)) => now
                    .saturating_add(s.min_interval)
                    .saturating_add(rng.gen_range(s.max_interval - s.min_interval + 1)),
                None => now.saturating_add(r.interval),
            };
            self.refreshes += 1;
        }
    }

    /// Whether the channel is inside a refresh window at `now`.
    #[must_use]
    pub fn in_refresh(&self, now: MemCycle) -> bool {
        self.refresh_until.is_some_and(|until| now < until)
    }

    /// All-bank refreshes performed.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// The timing parameters in force.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: BankId) -> &Bank {
        &self.banks[bank.index()]
    }

    /// Number of banks.
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Total column commands issued (statistics).
    #[must_use]
    pub fn col_commands(&self) -> u64 {
        self.col_commands
    }

    /// The command needed next to reach a column access at `(bank, row)`.
    #[must_use]
    pub fn needed_command(&self, bank: BankId, row: u32) -> NeededCommand {
        match self.bank(bank).open_row() {
            Some(r) if r == row => NeededCommand::Column,
            Some(_) => NeededCommand::Precharge,
            None => NeededCommand::Activate,
        }
    }

    /// Whether `cmd` may legally issue at `now` (bank + channel
    /// constraints).
    #[must_use]
    pub fn can_issue(&self, cmd: DramCommand, now: MemCycle) -> bool {
        if self.in_refresh(now) {
            return false;
        }
        match cmd {
            DramCommand::Activate { bank, .. } => {
                now >= self.next_act_any && self.bank(bank).can_activate(now)
            }
            DramCommand::Precharge { bank } => self.bank(bank).can_precharge(now),
            DramCommand::Column { bank, kind } => {
                now >= self.next_col
                    && self
                        .bank(bank)
                        .open_row()
                        .is_some_and(|row| self.bank(bank).can_column(row, kind, now))
            }
        }
    }

    /// Issues `cmd` at `now` if legal; returns whether it issued.
    pub fn try_issue(&mut self, cmd: DramCommand, now: MemCycle) -> bool {
        if !self.can_issue(cmd, now) {
            return false;
        }
        let t = self.timing;
        let traced = self.sink.is_enabled();
        match cmd {
            DramCommand::Activate { bank, row } => {
                self.banks[bank.index()].activate(row, now, &t);
                self.next_act_any = now.saturating_add(t.rrd);
                if traced {
                    self.sink.emit(TraceEvent::DramCmd {
                        cycle: now,
                        channel: self.channel_id,
                        bank: bank.0,
                        kind: DramCmdKind::Activate,
                        row,
                    });
                }
            }
            DramCommand::Precharge { bank } => {
                if traced {
                    self.trace_row_close(bank, now);
                    self.sink.emit(TraceEvent::DramCmd {
                        cycle: now,
                        channel: self.channel_id,
                        bank: bank.0,
                        kind: DramCmdKind::Precharge,
                        row: self.banks[bank.index()].open_row().unwrap_or(u32::MAX),
                    });
                }
                self.banks[bank.index()].precharge(now, &t);
            }
            DramCommand::Column { bank, kind } => {
                let row = self.banks[bank.index()].open_row().expect("checked open");
                self.banks[bank.index()].column(row, kind, now, &t);
                self.next_col = now.saturating_add(t.ccd);
                self.col_commands += 1;
                if traced {
                    self.sink.emit(TraceEvent::DramCmd {
                        cycle: now,
                        channel: self.channel_id,
                        bank: bank.0,
                        kind: match kind {
                            ColKind::Read => DramCmdKind::Read,
                            ColKind::Write => DramCmdKind::Write,
                        },
                        row,
                    });
                }
            }
        }
        true
    }

    /// Reads the stripe at `col` of the *open* row of `bank` (the data
    /// transfer accompanying a column-read command).
    ///
    /// # Panics
    /// Panics if the bank has no open row.
    #[must_use]
    pub fn read_open_row(&self, bank: BankId, col: u16) -> Stripe {
        let row = self.bank(bank).open_row().expect("read requires an open row");
        self.store.read(bank, row, col)
    }

    /// Writes the stripe at `col` of the *open* row of `bank`.
    ///
    /// # Panics
    /// Panics if the bank has no open row.
    pub fn write_open_row(&mut self, bank: BankId, col: u16, data: Stripe) {
        let row = self.banks[bank.index()].open_row().expect("write requires an open row");
        self.store.write(bank, row, col, data);
    }

    /// Direct access to the functional store (initialisation, final
    /// read-back and verification).
    #[must_use]
    pub fn store(&self) -> &FunctionalStore {
        &self.store
    }

    /// Mutable access to the functional store.
    pub fn store_mut(&mut self) -> &mut FunctionalStore {
        &mut self.store
    }

    /// Earliest future cycle at which [`maintain`](Self::maintain) can
    /// change observable state — i.e. actually perform an all-bank
    /// refresh. `None` when refresh is disabled (maintain is then a
    /// no-op forever). A due refresh waits for every open bank's tRAS /
    /// write-to-precharge window, so the trigger is the latest
    /// `next_pre` among open banks, but never earlier than `now`. The
    /// lazy clearing of a finished refresh window is not an event: it
    /// changes nothing observable on its own.
    #[must_use]
    pub fn next_refresh_event(&self, now: MemCycle) -> Option<MemCycle> {
        self.refresh?;
        let blocked = self
            .banks
            .iter()
            .filter(|b| b.open_row().is_some())
            .map(Bank::next_precharge_at)
            .max()
            .unwrap_or(0);
        Some(self.refresh_due.max(blocked).max(now))
    }
}

/// Quiescence horizon of a channel: the earliest cycle at which either
/// a blocked DRAM command could become legal on some bank (clamped past
/// an in-progress refresh window) or the next all-bank refresh fires.
/// Like [`Bank`], a channel with refresh disabled still answers
/// `Some(..)` — only the controller knows whether work is queued.
impl NextEvent for Channel {
    fn next_event(&self, now: u64) -> Option<u64> {
        let cmd = self.banks.iter().filter_map(|b| b.next_event(now)).min();
        let cmd = cmd.map(|c| match self.refresh_until {
            Some(until) if until > now && c < until => until,
            _ => c,
        });
        min_horizon(cmd, self.next_refresh_event(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::ColKind;

    fn ch() -> Channel {
        Channel::new(TimingParams::hbm_table1(), 16, 2048)
    }

    #[test]
    fn needed_command_progression() {
        let mut c = ch();
        assert_eq!(c.needed_command(BankId(0), 5), NeededCommand::Activate);
        assert!(c.try_issue(DramCommand::Activate { bank: BankId(0), row: 5 }, 0));
        assert_eq!(c.needed_command(BankId(0), 5), NeededCommand::Column);
        assert_eq!(c.needed_command(BankId(0), 6), NeededCommand::Precharge);
    }

    #[test]
    fn column_spacing_ccd_across_banks_ccdl_within_a_bank() {
        let mut c = ch();
        let t = *c.timing();
        assert!(c.try_issue(DramCommand::Activate { bank: BankId(0), row: 0 }, 0));
        assert!(c.try_issue(DramCommand::Activate { bank: BankId(1), row: 0 }, t.rrd));
        let first = t.rrd + t.rcd_wr;
        assert!(c.try_issue(DramCommand::column(BankId(0), ColKind::Write), first));
        // A column to a *different* bank only waits tCCD (= 1 cycle).
        assert!(c.try_issue(DramCommand::column(BankId(1), ColKind::Write), first + t.ccd));
        // Back on bank 0, the same-bank spacing is tCCDL (= 2 cycles).
        assert!(!c.try_issue(DramCommand::column(BankId(0), ColKind::Write), first + 1));
        assert!(c.try_issue(DramCommand::column(BankId(0), ColKind::Write), first + t.ccdl));
        assert_eq!(c.col_commands(), 3);
    }

    #[test]
    fn rrd_spaces_activates() {
        let mut c = ch();
        let t = *c.timing();
        assert!(c.try_issue(DramCommand::Activate { bank: BankId(0), row: 0 }, 0));
        assert!(!c.try_issue(DramCommand::Activate { bank: BankId(1), row: 0 }, t.rrd - 1));
        assert!(c.try_issue(DramCommand::Activate { bank: BankId(1), row: 0 }, t.rrd));
    }

    #[test]
    fn data_flows_through_open_rows() {
        let mut c = ch();
        c.try_issue(DramCommand::Activate { bank: BankId(2), row: 9 }, 0);
        c.write_open_row(BankId(2), 3, Stripe::splat(7));
        assert_eq!(c.read_open_row(BankId(2), 3), Stripe::splat(7));
        assert_eq!(c.store().read(BankId(2), 9, 3), Stripe::splat(7));
    }

    #[test]
    fn column_to_closed_bank_is_illegal() {
        let mut c = ch();
        assert!(!c.try_issue(DramCommand::column(BankId(0), ColKind::Read), 100));
    }

    #[test]
    fn simulated_read_stream_matches_analytic_window() {
        // The read-side counterpart of Figure 11: rcd_rd + 7*ccdl + rtp
        // + rp per row of 8 reads (bounded below by tRC).
        let mut c = ch();
        let t = *c.timing();
        let mut now: MemCycle = 0;
        let mut acts = Vec::new();
        for row in 0..3u32 {
            while !c.try_issue(DramCommand::Activate { bank: BankId(0), row }, now) {
                now += 1;
            }
            acts.push(now);
            let mut reads = 0;
            while reads < 8 {
                if c.try_issue(DramCommand::column(BankId(0), ColKind::Read), now) {
                    reads += 1;
                }
                now += 1;
            }
            while !c.try_issue(DramCommand::Precharge { bank: BankId(0) }, now) {
                now += 1;
            }
        }
        let w = t.row_window_reads(8).max(t.rc());
        assert_eq!(acts[1] - acts[0], w);
        assert_eq!(acts[2] - acts[1], w);
    }

    #[test]
    fn refresh_blocks_commands_and_closes_rows() {
        let r = RefreshParams { interval: 100, rfc: 20 };
        let mut c = Channel::with_refresh(TimingParams::hbm_table1(), 4, 2048, Some(r));
        assert!(c.try_issue(DramCommand::Activate { bank: BankId(0), row: 3 }, 0));
        // Run the clock past the refresh due point; the row must be
        // closed (tRAS honoured first) and commands blocked for tRFC.
        let mut refreshed_at = None;
        for now in 0..200 {
            c.maintain(now);
            if c.in_refresh(now) && refreshed_at.is_none() {
                refreshed_at = Some(now);
            }
        }
        let start = refreshed_at.expect("refresh happened");
        assert!(start >= 100, "not before tREFI");
        assert_eq!(c.refreshes(), 1);
        assert_eq!(c.bank(BankId(0)).open_row(), None, "refresh closed the row");
        // During the window nothing may issue.
        let mut c2 = Channel::with_refresh(TimingParams::hbm_table1(), 4, 2048, Some(r));
        for now in 0..=100 {
            c2.maintain(now);
        }
        assert!(c2.in_refresh(100));
        assert!(!c2.can_issue(DramCommand::Activate { bank: BankId(1), row: 0 }, 100));
        // After the window, commands flow again.
        for now in 101..=120 {
            c2.maintain(now);
        }
        assert!(c2.can_issue(DramCommand::Activate { bank: BankId(1), row: 0 }, 120));
    }

    #[test]
    fn no_refresh_by_default() {
        let mut c = ch();
        for now in 0..10_000 {
            c.maintain(now);
            assert!(!c.in_refresh(now));
        }
        assert_eq!(c.refreshes(), 0);
    }

    #[test]
    fn simulated_write_stream_matches_analytic_window() {
        // Stream 3 rows of 8 writes each through one bank and check the
        // steady-state spacing equals TimingParams::row_window_writes(8).
        let mut c = ch();
        let t = *c.timing();
        let mut now: MemCycle = 0;
        let mut act_times = Vec::new();
        for row in 0..3u32 {
            // Wait until ACT legal.
            while !c.try_issue(DramCommand::Activate { bank: BankId(0), row }, now) {
                now += 1;
            }
            act_times.push(now);
            let mut writes = 0;
            while writes < 8 {
                if c.try_issue(DramCommand::column(BankId(0), ColKind::Write), now) {
                    writes += 1;
                }
                now += 1;
            }
            while !c.try_issue(DramCommand::Precharge { bank: BankId(0) }, now) {
                now += 1;
            }
        }
        let w = t.row_window_writes(8);
        assert_eq!(act_times[1] - act_times[0], w, "window {w} expected");
        assert_eq!(act_times[2] - act_times[1], w);
    }
}
