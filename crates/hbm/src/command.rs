//! The DRAM command vocabulary issued by the memory controller to a
//! channel.

use orderlight::types::BankId;
use std::fmt;

/// Direction of a column access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColKind {
    /// A column read (host read, PIM load, PIM fetch-and-op operand).
    Read,
    /// A column write (host write, PIM store).
    Write,
}

/// One DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open `row` in `bank` (PRE must have completed).
    Activate {
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: u32,
    },
    /// Close the open row of `bank`.
    Precharge {
        /// Target bank.
        bank: BankId,
    },
    /// A column access to the open row of `bank`.
    Column {
        /// Target bank.
        bank: BankId,
        /// Read or write.
        kind: ColKind,
    },
}

impl DramCommand {
    /// Convenience constructor for a column access.
    #[must_use]
    pub fn column(bank: BankId, kind: ColKind) -> Self {
        DramCommand::Column { bank, kind }
    }

    /// The bank the command targets.
    #[must_use]
    pub fn bank(&self) -> BankId {
        match self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Precharge { bank }
            | DramCommand::Column { bank, .. } => *bank,
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramCommand::Activate { bank, row } => write!(f, "ACT b{} r{row}", bank.0),
            DramCommand::Precharge { bank } => write!(f, "PRE b{}", bank.0),
            DramCommand::Column { bank, kind: ColKind::Read } => write!(f, "RD b{}", bank.0),
            DramCommand::Column { bank, kind: ColKind::Write } => write!(f, "WR b{}", bank.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_accessor() {
        assert_eq!(DramCommand::Activate { bank: BankId(3), row: 9 }.bank(), BankId(3));
        assert_eq!(DramCommand::Precharge { bank: BankId(1) }.bank(), BankId(1));
        assert_eq!(DramCommand::column(BankId(2), ColKind::Read).bank(), BankId(2));
    }

    #[test]
    fn display() {
        assert_eq!(DramCommand::Activate { bank: BankId(0), row: 7 }.to_string(), "ACT b0 r7");
        assert_eq!(DramCommand::column(BankId(5), ColKind::Write).to_string(), "WR b5");
        assert_eq!(DramCommand::Precharge { bank: BankId(4) }.to_string(), "PRE b4");
    }
}
