//! Byte-accurate functional backing store for one channel.
//!
//! The simulator computes with *real data*: every column access reads or
//! writes an actual 32 B stripe. This is what makes ordering violations
//! observable — a reordered PIM command stream produces wrong bytes, not
//! just wrong statistics (paper Figure 5's "Functionally Incorrect" bar).
//!
//! Rows are allocated lazily; untouched memory reads as zero.

use orderlight::types::{BankId, Stripe, BUS_BYTES};
use std::collections::HashMap;

/// Sparse functional store: `(bank, row) -> row bytes`.
#[derive(Debug, Clone, Default)]
pub struct FunctionalStore {
    rows: HashMap<(BankId, u32), Vec<u8>>,
    row_bytes: usize,
}

impl FunctionalStore {
    /// Creates a store whose rows are `row_bytes` long.
    ///
    /// # Panics
    /// Panics if `row_bytes` is not a positive multiple of the 32 B bus
    /// width.
    #[must_use]
    pub fn new(row_bytes: usize) -> Self {
        assert!(
            row_bytes > 0 && row_bytes.is_multiple_of(BUS_BYTES),
            "row_bytes must be a positive multiple of {BUS_BYTES}"
        );
        FunctionalStore { rows: HashMap::new(), row_bytes }
    }

    /// Row length in bytes.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Number of lazily materialised rows (statistics / memory footprint).
    #[must_use]
    pub fn resident_rows(&self) -> usize {
        self.rows.len()
    }

    /// Reads the stripe at `(bank, row, col)`.
    ///
    /// # Panics
    /// Panics if `col` is beyond the row.
    #[must_use]
    pub fn read(&self, bank: BankId, row: u32, col: u16) -> Stripe {
        let off = col as usize * BUS_BYTES;
        assert!(off + BUS_BYTES <= self.row_bytes, "column {col} beyond row");
        match self.rows.get(&(bank, row)) {
            Some(bytes) => Stripe::from_bytes(&bytes[off..off + BUS_BYTES]),
            None => Stripe::default(),
        }
    }

    /// All materialised rows in `(bank, row)` order — a deterministic
    /// whole-store view for byte-level comparison of two stores (the
    /// cycle-vs-event differential tests).
    #[must_use]
    pub fn rows_sorted(&self) -> Vec<((BankId, u32), &[u8])> {
        let mut v: Vec<_> = self.rows.iter().map(|(k, d)| (*k, d.as_slice())).collect();
        v.sort_unstable_by_key(|((bank, row), _)| (bank.0, *row));
        v
    }

    /// Writes the stripe at `(bank, row, col)`.
    ///
    /// # Panics
    /// Panics if `col` is beyond the row.
    pub fn write(&mut self, bank: BankId, row: u32, col: u16, data: Stripe) {
        let off = col as usize * BUS_BYTES;
        assert!(off + BUS_BYTES <= self.row_bytes, "column {col} beyond row");
        let row_bytes = self.row_bytes;
        let bytes = self.rows.entry((bank, row)).or_insert_with(|| vec![0u8; row_bytes]);
        bytes[off..off + BUS_BYTES].copy_from_slice(&data.to_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let s = FunctionalStore::new(2048);
        assert_eq!(s.read(BankId(0), 0, 0), Stripe::default());
        assert_eq!(s.resident_rows(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = FunctionalStore::new(2048);
        let data = Stripe([1, 2, 3, 4, 5, 6, 7, 8]);
        s.write(BankId(3), 17, 63, data);
        assert_eq!(s.read(BankId(3), 17, 63), data);
        assert_eq!(s.read(BankId(3), 17, 62), Stripe::default());
        assert_eq!(s.resident_rows(), 1);
    }

    #[test]
    fn banks_and_rows_are_independent() {
        let mut s = FunctionalStore::new(64);
        s.write(BankId(0), 0, 0, Stripe::splat(1));
        s.write(BankId(1), 0, 0, Stripe::splat(2));
        s.write(BankId(0), 1, 0, Stripe::splat(3));
        assert_eq!(s.read(BankId(0), 0, 0), Stripe::splat(1));
        assert_eq!(s.read(BankId(1), 0, 0), Stripe::splat(2));
        assert_eq!(s.read(BankId(0), 1, 0), Stripe::splat(3));
    }

    #[test]
    #[should_panic(expected = "beyond row")]
    fn out_of_row_column_panics() {
        let s = FunctionalStore::new(64);
        let _ = s.read(BankId(0), 0, 2);
    }

    #[test]
    #[should_panic(expected = "positive multiple")]
    fn bad_row_size_panics() {
        let _ = FunctionalStore::new(100);
    }
}
