//! Per-bank DRAM state machine.
//!
//! Each bank tracks which row (if any) is open plus a set of
//! "earliest-allowed" timestamps derived from the timing parameters. The
//! channel ([`crate::channel`]) layers the shared-bus constraints (tCCDL,
//! tRRD) on top.

use crate::command::ColKind;
use crate::timing::TimingParams;
use orderlight::types::MemCycle;
use orderlight::NextEvent;

/// Row state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// No row open; an ACT may be issued (subject to tRP/tRC).
    Closed,
    /// `row` is open; column commands may be issued (subject to tRCD).
    Open {
        /// The open row.
        row: u32,
    },
}

/// One DRAM bank.
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    /// Earliest cycle an ACT may issue.
    next_act: MemCycle,
    /// Earliest cycle a column read may issue.
    next_rd: MemCycle,
    /// Earliest cycle a column write may issue.
    next_wr: MemCycle,
    /// Earliest cycle a PRE may issue.
    next_pre: MemCycle,
    /// Cycle of the most recent ACT (row-residency tracing).
    opened_at: MemCycle,
    /// Statistics: row activations.
    activations: u64,
    /// Statistics: column accesses.
    col_accesses: u64,
}

impl Bank {
    /// Creates a closed, idle bank.
    #[must_use]
    pub fn new() -> Self {
        Bank {
            state: BankState::Closed,
            next_act: 0,
            next_rd: 0,
            next_wr: 0,
            next_pre: 0,
            opened_at: 0,
            activations: 0,
            col_accesses: 0,
        }
    }

    /// Current row state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Open { row } => Some(row),
            BankState::Closed => None,
        }
    }

    /// The cycle the currently open row was activated, if a row is open
    /// (row-residency intervals for tracing).
    #[must_use]
    pub fn open_since(&self) -> Option<MemCycle> {
        matches!(self.state, BankState::Open { .. }).then_some(self.opened_at)
    }

    /// Whether an ACT may issue at `now`.
    #[must_use]
    pub fn can_activate(&self, now: MemCycle) -> bool {
        self.state == BankState::Closed && now >= self.next_act
    }

    /// Whether a column access of `kind` may issue at `now` to `row`.
    #[must_use]
    pub fn can_column(&self, row: u32, kind: ColKind, now: MemCycle) -> bool {
        self.state == (BankState::Open { row })
            && match kind {
                ColKind::Read => now >= self.next_rd,
                ColKind::Write => now >= self.next_wr,
            }
    }

    /// Whether a PRE may issue at `now`.
    #[must_use]
    pub fn can_precharge(&self, now: MemCycle) -> bool {
        matches!(self.state, BankState::Open { .. }) && now >= self.next_pre
    }

    /// Earliest cycle at which a column access of `kind` could issue to
    /// `row`, accounting for the commands needed to get there (PRE/ACT),
    /// ignoring channel-level constraints. Used by the scheduler for
    /// row-hit prioritisation lookahead.
    #[must_use]
    pub fn earliest_column(
        &self,
        row: u32,
        kind: ColKind,
        now: MemCycle,
        t: &TimingParams,
    ) -> MemCycle {
        // Saturating: a timer near `u64::MAX` must clamp to "never",
        // not wrap into the past (the event core would read a wrapped
        // horizon as already due).
        let col_ready = |act_at: MemCycle| match kind {
            ColKind::Read => act_at.saturating_add(t.rcd_rd),
            ColKind::Write => act_at.saturating_add(t.rcd_wr),
        };
        match self.state {
            BankState::Open { row: r } if r == row => match kind {
                ColKind::Read => now.max(self.next_rd),
                ColKind::Write => now.max(self.next_wr),
            },
            BankState::Open { .. } => {
                let pre_at = now.max(self.next_pre);
                let act_at = pre_at.saturating_add(t.rp).max(self.next_act);
                col_ready(act_at)
            }
            BankState::Closed => col_ready(now.max(self.next_act)),
        }
    }

    /// Applies an ACT of `row` at `now`.
    ///
    /// # Panics
    /// Panics if the command violates timing — callers must check
    /// [`can_activate`](Self::can_activate) first. The state machine is
    /// deliberately strict so that scheduler bugs surface immediately.
    pub fn activate(&mut self, row: u32, now: MemCycle, t: &TimingParams) {
        assert!(self.can_activate(now), "ACT violates timing at {now}");
        self.state = BankState::Open { row };
        self.opened_at = now;
        self.next_rd = now.saturating_add(t.rcd_rd);
        self.next_wr = now.saturating_add(t.rcd_wr);
        self.next_pre = now.saturating_add(t.ras);
        // Same-bank ACT-to-ACT (tRC) even across the next PRE.
        self.next_act = now.saturating_add(t.rc());
        self.activations += 1;
    }

    /// Applies a column access at `now`.
    ///
    /// # Panics
    /// Panics if the command violates timing.
    pub fn column(&mut self, row: u32, kind: ColKind, now: MemCycle, t: &TimingParams) {
        assert!(self.can_column(row, kind, now), "{kind:?} violates timing at {now}");
        // Same-bank column-to-column spacing (tCCDL); cross-bank spacing
        // (tCCD) is enforced by the channel.
        self.next_rd = self.next_rd.max(now.saturating_add(t.ccdl));
        self.next_wr = self.next_wr.max(now.saturating_add(t.ccdl));
        match kind {
            ColKind::Read => {
                self.next_pre = self.next_pre.max(now.saturating_add(t.rtp));
                // Read-to-write turnaround on the same bank.
                self.next_wr = self.next_wr.max(now.saturating_add(t.cdlr));
            }
            ColKind::Write => {
                self.next_pre = self.next_pre.max(now.saturating_add(t.wtp));
                // Write-to-read needs the write to retire (tWL + tWR).
                self.next_rd = self.next_rd.max(now.saturating_add(t.wl + t.wr));
            }
        }
        self.col_accesses += 1;
    }

    /// Applies a PRE at `now`.
    ///
    /// # Panics
    /// Panics if the command violates timing.
    pub fn precharge(&mut self, now: MemCycle, t: &TimingParams) {
        assert!(self.can_precharge(now), "PRE violates timing at {now}");
        self.state = BankState::Closed;
        self.next_act = self.next_act.max(now.saturating_add(t.rp));
    }

    /// Number of row activations so far.
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Number of column accesses so far.
    #[must_use]
    pub fn col_accesses(&self) -> u64 {
        self.col_accesses
    }

    /// Earliest cycle a PRE may legally issue (absolute timestamp; the
    /// refresh-horizon computation needs it for open banks).
    #[must_use]
    pub fn next_precharge_at(&self) -> MemCycle {
        self.next_pre
    }
}

/// Quiescence horizon of a bank: the earliest cycle a currently-blocked
/// DRAM command to this bank could become legal. A bank never acts on
/// its own, so this is never `None` — the controller layer converts
/// "no work queued" into idleness; the bank only answers "when would a
/// scheduler retry be worth it".
impl NextEvent for Bank {
    fn next_event(&self, now: u64) -> Option<u64> {
        match self.state {
            // Closed: only an ACT applies, legal once tRC/tRP elapse.
            BankState::Closed => Some(now.max(self.next_act)),
            // Open: a column or PRE applies; earliest expiring timer.
            BankState::Open { .. } => {
                Some(now.max(self.next_rd.min(self.next_wr).min(self.next_pre)))
            }
        }
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::hbm_table1()
    }

    #[test]
    fn act_then_write_respects_rcdw() {
        let t = t();
        let mut b = Bank::new();
        assert!(b.can_activate(0));
        b.activate(5, 0, &t);
        assert_eq!(b.open_row(), Some(5));
        assert!(!b.can_column(5, ColKind::Write, t.rcd_wr - 1));
        assert!(b.can_column(5, ColKind::Write, t.rcd_wr));
        assert!(!b.can_column(4, ColKind::Write, t.rcd_wr), "wrong row");
    }

    #[test]
    fn precharge_respects_ras_and_wtp() {
        let t = t();
        let mut b = Bank::new();
        b.activate(1, 0, &t);
        assert!(!b.can_precharge(t.ras - 1));
        assert!(b.can_precharge(t.ras));
        // A late write pushes the precharge point to write + tWTP.
        b.column(1, ColKind::Write, 30, &t);
        assert!(!b.can_precharge(30 + t.wtp - 1));
        assert!(b.can_precharge(30 + t.wtp));
    }

    #[test]
    fn act_to_act_same_bank_respects_rc() {
        let t = t();
        let mut b = Bank::new();
        b.activate(1, 0, &t);
        b.precharge(t.ras, &t);
        assert!(!b.can_activate(t.rc() - 1));
        assert!(b.can_activate(t.rc()));
    }

    #[test]
    fn read_write_turnaround() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 0, &t);
        b.column(0, ColKind::Read, t.rcd_rd, &t);
        // Write blocked until read-to-write turnaround elapses.
        assert!(!b.can_column(0, ColKind::Write, t.rcd_rd + t.cdlr - 1));
        assert!(b.can_column(0, ColKind::Write, t.rcd_rd + t.cdlr.max(t.rcd_wr - t.rcd_rd)));
    }

    #[test]
    fn figure11_exact_window() {
        // ACT @ 0, 8 writes @ 9,11,...,23, PRE @ 32, next ACT legal @ 44.
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 0, &t);
        let mut now = t.rcd_wr;
        for i in 0..8 {
            let at = t.rcd_wr + 2 * i;
            assert!(b.can_column(0, ColKind::Write, at), "write {i} blocked at {at}");
            b.column(0, ColKind::Write, at, &t);
            now = at;
        }
        let pre_at = now + t.wtp; // 23 + 9 = 32
        assert!(!b.can_precharge(pre_at - 1));
        b.precharge(pre_at, &t);
        let act_at = pre_at + t.rp; // 44
        assert!(!b.can_activate(act_at - 1));
        assert!(b.can_activate(act_at));
        assert_eq!(act_at, t.row_window_writes(8));
        assert_eq!(b.activations(), 1);
        assert_eq!(b.col_accesses(), 8);
    }

    #[test]
    fn earliest_column_lookahead() {
        let t = t();
        let mut b = Bank::new();
        // Closed bank: ACT now, column at rcd.
        assert_eq!(b.earliest_column(3, ColKind::Write, 10, &t), 10 + t.rcd_wr);
        b.activate(3, 0, &t);
        // Row hit: immediately once rcd elapsed.
        assert_eq!(b.earliest_column(3, ColKind::Write, 20, &t), 20);
        // Row conflict: PRE (>= ras) + RP + RCD, also bounded by tRC.
        let e = b.earliest_column(9, ColKind::Write, 20, &t);
        assert_eq!(e, (t.ras + t.rp).max(t.rc()) + t.rcd_wr);
    }

    #[test]
    #[should_panic(expected = "violates timing")]
    fn strict_state_machine_panics_on_violation() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 0, &t);
        b.column(0, ColKind::Write, 1, &t); // before tRCDW
    }

    #[test]
    fn timers_saturate_instead_of_wrapping_near_u64_max() {
        let t = t();
        let mut b = Bank::new();
        let now = u64::MAX - 2;
        assert!(b.can_activate(now));
        b.activate(7, now, &t);
        // Every timer clamps to "never" instead of wrapping behind
        // `now`, which the event core would read as already due.
        assert_eq!(b.next_event(now), Some(u64::MAX));
        assert_eq!(b.next_precharge_at(), u64::MAX);
        // The scheduler's row-miss lookahead saturates too.
        assert_eq!(b.earliest_column(8, ColKind::Read, now, &t), u64::MAX);
    }
}
