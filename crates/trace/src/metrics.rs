//! Latency histograms, the named counter registry, and the live
//! [`MetricsRegistry`] backing the `orderlight serve` telemetry plane.

use crate::json::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fixed-bucket latency histogram.
///
/// Buckets are defined by ascending *inclusive upper edges*; one
/// overflow bucket catches everything above the last edge. Recording is
/// O(log buckets).
///
/// # Example
///
/// ```
/// use orderlight_trace::Histogram;
/// let mut h = Histogram::new(vec![10, 100, 1000]);
/// h.record(10);   // first bucket (edge inclusive)
/// h.record(11);   // second bucket
/// h.record(5000); // overflow
/// assert_eq!(h.counts(), &[1, 1, 0, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram over `edges` (ascending inclusive upper
    /// bounds) plus an overflow bucket.
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly ascending.
    #[must_use]
    pub fn new(edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "a histogram needs at least one edge");
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "bucket edges must be strictly ascending");
        let n = edges.len() + 1;
        Histogram { edges, counts: vec![0; n], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// A doubling-edge histogram: up to `count` edges starting at
    /// `first` (`first`, `2*first`, `4*first`, …) — the usual shape for
    /// cycle latencies spanning several orders of magnitude. Doubling
    /// stops early if the next edge would overflow `u64`.
    ///
    /// # Panics
    /// Panics if `first` is zero or `count` is zero.
    #[must_use]
    pub fn exponential(first: u64, count: usize) -> Self {
        assert!(first > 0 && count > 0, "exponential histogram needs first > 0, count > 0");
        let mut edges = Vec::with_capacity(count);
        let mut e = first;
        for _ in 0..count {
            edges.push(e);
            if e > u64::MAX / 2 {
                break;
            }
            e *= 2;
        }
        Histogram::new(edges)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.edges.partition_point(|&e| e < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The bucket edges.
    #[must_use]
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts (`edges.len() + 1` entries; last = overflow).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Bucket-resolution estimate of the `p`-th percentile (`0.0..=1.0`)
    /// of the recorded values; `None` when empty.
    ///
    /// Walks the cumulative counts to the bucket holding the requested
    /// rank and reports that bucket's inclusive upper edge, clamped to
    /// the recorded `min`/`max` so boundary percentiles are exact and
    /// the estimate never leaves the observed range. The overflow
    /// bucket reports `max`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the percentile value, 1-based (ceil, so p=1.0 is the
        // last recorded value and p=0.0 the first).
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let est = self.edges.get(i).copied().unwrap_or(self.max);
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds another histogram's samples into this one. Both must share
    /// the same bucket edges — merge is how [`ShardedHistogram`]
    /// reassembles one logical distribution from its per-shard parts.
    ///
    /// # Panics
    /// Panics if the two histograms have different edges.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "merged histograms must share bucket edges");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(label, count)` rows for chart rendering: `"<=N"` per edge plus
    /// a final `">N"` overflow row.
    #[must_use]
    pub fn rows(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .edges
            .iter()
            .zip(&self.counts)
            .map(|(e, c)| (format!("<={e}"), *c as f64))
            .collect();
        rows.push((
            format!(">{}", self.edges.last().expect("non-empty edges")),
            *self.counts.last().expect("overflow bucket") as f64,
        ));
        rows
    }
}

/// Named per-epoch metrics, dumped as CSV.
///
/// Columns are registered on first use and keep their insertion order;
/// [`CounterRegistry::end_epoch`] freezes the current row. Missing
/// columns in an epoch read as 0.
///
/// # Example
///
/// ```
/// use orderlight_trace::CounterRegistry;
/// let mut reg = CounterRegistry::new();
/// reg.add("fence_wait", 120.0);
/// reg.add("queue_depth", 3.5);
/// reg.end_epoch();
/// reg.add("fence_wait", 80.0);
/// reg.end_epoch();
/// let csv = reg.to_csv();
/// assert!(csv.starts_with("epoch,fence_wait,queue_depth\n"));
/// assert!(csv.contains("\n1,80,0\n"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    names: Vec<String>,
    index: HashMap<String, usize>,
    epochs: Vec<Vec<f64>>,
    current: Vec<f64>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    fn column(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Adds `value` to counter `name` in the current epoch.
    pub fn add(&mut self, name: &str, value: f64) {
        let i = self.column(name);
        if self.current.len() <= i {
            self.current.resize(i + 1, 0.0);
        }
        self.current[i] += value;
    }

    /// Sets counter `name` to `value` in the current epoch (gauges).
    pub fn set(&mut self, name: &str, value: f64) {
        let i = self.column(name);
        if self.current.len() <= i {
            self.current.resize(i + 1, 0.0);
        }
        self.current[i] = value;
    }

    /// Reads counter `name` from the current (open) epoch.
    #[must_use]
    pub fn get(&self, name: &str) -> f64 {
        self.index.get(name).and_then(|&i| self.current.get(i)).copied().unwrap_or(0.0)
    }

    /// Closes the current epoch, starting a fresh one.
    pub fn end_epoch(&mut self) {
        self.epochs.push(std::mem::take(&mut self.current));
    }

    /// Number of closed epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Registered column names, in registration order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Renders all closed epochs as CSV (`epoch,<name>,...`).
    ///
    /// Values are printed with up to three decimals, trailing zeros
    /// trimmed, so integral counters stay readable.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch");
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for (e, row) in self.epochs.iter().enumerate() {
            let _ = write!(out, "{e}");
            for i in 0..self.names.len() {
                let v = row.get(i).copied().unwrap_or(0.0);
                let mut s = format!("{v:.3}");
                while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
                    s.pop();
                }
                let _ = write!(out, ",{s}");
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Live metrics: the service telemetry plane
// ---------------------------------------------------------------------------

/// A monotonically increasing live counter: one relaxed atomic add per
/// event, shareable across threads behind an `Arc`.
///
/// Unlike [`CounterRegistry`] (per-epoch, single-writer, post-hoc),
/// counters are written concurrently by connection handlers and workers
/// while the daemon runs, and read at any time by a metrics snapshot.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A live gauge: a signed point-in-time level (queue depth, busy
/// workers, cache size) that moves both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `d` (negative to decrease).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A [`Histogram`] sharded across independently locked parts to keep
/// recording lock-cheap under concurrency: each recording thread hashes
/// its thread id to a shard, so unrelated connection handlers rarely
/// contend on the same mutex. [`ShardedHistogram::merged`] reassembles
/// the single logical distribution for snapshots.
#[derive(Debug)]
pub struct ShardedHistogram {
    shards: Vec<Mutex<Histogram>>,
}

impl ShardedHistogram {
    /// A sharded doubling-edge histogram (see
    /// [`Histogram::exponential`]). `shards` is clamped to at least 1.
    #[must_use]
    pub fn exponential(shards: usize, first: u64, count: usize) -> Self {
        let shards = shards.max(1);
        ShardedHistogram {
            shards: (0..shards).map(|_| Mutex::new(Histogram::exponential(first, count))).collect(),
        }
    }

    /// Records one value into the calling thread's shard.
    pub fn record(&self, value: u64) {
        let idx = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) % self.shards.len()
        };
        self.shards[idx].lock().expect("histogram shard lock").record(value);
    }

    /// The merged distribution across every shard.
    ///
    /// # Panics
    /// Panics if a shard mutex is poisoned.
    #[must_use]
    pub fn merged(&self) -> Histogram {
        let mut out = self.shards[0].lock().expect("histogram shard lock").clone();
        for shard in &self.shards[1..] {
            out.merge(&shard.lock().expect("histogram shard lock"));
        }
        out
    }
}

/// The live, named metrics surface of a long-running process — the
/// registry `orderlight serve` snapshots on every `metrics` wire
/// request.
///
/// Names are dotted (`"requests.result"`, `"timing.run_us"`); the first
/// segment groups related metrics in the snapshot so deterministic
/// request/cache counters and wall-clock timing distributions live in
/// distinct, separately comparable sections. Registration (rare, at
/// service start) takes a registry lock once and hands back an `Arc`
/// handle; the hot path then touches only that handle — a relaxed
/// atomic for counters/gauges, one sharded mutex for histograms.
///
/// # Example
///
/// ```
/// use orderlight_trace::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// let hits = reg.counter("cache.hits");
/// hits.inc();
/// let snap = reg.snapshot_json();
/// assert!(snap.contains("\"cache\":{\"hits\":1}"));
/// assert!(reg.to_text().contains("orderlight_cache_hits 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<ShardedHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex is poisoned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created at zero on first use.
    ///
    /// # Panics
    /// Panics if the registry mutex is poisoned.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The sharded histogram named `name`, created with doubling edges
    /// (`first`, `2*first`, …; `count` edges, `shards` shards) on first
    /// use. Later calls return the existing histogram regardless of
    /// shape arguments.
    ///
    /// # Panics
    /// Panics if the registry mutex is poisoned.
    #[must_use]
    pub fn histogram(
        &self,
        name: &str,
        shards: usize,
        first: u64,
        count: usize,
    ) -> Arc<ShardedHistogram> {
        let mut map = self.histograms.lock().expect("metrics registry lock");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(ShardedHistogram::exponential(shards, first, count))),
        )
    }

    /// A point-in-time snapshot as a canonical JSON value: metrics
    /// grouped by the first dotted name segment, counters/gauges as
    /// numbers, histograms as `{count, sum, min, max, p50, p95, p99}`
    /// objects. `BTreeMap` ordering end to end makes equal snapshots
    /// serialise to equal bytes.
    ///
    /// # Panics
    /// Panics if a registry mutex is poisoned.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn snapshot_value(&self) -> Value {
        let mut groups: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
        let mut place = |name: &str, v: Value| {
            let (group, key) = name.split_once('.').unwrap_or(("misc", name));
            groups.entry(group.to_string()).or_default().insert(key.to_string(), v);
        };
        for (name, c) in self.counters.lock().expect("metrics registry lock").iter() {
            place(name, Value::Num(c.get() as f64));
        }
        for (name, g) in self.gauges.lock().expect("metrics registry lock").iter() {
            place(name, Value::Num(g.get() as f64));
        }
        for (name, h) in self.histograms.lock().expect("metrics registry lock").iter() {
            let m = h.merged();
            let mut obj = BTreeMap::new();
            obj.insert("count".to_string(), Value::Num(m.total() as f64));
            obj.insert("sum".to_string(), Value::Num(m.sum() as f64));
            obj.insert("min".to_string(), Value::Num(m.min().unwrap_or(0) as f64));
            obj.insert("max".to_string(), Value::Num(m.max().unwrap_or(0) as f64));
            for (label, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                obj.insert(label.to_string(), Value::Num(m.percentile(p).unwrap_or(0) as f64));
            }
            place(name, Value::Obj(obj));
        }
        Value::Obj(groups.into_iter().map(|(g, metrics)| (g, Value::Obj(metrics))).collect())
    }

    /// [`MetricsRegistry::snapshot_value`] serialised as canonical JSON.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        self.snapshot_value().to_json()
    }

    /// The text exposition format: one `orderlight_<name> <value>` line
    /// per metric, sorted, dots flattened to underscores; histograms
    /// expand into `_count`/`_sum`/`_min`/`_max`/`_p50`/`_p95`/`_p99`
    /// lines. The shape is Prometheus-scrapeable without requiring any
    /// client library.
    ///
    /// # Panics
    /// Panics if a registry mutex is poisoned.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        let flat = |name: &str| format!("orderlight_{}", name.replace('.', "_"));
        for (name, c) in self.counters.lock().expect("metrics registry lock").iter() {
            lines.push(format!("{} {}", flat(name), c.get()));
        }
        for (name, g) in self.gauges.lock().expect("metrics registry lock").iter() {
            lines.push(format!("{} {}", flat(name), g.get()));
        }
        for (name, h) in self.histograms.lock().expect("metrics registry lock").iter() {
            let m = h.merged();
            let base = flat(name);
            lines.push(format!("{base}_count {}", m.total()));
            lines.push(format!("{base}_sum {}", m.sum()));
            lines.push(format!("{base}_min {}", m.min().unwrap_or(0)));
            lines.push(format!("{base}_max {}", m.max().unwrap_or(0)));
            for (label, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                lines.push(format!("{base}_{label} {}", m.percentile(p).unwrap_or(0)));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(vec![8, 64, 512]);
        // Exactly on an edge -> that bucket.
        h.record(8);
        h.record(64);
        h.record(512);
        // One past an edge -> the next bucket.
        h.record(9);
        h.record(65);
        h.record(513);
        // Zero -> first bucket.
        h.record(0);
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(513));
    }

    #[test]
    fn exponential_edges_double() {
        let h = Histogram::exponential(4, 5);
        assert_eq!(h.edges(), &[4, 8, 16, 32, 64]);
        assert_eq!(h.counts().len(), 6);
    }

    #[test]
    fn exponential_edges_stop_before_overflowing() {
        let h = Histogram::exponential(1 << 40, 30);
        assert!(h.edges().windows(2).all(|w| w[0] < w[1]));
        assert!(h.edges().len() < 30, "doubling must stop before overflow");
        assert_eq!(*h.edges().last().unwrap(), 1u64 << 63);
    }

    #[test]
    fn mean_and_empty_behaviour() {
        let mut h = Histogram::new(vec![10]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(4);
        h.record(8);
        assert!((h.mean() - 6.0).abs() < f64::EPSILON);
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        assert_eq!(h.percentile(0.5), None, "empty histogram has no percentiles");
        for v in [5, 6, 7, 50, 60, 70, 80, 500, 600, 5000] {
            h.record(v);
        }
        // 10 values: ranks 1-3 in <=10, 4-7 in <=100, 8-9 in <=1000,
        // 10 in overflow.
        assert_eq!(h.percentile(0.5), Some(100));
        assert_eq!(h.percentile(0.9), Some(1000));
        assert_eq!(h.percentile(1.0), Some(5000), "overflow bucket reports max");
        assert_eq!(h.percentile(0.0), Some(10), "lowest rank clamps into bucket edge");
    }

    #[test]
    fn percentile_clamps_to_observed_range() {
        let mut h = Histogram::new(vec![1000]);
        h.record(3);
        h.record(4);
        // Bucket edge is 1000 but nothing above 4 was seen.
        assert_eq!(h.percentile(0.5), Some(4));
        assert_eq!(h.percentile(0.99), Some(4));
        let mut h = Histogram::exponential(1, 8);
        h.record(40);
        assert_eq!(h.percentile(0.5), Some(40), "single value is every percentile");
    }

    #[test]
    fn rows_label_every_bucket() {
        let mut h = Histogram::new(vec![10, 100]);
        h.record(5);
        h.record(1000);
        let rows = h.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("<=10".to_string(), 1.0));
        assert_eq!(rows[2], (">100".to_string(), 1.0));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_edges_panic() {
        let _ = Histogram::new(vec![10, 10]);
    }

    #[test]
    fn registry_rows_align_to_late_registered_columns() {
        let mut reg = CounterRegistry::new();
        reg.add("a", 1.0);
        reg.end_epoch();
        reg.add("b", 2.0);
        reg.add("a", 0.5);
        reg.add("a", 0.25);
        reg.end_epoch();
        assert_eq!(reg.epochs(), 2);
        let csv = reg.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "epoch,a,b");
        assert_eq!(lines[1], "0,1,0", "column b missing in epoch 0 reads as 0");
        assert_eq!(lines[2], "1,0.75,2");
    }

    #[test]
    fn set_overwrites_and_get_reads_open_epoch() {
        let mut reg = CounterRegistry::new();
        reg.set("gauge", 5.0);
        reg.set("gauge", 7.0);
        assert_eq!(reg.get("gauge"), 7.0);
        assert_eq!(reg.get("missing"), 0.0);
    }

    #[test]
    fn histogram_merge_folds_counts_and_extremes() {
        let mut a = Histogram::exponential(1, 8);
        let mut b = Histogram::exponential(1, 8);
        a.record(2);
        a.record(100);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.sum(), 109);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(100));
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::exponential(1, 8));
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "share bucket edges")]
    fn histogram_merge_rejects_mismatched_edges() {
        let mut a = Histogram::exponential(1, 8);
        a.merge(&Histogram::exponential(2, 8));
    }

    #[test]
    fn live_counter_and_gauge_move_as_expected() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn sharded_histogram_merges_across_threads() {
        let h = Arc::new(ShardedHistogram::exponential(4, 1, 16));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for v in 0..10 {
                        h.record(t * 10 + v);
                    }
                });
            }
        });
        let merged = h.merged();
        assert_eq!(merged.total(), 80);
        assert_eq!(merged.min(), Some(0));
        assert_eq!(merged.max(), Some(79));
    }

    #[test]
    fn registry_handles_are_shared_and_snapshot_groups_by_prefix() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests.result");
        let b = reg.counter("requests.result");
        a.add(2);
        b.inc();
        reg.gauge("queue.depth").set(4);
        reg.histogram("timing.run_us", 2, 1, 16).record(12);
        let snap = reg.snapshot_value();
        let requests = snap.get("requests").expect("requests group");
        assert_eq!(requests.get("result").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            snap.get("queue").and_then(|q| q.get("depth")).and_then(Value::as_f64),
            Some(4.0)
        );
        let run = snap.get("timing").and_then(|t| t.get("run_us")).expect("histogram entry");
        assert_eq!(run.get("count").and_then(Value::as_f64), Some(1.0));
        assert_eq!(run.get("min").and_then(Value::as_f64), Some(12.0));
        // Equal state serialises to equal bytes.
        assert_eq!(reg.snapshot_json(), reg.snapshot_json());
    }

    #[test]
    fn text_exposition_flattens_names() {
        let reg = MetricsRegistry::new();
        reg.counter("cache.hits").inc();
        reg.histogram("timing.queue_wait_us", 1, 1, 4).record(3);
        let text = reg.to_text();
        assert!(text.contains("orderlight_cache_hits 1\n"), "{text}");
        assert!(text.contains("orderlight_timing_queue_wait_us_count 1\n"), "{text}");
        assert!(text.contains("orderlight_timing_queue_wait_us_sum 3\n"), "{text}");
    }
}
