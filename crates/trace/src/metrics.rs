//! Latency histograms and the named counter registry.

use std::collections::HashMap;
use std::fmt::Write as _;

/// A fixed-bucket latency histogram.
///
/// Buckets are defined by ascending *inclusive upper edges*; one
/// overflow bucket catches everything above the last edge. Recording is
/// O(log buckets).
///
/// # Example
///
/// ```
/// use orderlight_trace::Histogram;
/// let mut h = Histogram::new(vec![10, 100, 1000]);
/// h.record(10);   // first bucket (edge inclusive)
/// h.record(11);   // second bucket
/// h.record(5000); // overflow
/// assert_eq!(h.counts(), &[1, 1, 0, 1]);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram over `edges` (ascending inclusive upper
    /// bounds) plus an overflow bucket.
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly ascending.
    #[must_use]
    pub fn new(edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "a histogram needs at least one edge");
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "bucket edges must be strictly ascending");
        let n = edges.len() + 1;
        Histogram { edges, counts: vec![0; n], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// A doubling-edge histogram: up to `count` edges starting at
    /// `first` (`first`, `2*first`, `4*first`, …) — the usual shape for
    /// cycle latencies spanning several orders of magnitude. Doubling
    /// stops early if the next edge would overflow `u64`.
    ///
    /// # Panics
    /// Panics if `first` is zero or `count` is zero.
    #[must_use]
    pub fn exponential(first: u64, count: usize) -> Self {
        assert!(first > 0 && count > 0, "exponential histogram needs first > 0, count > 0");
        let mut edges = Vec::with_capacity(count);
        let mut e = first;
        for _ in 0..count {
            edges.push(e);
            if e > u64::MAX / 2 {
                break;
            }
            e *= 2;
        }
        Histogram::new(edges)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.edges.partition_point(|&e| e < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The bucket edges.
    #[must_use]
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts (`edges.len() + 1` entries; last = overflow).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Bucket-resolution estimate of the `p`-th percentile (`0.0..=1.0`)
    /// of the recorded values; `None` when empty.
    ///
    /// Walks the cumulative counts to the bucket holding the requested
    /// rank and reports that bucket's inclusive upper edge, clamped to
    /// the recorded `min`/`max` so boundary percentiles are exact and
    /// the estimate never leaves the observed range. The overflow
    /// bucket reports `max`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the percentile value, 1-based (ceil, so p=1.0 is the
        // last recorded value and p=0.0 the first).
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let est = self.edges.get(i).copied().unwrap_or(self.max);
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// `(label, count)` rows for chart rendering: `"<=N"` per edge plus
    /// a final `">N"` overflow row.
    #[must_use]
    pub fn rows(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .edges
            .iter()
            .zip(&self.counts)
            .map(|(e, c)| (format!("<={e}"), *c as f64))
            .collect();
        rows.push((
            format!(">{}", self.edges.last().expect("non-empty edges")),
            *self.counts.last().expect("overflow bucket") as f64,
        ));
        rows
    }
}

/// Named per-epoch metrics, dumped as CSV.
///
/// Columns are registered on first use and keep their insertion order;
/// [`CounterRegistry::end_epoch`] freezes the current row. Missing
/// columns in an epoch read as 0.
///
/// # Example
///
/// ```
/// use orderlight_trace::CounterRegistry;
/// let mut reg = CounterRegistry::new();
/// reg.add("fence_wait", 120.0);
/// reg.add("queue_depth", 3.5);
/// reg.end_epoch();
/// reg.add("fence_wait", 80.0);
/// reg.end_epoch();
/// let csv = reg.to_csv();
/// assert!(csv.starts_with("epoch,fence_wait,queue_depth\n"));
/// assert!(csv.contains("\n1,80,0\n"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    names: Vec<String>,
    index: HashMap<String, usize>,
    epochs: Vec<Vec<f64>>,
    current: Vec<f64>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    fn column(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Adds `value` to counter `name` in the current epoch.
    pub fn add(&mut self, name: &str, value: f64) {
        let i = self.column(name);
        if self.current.len() <= i {
            self.current.resize(i + 1, 0.0);
        }
        self.current[i] += value;
    }

    /// Sets counter `name` to `value` in the current epoch (gauges).
    pub fn set(&mut self, name: &str, value: f64) {
        let i = self.column(name);
        if self.current.len() <= i {
            self.current.resize(i + 1, 0.0);
        }
        self.current[i] = value;
    }

    /// Reads counter `name` from the current (open) epoch.
    #[must_use]
    pub fn get(&self, name: &str) -> f64 {
        self.index.get(name).and_then(|&i| self.current.get(i)).copied().unwrap_or(0.0)
    }

    /// Closes the current epoch, starting a fresh one.
    pub fn end_epoch(&mut self) {
        self.epochs.push(std::mem::take(&mut self.current));
    }

    /// Number of closed epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Registered column names, in registration order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Renders all closed epochs as CSV (`epoch,<name>,...`).
    ///
    /// Values are printed with up to three decimals, trailing zeros
    /// trimmed, so integral counters stay readable.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch");
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for (e, row) in self.epochs.iter().enumerate() {
            let _ = write!(out, "{e}");
            for i in 0..self.names.len() {
                let v = row.get(i).copied().unwrap_or(0.0);
                let mut s = format!("{v:.3}");
                while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
                    s.pop();
                }
                let _ = write!(out, ",{s}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(vec![8, 64, 512]);
        // Exactly on an edge -> that bucket.
        h.record(8);
        h.record(64);
        h.record(512);
        // One past an edge -> the next bucket.
        h.record(9);
        h.record(65);
        h.record(513);
        // Zero -> first bucket.
        h.record(0);
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(513));
    }

    #[test]
    fn exponential_edges_double() {
        let h = Histogram::exponential(4, 5);
        assert_eq!(h.edges(), &[4, 8, 16, 32, 64]);
        assert_eq!(h.counts().len(), 6);
    }

    #[test]
    fn exponential_edges_stop_before_overflowing() {
        let h = Histogram::exponential(1 << 40, 30);
        assert!(h.edges().windows(2).all(|w| w[0] < w[1]));
        assert!(h.edges().len() < 30, "doubling must stop before overflow");
        assert_eq!(*h.edges().last().unwrap(), 1u64 << 63);
    }

    #[test]
    fn mean_and_empty_behaviour() {
        let mut h = Histogram::new(vec![10]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(4);
        h.record(8);
        assert!((h.mean() - 6.0).abs() < f64::EPSILON);
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        assert_eq!(h.percentile(0.5), None, "empty histogram has no percentiles");
        for v in [5, 6, 7, 50, 60, 70, 80, 500, 600, 5000] {
            h.record(v);
        }
        // 10 values: ranks 1-3 in <=10, 4-7 in <=100, 8-9 in <=1000,
        // 10 in overflow.
        assert_eq!(h.percentile(0.5), Some(100));
        assert_eq!(h.percentile(0.9), Some(1000));
        assert_eq!(h.percentile(1.0), Some(5000), "overflow bucket reports max");
        assert_eq!(h.percentile(0.0), Some(10), "lowest rank clamps into bucket edge");
    }

    #[test]
    fn percentile_clamps_to_observed_range() {
        let mut h = Histogram::new(vec![1000]);
        h.record(3);
        h.record(4);
        // Bucket edge is 1000 but nothing above 4 was seen.
        assert_eq!(h.percentile(0.5), Some(4));
        assert_eq!(h.percentile(0.99), Some(4));
        let mut h = Histogram::exponential(1, 8);
        h.record(40);
        assert_eq!(h.percentile(0.5), Some(40), "single value is every percentile");
    }

    #[test]
    fn rows_label_every_bucket() {
        let mut h = Histogram::new(vec![10, 100]);
        h.record(5);
        h.record(1000);
        let rows = h.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("<=10".to_string(), 1.0));
        assert_eq!(rows[2], (">100".to_string(), 1.0));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_edges_panic() {
        let _ = Histogram::new(vec![10, 10]);
    }

    #[test]
    fn registry_rows_align_to_late_registered_columns() {
        let mut reg = CounterRegistry::new();
        reg.add("a", 1.0);
        reg.end_epoch();
        reg.add("b", 2.0);
        reg.add("a", 0.5);
        reg.add("a", 0.25);
        reg.end_epoch();
        assert_eq!(reg.epochs(), 2);
        let csv = reg.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "epoch,a,b");
        assert_eq!(lines[1], "0,1,0", "column b missing in epoch 0 reads as 0");
        assert_eq!(lines[2], "1,0.75,2");
    }

    #[test]
    fn set_overwrites_and_get_reads_open_epoch() {
        let mut reg = CounterRegistry::new();
        reg.set("gauge", 5.0);
        reg.set("gauge", 7.0);
        assert_eq!(reg.get("gauge"), 7.0);
        assert_eq!(reg.get("missing"), 0.0);
    }
}
