//! Trace sinks: where events go.

use crate::event::TraceEvent;
use std::sync::{Arc, Mutex};

/// A shared sink handle, cheap to clone into every component.
pub type SharedSink = Arc<dyn TraceSink>;

/// Consumer of [`TraceEvent`]s.
///
/// Implementations take `&self` (interior mutability) so one sink can be
/// shared by every SM, controller and channel of a system. A sink must
/// never influence simulation behaviour — it only observes. `Debug` is a
/// supertrait so components holding a [`SharedSink`] can keep deriving
/// `Debug`.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Consumes one event.
    fn emit(&self, event: TraceEvent);

    /// Whether emitting is worthwhile. Call sites use this to skip event
    /// construction entirely on the hot path; [`NopSink`] returns
    /// `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The zero-overhead default sink: drops everything, reports itself
/// disabled so instrumented code skips event construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl TraceSink for NopSink {
    fn emit(&self, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Returns a shared handle to the no-op sink.
#[must_use]
pub fn nop_sink() -> SharedSink {
    Arc::new(NopSink)
}

/// A bounded in-memory buffer of events.
///
/// Once `capacity` events are held, further events are counted but
/// dropped (newest-dropped policy: the retained prefix stays
/// contiguous, which downstream interval matching relies on).
#[derive(Debug)]
pub struct RingSink {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct RingInner {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a sink retaining at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink { inner: Mutex::new(RingInner { events: Vec::new(), dropped: 0 }), capacity }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sink poisoned").events.len()
    }

    /// Whether no events were retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("sink poisoned").dropped
    }

    /// A copy of the retained events, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("sink poisoned").events.clone()
    }
}

impl TraceSink for RingSink {
    fn emit(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("sink poisoned");
        if inner.events.len() < self.capacity {
            inner.events.push(event);
        } else {
            inner.dropped += 1;
        }
    }
}

/// Fans every event out to two sinks, so one run can feed independent
/// consumers — e.g. a [`RingSink`] for the Chrome export alongside a
/// streaming profiler aggregation.
#[derive(Debug)]
pub struct TeeSink {
    a: SharedSink,
    b: SharedSink,
}

impl TeeSink {
    /// Creates a sink forwarding to both `a` and `b`.
    #[must_use]
    pub fn new(a: SharedSink, b: SharedSink) -> Self {
        TeeSink { a, b }
    }
}

impl TraceSink for TeeSink {
    fn emit(&self, event: TraceEvent) {
        if self.a.is_enabled() {
            self.a.emit(event);
        }
        if self.b.is_enabled() {
            self.b.emit(event);
        }
    }

    fn is_enabled(&self) -> bool {
        self.a.is_enabled() || self.b.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::InstrKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::WarpIssue { cycle, sm: 0, warp: 0, kind: InstrKind::Pim }
    }

    #[test]
    fn nop_sink_is_disabled_and_silent() {
        let s = NopSink;
        assert!(!s.is_enabled());
        s.emit(ev(0));
    }

    #[test]
    fn ring_retains_prefix_and_counts_drops() {
        let s = RingSink::new(3);
        assert!(s.is_enabled());
        for c in 0..5 {
            s.emit(ev(c));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let cycles: Vec<u64> = s.events().iter().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2], "oldest events survive");
    }

    #[test]
    fn tee_feeds_both_sinks_and_reports_enablement() {
        let a = Arc::new(RingSink::new(4));
        let b = Arc::new(RingSink::new(4));
        let tee = TeeSink::new(a.clone(), b.clone());
        assert!(tee.is_enabled());
        tee.emit(ev(1));
        assert_eq!((a.len(), b.len()), (1, 1));
        let dead = TeeSink::new(nop_sink(), nop_sink());
        assert!(!dead.is_enabled(), "two disabled sinks stay disabled");
    }

    #[test]
    fn shared_handle_feeds_the_same_buffer() {
        let ring = Arc::new(RingSink::new(8));
        let shared: SharedSink = ring.clone();
        shared.emit(ev(1));
        shared.emit(ev(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
    }
}
