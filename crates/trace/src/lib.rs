//! # Cycle-level tracing and metrics (`orderlight-trace`)
//!
//! The observability backbone of the reproduction: a typed event
//! vocabulary covering the whole request path (warp issue at the SM,
//! OrderLight packet lifecycle, memory-controller scheduling, per-bank
//! DRAM commands), pluggable sinks, latency histograms, a named counter
//! registry, and exporters to the Chrome trace-event format (loadable in
//! Perfetto / `chrome://tracing`) and CSV.
//!
//! The crate is deliberately **dependency-free** — it must be buildable
//! in offline/vendored environments and linkable from every simulation
//! crate without widening their dependency graphs.
//!
//! ## Zero overhead when disabled
//!
//! Components hold an [`SharedSink`] (an `Arc<dyn TraceSink>`) that
//! defaults to [`NopSink`]. Call sites guard event construction with
//! [`TraceSink::is_enabled`], so an uninstrumented run performs one
//! boolean load per would-be event and allocates nothing. Sinks only
//! *observe* — they can never feed back into simulation state — so a
//! traced run is cycle-identical to an untraced one (asserted by the
//! determinism-parity test in the facade crate).
//!
//! ## Quick tour
//!
//! ```
//! use orderlight_trace::{ChromeTraceBuilder, ClockDomains, RingSink, TraceEvent, TraceSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(RingSink::new(1024));
//! sink.emit(TraceEvent::DramCmd {
//!     cycle: 10,
//!     channel: 0,
//!     bank: 3,
//!     kind: orderlight_trace::DramCmdKind::Activate,
//!     row: 7,
//! });
//! let clocks = ClockDomains { core_hz: 1.2e9, mem_hz: 850e6 };
//! let json = ChromeTraceBuilder::new(clocks).build(&sink.events());
//! let doc = orderlight_trace::json::parse(&json).unwrap();
//! assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() >= 1);
//! ```

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use chrome::{ChromeTraceBuilder, ClockDomains};
pub use event::{DramCmdKind, EventCategory, InstrKind, SchedSide, StallCause, TraceEvent};
pub use metrics::{Counter, CounterRegistry, Gauge, Histogram, MetricsRegistry, ShardedHistogram};
pub use sink::{NopSink, RingSink, SharedSink, TeeSink, TraceSink};
pub use span::{spans_to_chrome, SpanPhases, SERVICE_SPAN_PID};
