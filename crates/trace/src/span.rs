//! Request-scoped service spans.
//!
//! Every request the `orderlight serve` daemon handles is decomposed
//! into a fixed phase sequence — **parse → queue-wait → run →
//! serialize → write** — whose durations ([`SpanPhases`]) ride the
//! request's `id`-envelope `result` reply and land in the daemon's
//! flight recorder. The phases are plain microsecond durations, so a
//! span is wire-serialisable through the canonical [`Value`] writer and
//! foldable into a Chrome trace-event document
//! ([`spans_to_chrome`]): a served run's request timeline renders in
//! Perfetto on its own `service requests` process track, composable
//! side by side with the simulation's own trace of the same run.

use crate::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The service request phases, in execution order. The wire spelling
/// of phase `p` is `<p>_us`.
pub const SPAN_PHASES: [&str; 5] = ["parse", "queue", "run", "serialize", "write"];

/// The Chrome trace-event `pid` of the service-request process track —
/// above the simulation's own category pids (1–5), so folded spans
/// never collide with a simulation trace of the same run.
pub const SERVICE_SPAN_PID: u64 = 6;

/// One request's per-phase durations, in microseconds.
///
/// `queue`/`run` are zero for cache hits; `write` covers the streamed
/// non-terminal replies (`accepted`/`running`) — the terminal write
/// cannot observe its own duration, so it is excluded by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanPhases {
    /// Reading and validating the request line (JSON parse, schema
    /// check, scenario build and hash).
    pub parse_us: u64,
    /// Waiting in the worker queue (cache misses only).
    pub queue_us: u64,
    /// Executing the simulation (cache misses only).
    pub run_us: u64,
    /// Building and serialising the reply value.
    pub serialize_us: u64,
    /// Writing the non-terminal streamed replies.
    pub write_us: u64,
}

impl SpanPhases {
    /// Total across every phase (saturating).
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.durations().iter().fold(0u64, |acc, (_, us)| acc.saturating_add(*us))
    }

    /// `(phase name, microseconds)` pairs in [`SPAN_PHASES`] order.
    #[must_use]
    pub fn durations(&self) -> [(&'static str, u64); 5] {
        [
            ("parse", self.parse_us),
            ("queue", self.queue_us),
            ("run", self.run_us),
            ("serialize", self.serialize_us),
            ("write", self.write_us),
        ]
    }

    /// The canonical wire object: `{"parse_us":…,"queue_us":…,…}`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        for (name, us) in self.durations() {
            map.insert(format!("{name}_us"), Value::Num(us as f64));
        }
        Value::Obj(map)
    }

    /// Parses the wire object back; `None` when any phase is absent or
    /// non-numeric.
    #[must_use]
    pub fn from_value(doc: &Value) -> Option<SpanPhases> {
        let us = |name: &str| -> Option<u64> {
            let n = doc.get(&format!("{name}_us"))?.as_f64()?;
            (n.is_finite() && n >= 0.0).then_some(n as u64)
        };
        Some(SpanPhases {
            parse_us: us("parse")?,
            queue_us: us("queue")?,
            run_us: us("run")?,
            serialize_us: us("serialize")?,
            write_us: us("write")?,
        })
    }
}

/// Folds labelled spans into a complete Chrome trace-event document
/// (`{"traceEvents":[…]}`), loadable at <https://ui.perfetto.dev> and
/// mergeable with a simulation trace of the same run: each span gets
/// its own named thread track inside the `service requests` process
/// ([`SERVICE_SPAN_PID`]), phases laid back to back as complete `"X"`
/// events, successive spans laid end to end on the shared time axis.
#[must_use]
pub fn spans_to_chrome(spans: &[(String, SpanPhases)]) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(spans.len() * 6 + 2);
    rows.push(format!(
        "{{\"ph\":\"M\",\"pid\":{SERVICE_SPAN_PID},\"name\":\"process_name\",\
         \"args\":{{\"name\":\"service requests\"}}}}"
    ));
    let mut t0 = 0u64;
    for (tid, (label, phases)) in spans.iter().enumerate() {
        let label = Value::Str(label.clone()).to_json();
        rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":{SERVICE_SPAN_PID},\"tid\":{tid},\
             \"name\":\"thread_name\",\"args\":{{\"name\":{label}}}}}"
        ));
        let mut ts = t0;
        for (name, us) in phases.durations() {
            if us == 0 {
                continue;
            }
            rows.push(format!(
                "{{\"ph\":\"X\",\"pid\":{SERVICE_SPAN_PID},\"tid\":{tid},\
                 \"name\":\"{name}\",\"cat\":\"service\",\"ts\":{ts},\"dur\":{us}}}"
            ));
            ts += us;
        }
        t0 = ts;
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "{row}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> SpanPhases {
        SpanPhases { parse_us: 10, queue_us: 120, run_us: 9000, serialize_us: 30, write_us: 5 }
    }

    #[test]
    fn wire_object_round_trips() {
        let phases = sample();
        let v = phases.to_value();
        assert_eq!(
            v.to_json(),
            r#"{"parse_us":10,"queue_us":120,"run_us":9000,"serialize_us":30,"write_us":5}"#
        );
        assert_eq!(SpanPhases::from_value(&v), Some(phases));
        assert_eq!(phases.total_us(), 9165);
        // A missing phase is a parse failure, not a silent zero.
        assert_eq!(SpanPhases::from_value(&json::parse(r#"{"parse_us":1}"#).unwrap()), None);
    }

    #[test]
    fn chrome_fold_parses_and_lays_phases_sequentially() {
        let doc = spans_to_chrome(&[
            ("req 1 0xabc".to_string(), sample()),
            ("req 2 0xdef".to_string(), SpanPhases { parse_us: 7, ..SpanPhases::default() }),
        ]);
        let parsed = json::parse(&doc).expect("chrome doc parses");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process-name + 2 thread-name metadata + 5 non-zero phases
        // for span 1 + 1 for span 2.
        assert_eq!(events.len(), 9);
        let xs: Vec<&Value> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).collect();
        assert_eq!(xs.len(), 6);
        // Phases tile the axis: each X starts where the previous ended.
        let mut ts = 0.0;
        for x in &xs {
            assert_eq!(x.get("ts").and_then(Value::as_f64), Some(ts));
            ts += x.get("dur").and_then(Value::as_f64).unwrap();
        }
        assert_eq!(xs[5].get("tid").and_then(Value::as_f64), Some(1.0), "second span, own track");
    }
}
