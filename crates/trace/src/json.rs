//! A minimal JSON reader/writer used to validate exporter output.
//!
//! The build environment is offline, so `serde_json` is not available;
//! this hand-rolled parser covers the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) and is used by
//! the exporter tests to round-trip Chrome trace documents. It is a test
//! and tooling aid, not a general-purpose serializer.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serialises to **canonical** compact JSON: no whitespace, object
    /// keys in `BTreeMap` (lexicographic) order, integral numbers
    /// without a fraction, non-integral numbers via Rust's
    /// shortest-round-trip float formatting. Two semantically equal
    /// values always produce the same bytes, and
    /// `parse(v.to_json()).to_json() == v.to_json()` — the property the
    /// service layer relies on to compare replies with `cmp`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&format_number(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Canonical number formatting: finite integral values in `i64` range
/// print without a fraction (`5`, not `5.0`); everything else uses
/// Rust's shortest-round-trip `f64` formatting. Non-finite values have
/// no JSON spelling and serialise as `null`.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    #[allow(clippy::cast_possible_truncation)]
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl Value {
    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Handles `"`/`\\`, the mandated control-character escapes,
/// and arbitrary other control characters via `\u00XX`.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let n = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the maximal plain-UTF-8 run in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000
                                        + ((u32::from(hi) - 0xd800) << 10)
                                        + (u32::from(lo) - 0xdc00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                u32::from(hi)
                            };
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        s.parse::<f64>().map(Value::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"}}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        assert_eq!(doc.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        let doc = parse(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\n\t\"\\A\u{1f600}"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote:\" back:\\ nl:\n tab:\t ctrl:\u{01} emoji:\u{1f600}";
        let literal = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&literal).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "01x", "[1] junk", "tru"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn canonical_writer_round_trips_and_is_stable() {
        let doc =
            parse(r#"{ "b": [1, 2.5, -3], "a": {"z": null, "y": true}, "s": "q\"\n" }"#).unwrap();
        let canon = doc.to_json();
        // Keys in lexicographic order, compact, integral floats as ints.
        assert_eq!(canon, "{\"a\":{\"y\":true,\"z\":null},\"b\":[1,2.5,-3],\"s\":\"q\\\"\\n\"}");
        // Fixed point: parse(write(v)) writes the same bytes again.
        assert_eq!(parse(&canon).unwrap().to_json(), canon);
        // Field order in the source text does not matter.
        let reordered = parse(r#"{"s":"q\"\n","a":{"y":true,"z":null},"b":[1,2.5,-3]}"#).unwrap();
        assert_eq!(reordered.to_json(), canon);
    }

    #[test]
    fn canonical_writer_number_forms() {
        assert_eq!(Value::Num(5.0).to_json(), "5");
        assert_eq!(Value::Num(-0.125).to_json(), "-0.125");
        assert_eq!(Value::Num(1e18).to_json(), "1000000000000000000");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        // Shortest-round-trip: the parsed value re-serialises identically.
        for s in ["0.1", "1234.5678", "1e18"] {
            let v = parse(s).unwrap();
            assert_eq!(parse(&v.to_json()).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn rejects_lone_surrogates() {
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }
}
