//! The typed trace-event vocabulary.
//!
//! Events carry plain integers (no simulator types) so the crate stays
//! dependency-free and events remain cheap to copy into a ring buffer.
//! Cycle stamps are in the emitting component's own clock domain: SM
//! events count **core** cycles, controller/DRAM events count **memory**
//! cycles. Exporters convert both onto one wall-clock axis via
//! [`crate::ClockDomains`].

/// Which kernel-instruction class a warp issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// A fine-grained PIM instruction (load/compute/store/execute).
    Pim,
    /// A conventional host load.
    Load,
    /// A conventional host store.
    Store,
    /// An in-core SIMD compute.
    Compute,
    /// A fence ordering primitive.
    Fence,
    /// An OrderLight ordering primitive.
    OrderLight,
}

impl InstrKind {
    /// Short label for track names and CSV columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InstrKind::Pim => "pim",
            InstrKind::Load => "load",
            InstrKind::Store => "store",
            InstrKind::Compute => "compute",
            InstrKind::Fence => "fence",
            InstrKind::OrderLight => "orderlight",
        }
    }
}

/// A DRAM (or PIM-execute) command class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCmdKind {
    /// Row activation.
    Activate,
    /// Precharge.
    Precharge,
    /// Column read.
    Read,
    /// Column write.
    Write,
    /// Execute-only PIM command (no DRAM access).
    Exec,
}

impl DramCmdKind {
    /// Conventional mnemonic (`ACT`, `PRE`, `RD`, `WR`, `EXEC`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            DramCmdKind::Activate => "ACT",
            DramCmdKind::Precharge => "PRE",
            DramCmdKind::Read => "RD",
            DramCmdKind::Write => "WR",
            DramCmdKind::Exec => "EXEC",
        }
    }
}

/// Which transaction queue a scheduler decision drew from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedSide {
    /// The read queue.
    Read,
    /// The write queue.
    Write,
}

/// The typed cause a core stall cycle is charged to. Mirrors the SM's
/// internal accounting one-for-one, so the profiler's conservation
/// invariant (sum of attributed cycles per cause == the SM's stall
/// counters) holds by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallCause {
    /// A warp parked waiting for a fence acknowledgement.
    FenceWait,
    /// Issue held while in-flight stores drain ahead of a fence.
    FenceDrain,
    /// Issue held for OrderLight packet-injection spacing.
    OlWait,
    /// Operand-collector read-after-write interlock.
    RegWait,
    /// Structural hazard: operand collector or LDST queue full.
    Structural,
    /// Sequence-number baseline out of controller buffer credits.
    CreditWait,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 6] = [
        StallCause::FenceWait,
        StallCause::FenceDrain,
        StallCause::OlWait,
        StallCause::RegWait,
        StallCause::Structural,
        StallCause::CreditWait,
    ];

    /// Stable lowercase label for reports, JSON keys and CSV columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::FenceWait => "fence_wait",
            StallCause::FenceDrain => "fence_drain",
            StallCause::OlWait => "ol_wait",
            StallCause::RegWait => "reg_wait",
            StallCause::Structural => "structural",
            StallCause::CreditWait => "credit_wait",
        }
    }
}

/// One cycle-stamped observation from the simulation.
///
/// The taxonomy follows the paper's explanatory figures: warp activity
/// and fence stalls (Figures 5/7), the OrderLight packet lifecycle
/// (Figures 8/9), memory-controller scheduling, and the per-bank DRAM
/// command timeline (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A warp issued an instruction (core cycles).
    WarpIssue {
        /// Core cycle of issue.
        cycle: u64,
        /// Issuing SM index.
        sm: u32,
        /// Flattened global warp id.
        warp: u32,
        /// Instruction class.
        kind: InstrKind,
    },
    /// A warp retired (program exhausted; core cycles).
    WarpRetire {
        /// Core cycle of retirement.
        cycle: u64,
        /// SM index.
        sm: u32,
        /// Flattened global warp id.
        warp: u32,
    },
    /// A warp entered the fence-stall state (core cycles).
    FenceStallBegin {
        /// Core cycle the stall began.
        cycle: u64,
        /// SM index.
        sm: u32,
        /// Flattened global warp id.
        warp: u32,
        /// Per-warp fence id the acknowledgement must carry.
        fence_id: u64,
    },
    /// The fence acknowledgement arrived and the warp resumed (core
    /// cycles).
    FenceStallEnd {
        /// Core cycle the stall ended.
        cycle: u64,
        /// SM index.
        sm: u32,
        /// Flattened global warp id.
        warp: u32,
        /// The acknowledged fence id.
        fence_id: u64,
    },
    /// An OrderLight packet was created and injected at the core (core
    /// cycles).
    PacketCreated {
        /// Core cycle of creation.
        cycle: u64,
        /// Destination memory channel.
        channel: u8,
        /// Constrained memory group.
        group: u8,
        /// Per-(channel, group) packet number.
        number: u32,
        /// Creating warp (flattened id).
        warp: u32,
    },
    /// A packet copy arrived at the controller's transaction queues
    /// (memory cycles).
    PacketEnqueued {
        /// Memory cycle of arrival.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Constrained memory group.
        group: u8,
        /// Packet number.
        number: u32,
    },
    /// All copies of a packet converged and merged at the scheduler
    /// (memory cycles).
    PacketMerged {
        /// Memory cycle of the merge.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Constrained memory group.
        group: u8,
        /// Packet number.
        number: u32,
    },
    /// A memory request entered the controller's transaction queues
    /// (memory cycles). Together with [`TraceEvent::ReqIssued`] this is
    /// the raw material of the happens-before oracle: a request that
    /// arrives *after* a packet must not issue while requests that
    /// arrived *before* it are still outstanding in the packet's groups.
    ReqEnqueued {
        /// Memory cycle of arrival.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Target memory group.
        group: u8,
        /// Originating warp (flattened id).
        warp: u32,
        /// Per-warp sequence number (unique per warp).
        seq: u64,
    },
    /// A memory request's column (or execute) command issued and its
    /// group-ordering obligations were released (memory cycles).
    ReqIssued {
        /// Memory cycle of issue.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Target memory group.
        group: u8,
        /// Originating warp (flattened id).
        warp: u32,
        /// Per-warp sequence number (unique per warp).
        seq: u64,
    },
    /// The controller generated a fence acknowledgement (memory cycles).
    FenceAck {
        /// Memory cycle of the acknowledgement.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Acknowledged warp (flattened id).
        warp: u32,
        /// Acknowledged fence id.
        fence_id: u64,
    },
    /// The FR-FCFS scheduler dequeued a transaction into a command queue
    /// (memory cycles).
    SchedDecision {
        /// Memory cycle of the decision.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Queue the pick came from.
        side: SchedSide,
        /// Destination bank (`0xff` for execute-only commands).
        bank: u8,
        /// Whether the pick was a row hit at decision time.
        row_hit: bool,
    },
    /// Periodic transaction-queue occupancy sample (memory cycles;
    /// every 64. Synthesized closed-form across skipped windows —
    /// `MemoryController::skip_ticks` emits the samples its dense
    /// ticks would have, so the stream is core-independent).
    QueueSample {
        /// Memory cycle of the sample.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Read-queue occupancy.
        read_q: u32,
        /// Write-queue occupancy.
        write_q: u32,
    },
    /// A DRAM (or PIM-execute) command issued (memory cycles).
    DramCmd {
        /// Memory cycle of issue.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Target bank (`0xff` for execute-only commands).
        bank: u8,
        /// Command class.
        kind: DramCmdKind,
        /// Target row (`u32::MAX` when not row-addressed).
        row: u32,
    },
    /// A bank's row closed after `open_cycles` of residency (memory
    /// cycles; emitted at precharge time).
    RowInterval {
        /// Memory cycle the row closed.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Bank.
        bank: u8,
        /// The row that was open.
        row: u32,
        /// Cycles the row spent open.
        open_cycles: u64,
    },
    /// A host read completed; `latency` is arrival-to-column-issue in
    /// memory cycles.
    HostReadDone {
        /// Memory cycle of completion.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Requesting warp (flattened id).
        warp: u32,
        /// Service latency in memory cycles.
        latency: u64,
    },
    /// A run of core cycles an SM spent stalled on one cause (core
    /// cycles; run-length batched — `cycles` contiguous stall cycles
    /// ending at `cycle`). The backbone of the stall-attribution
    /// profiler's conservation invariant.
    CoreStall {
        /// Core cycle of the last stall cycle in the run.
        cycle: u64,
        /// Stalled SM index.
        sm: u32,
        /// The typed cause the cycles are charged to.
        cause: StallCause,
        /// Stall cycles in this run (>= 1).
        cycles: u64,
    },
    /// The FR-FCFS scheduler dequeued a transaction out of the ingress
    /// transaction queues; `waited` is its enqueue-to-dequeue residency
    /// — the MC queue-backpressure component of its lifecycle (memory
    /// cycles).
    ReqDequeued {
        /// Memory cycle of the dequeue.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Target memory group.
        group: u8,
        /// Originating warp (flattened id).
        warp: u32,
        /// Per-warp sequence number (unique per warp).
        seq: u64,
        /// Destination bank (`0xff` for execute-only commands).
        bank: u8,
        /// Memory cycles spent in the ingress queue.
        waited: u64,
    },
    /// Periodic NoC-pipe occupancy sample: requests in flight toward
    /// the controller and responses on the return path (core cycles —
    /// the pipes tick in the core domain; every 64. Synthesized
    /// closed-form across skipped windows by
    /// `MemoryPipe::skip_quiescent`, so the stream is
    /// core-independent).
    PipeSample {
        /// Core cycle of the sample.
        cycle: u64,
        /// Memory channel the pipe feeds.
        channel: u8,
        /// Requests in flight (interconnect + L2 + L2-out stages).
        in_flight: u32,
        /// Responses in flight on the return path.
        returning: u32,
    },
    /// An all-bank refresh window opened; the channel accepts no
    /// commands for `rfc` memory cycles (memory cycles). Fires only on
    /// densely-executed cycles under both cores: the refresh countdown
    /// is a quiescence-horizon event, so a skip window never crosses
    /// the triggering cycle.
    RefreshWindow {
        /// Memory cycle the refresh fired.
        cycle: u64,
        /// Memory channel.
        channel: u8,
        /// Refresh-cycle time: cycles the channel stays locked out.
        rfc: u64,
    },
}

/// The coarse category an event belongs to — one Perfetto "process" per
/// category, and the acceptance vocabulary for coverage checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventCategory {
    /// SM / warp activity (issue, retire, fence stalls).
    Sm,
    /// OrderLight packet lifecycle and fence acknowledgements.
    Packet,
    /// Memory-controller scheduling and queue occupancy.
    Scheduler,
    /// Per-bank DRAM command timeline.
    Dram,
    /// NoC pipe occupancy between the SMs and the controllers.
    Noc,
}

impl EventCategory {
    /// All categories, in display order.
    pub const ALL: [EventCategory; 5] = [
        EventCategory::Sm,
        EventCategory::Packet,
        EventCategory::Scheduler,
        EventCategory::Dram,
        EventCategory::Noc,
    ];

    /// Stable lowercase name (used as the Chrome `cat` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventCategory::Sm => "sm",
            EventCategory::Packet => "packet",
            EventCategory::Scheduler => "scheduler",
            EventCategory::Dram => "dram",
            EventCategory::Noc => "noc",
        }
    }
}

impl TraceEvent {
    /// The event's category.
    #[must_use]
    pub fn category(&self) -> EventCategory {
        match self {
            TraceEvent::WarpIssue { .. }
            | TraceEvent::WarpRetire { .. }
            | TraceEvent::FenceStallBegin { .. }
            | TraceEvent::FenceStallEnd { .. }
            | TraceEvent::CoreStall { .. } => EventCategory::Sm,
            TraceEvent::PacketCreated { .. }
            | TraceEvent::PacketEnqueued { .. }
            | TraceEvent::PacketMerged { .. }
            | TraceEvent::FenceAck { .. } => EventCategory::Packet,
            TraceEvent::ReqEnqueued { .. }
            | TraceEvent::ReqDequeued { .. }
            | TraceEvent::ReqIssued { .. }
            | TraceEvent::SchedDecision { .. }
            | TraceEvent::QueueSample { .. }
            | TraceEvent::HostReadDone { .. } => EventCategory::Scheduler,
            TraceEvent::DramCmd { .. }
            | TraceEvent::RowInterval { .. }
            | TraceEvent::RefreshWindow { .. } => EventCategory::Dram,
            TraceEvent::PipeSample { .. } => EventCategory::Noc,
        }
    }

    /// The raw cycle stamp (in the emitting component's clock domain).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::WarpIssue { cycle, .. }
            | TraceEvent::WarpRetire { cycle, .. }
            | TraceEvent::FenceStallBegin { cycle, .. }
            | TraceEvent::FenceStallEnd { cycle, .. }
            | TraceEvent::PacketCreated { cycle, .. }
            | TraceEvent::PacketEnqueued { cycle, .. }
            | TraceEvent::PacketMerged { cycle, .. }
            | TraceEvent::ReqEnqueued { cycle, .. }
            | TraceEvent::ReqIssued { cycle, .. }
            | TraceEvent::FenceAck { cycle, .. }
            | TraceEvent::SchedDecision { cycle, .. }
            | TraceEvent::QueueSample { cycle, .. }
            | TraceEvent::DramCmd { cycle, .. }
            | TraceEvent::RowInterval { cycle, .. }
            | TraceEvent::HostReadDone { cycle, .. }
            | TraceEvent::CoreStall { cycle, .. }
            | TraceEvent::ReqDequeued { cycle, .. }
            | TraceEvent::PipeSample { cycle, .. }
            | TraceEvent::RefreshWindow { cycle, .. } => cycle,
        }
    }

    /// Whether the cycle stamp counts **core** cycles (`true`) or
    /// **memory** cycles (`false`).
    #[must_use]
    pub fn is_core_clock(&self) -> bool {
        matches!(
            self,
            TraceEvent::WarpIssue { .. }
                | TraceEvent::WarpRetire { .. }
                | TraceEvent::FenceStallBegin { .. }
                | TraceEvent::FenceStallEnd { .. }
                | TraceEvent::PacketCreated { .. }
                | TraceEvent::CoreStall { .. }
                | TraceEvent::PipeSample { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_partition_the_taxonomy() {
        let e = TraceEvent::WarpIssue { cycle: 1, sm: 0, warp: 0, kind: InstrKind::Pim };
        assert_eq!(e.category(), EventCategory::Sm);
        assert!(e.is_core_clock());
        let e = TraceEvent::PacketMerged { cycle: 9, channel: 0, group: 0, number: 1 };
        assert_eq!(e.category(), EventCategory::Packet);
        assert!(!e.is_core_clock());
        let e = TraceEvent::QueueSample { cycle: 2, channel: 1, read_q: 3, write_q: 4 };
        assert_eq!(e.category(), EventCategory::Scheduler);
        let e =
            TraceEvent::DramCmd { cycle: 5, channel: 0, bank: 2, kind: DramCmdKind::Read, row: 1 };
        assert_eq!(e.category(), EventCategory::Dram);
        assert_eq!(e.cycle(), 5);
    }

    #[test]
    fn attribution_events_follow_their_emitters_clock_domains() {
        let stall =
            TraceEvent::CoreStall { cycle: 7, sm: 1, cause: StallCause::FenceWait, cycles: 3 };
        assert_eq!(stall.category(), EventCategory::Sm);
        assert!(stall.is_core_clock(), "SMs count core cycles");
        assert_eq!(stall.cycle(), 7);
        let deq = TraceEvent::ReqDequeued {
            cycle: 11,
            channel: 0,
            group: 1,
            warp: 2,
            seq: 3,
            bank: 4,
            waited: 5,
        };
        assert_eq!(deq.category(), EventCategory::Scheduler);
        assert!(!deq.is_core_clock(), "controllers count memory cycles");
        let pipe = TraceEvent::PipeSample { cycle: 64, channel: 2, in_flight: 9, returning: 1 };
        assert_eq!(pipe.category(), EventCategory::Noc);
        assert!(pipe.is_core_clock(), "pipes tick in the core domain");
        let refresh = TraceEvent::RefreshWindow { cycle: 3315, channel: 0, rfc: 298 };
        assert_eq!(refresh.category(), EventCategory::Dram);
        assert!(!refresh.is_core_clock());
    }

    #[test]
    fn stall_cause_labels_are_unique_and_stable() {
        let labels: Vec<&str> = StallCause::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), StallCause::ALL.len(), "labels must be unique");
        assert_eq!(StallCause::FenceWait.label(), "fence_wait");
        assert_eq!(StallCause::CreditWait.label(), "credit_wait");
    }

    #[test]
    fn packet_creation_is_core_clocked_but_lifecycle_is_memory_clocked() {
        let created =
            TraceEvent::PacketCreated { cycle: 0, channel: 0, group: 0, number: 1, warp: 0 };
        let merged = TraceEvent::PacketMerged { cycle: 0, channel: 0, group: 0, number: 1 };
        assert!(created.is_core_clock());
        assert!(!merged.is_core_clock());
    }
}
